//! Concurrency integration tests: scans, updates, and migrations racing
//! on real threads. Timestamps must give every query a consistent
//! snapshot regardless of interleaving (§3.2's "Multiple Concurrent
//! Range Scans" and "Online Updates and Range Scan").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use masm_core::update::UpdateOp;
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn engine_with(records: u64) -> (Arc<MasmEngine>, SessionHandle, SimClock) {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd, wal, schema(), MasmConfig::small_for_tests()).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    engine
        .load_table(
            &session,
            (0..records).map(|i| Record::new(i * 2, schema().empty_payload())),
            1.0,
        )
        .unwrap();
    (engine, session, clock)
}

/// Each query must see a prefix of the update sequence: with updates
/// inserting odd keys in ascending order, a snapshot is consistent iff
/// the set of odd keys it contains is exactly {1, 3, 5, ..., 2j+1} for
/// some j.
#[test]
fn concurrent_scans_see_consistent_prefixes() {
    let (engine, _, clock) = engine_with(2_000);
    let stop = Arc::new(AtomicBool::new(false));

    let updater = {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) && i < 1_500 {
                engine
                    .apply_update(
                        &session,
                        i * 2 + 1,
                        UpdateOp::Insert(schema().empty_payload()),
                    )
                    .unwrap();
                i += 1;
            }
            i
        })
    };

    let mut readers = Vec::new();
    for t in 0..4 {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        readers.push(std::thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for _ in 0..10 {
                let odd: Vec<Key> = engine
                    .begin_scan(session.clone(), 0, u64::MAX)
                    .unwrap()
                    .map(|r| r.key)
                    .filter(|k| k % 2 == 1)
                    .collect();
                // Prefix property: contiguous odd keys from 1.
                for (i, k) in odd.iter().enumerate() {
                    assert_eq!(
                        *k,
                        (i as u64) * 2 + 1,
                        "reader {t}: snapshot is not a prefix: {odd:?}"
                    );
                }
            }
        }));
    }
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let issued = updater.join().unwrap();
    assert!(issued > 0);
}

#[test]
fn migration_concurrent_with_scans_preserves_results() {
    let (engine, session, clock) = engine_with(1_500);
    for i in 0..1_200u64 {
        engine
            .apply_update(
                &session,
                i * 2 + 1,
                UpdateOp::Insert(schema().empty_payload()),
            )
            .unwrap();
    }
    let expected: Vec<Key> = engine
        .begin_scan(session.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();

    // Readers race with the migration.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let expected = expected.clone();
        readers.push(std::thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for _ in 0..6 {
                let got: Vec<Key> = engine
                    .begin_scan(session.clone(), 0, u64::MAX)
                    .unwrap()
                    .map(|r| r.key)
                    .collect();
                assert_eq!(expected, got);
            }
        }));
    }
    let migrator = {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        std::thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            engine.migrate(&session).unwrap()
        })
    };
    for r in readers {
        r.join().unwrap();
    }
    let report = migrator.join().unwrap();
    assert!(report.runs_migrated > 0);
    let got: Vec<Key> = engine
        .begin_scan(session, 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert_eq!(expected, got);
}

#[test]
fn concurrent_updaters_never_lose_updates() {
    let (engine, session, clock) = engine_with(4_000);
    let threads = 4;
    let per_thread = 500u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        handles.push(std::thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for i in 0..per_thread {
                // Disjoint odd keys per thread.
                let key = (t as u64 * per_thread + i) * 2 + 1;
                engine
                    .apply_update(&session, key, UpdateOp::Insert(schema().empty_payload()))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let odd_count = engine
        .begin_scan(session, 0, u64::MAX)
        .unwrap()
        .filter(|r| r.key % 2 == 1)
        .count() as u64;
    assert_eq!(odd_count, threads as u64 * per_thread);
}

#[test]
fn scan_opened_before_update_is_isolated_even_across_flush() {
    let (engine, session, _clock) = engine_with(500);
    // Open a scan, then push enough updates to force buffer flushes.
    let scan = engine.begin_scan(session.clone(), 0, u64::MAX).unwrap();
    for i in 0..2_000u64 {
        engine
            .apply_update(
                &session,
                i * 2 + 1,
                UpdateOp::Insert(schema().empty_payload()),
            )
            .unwrap();
    }
    assert!(engine.run_count() > 0, "flushes must have happened");
    let keys: Vec<Key> = scan.map(|r| r.key).collect();
    assert!(
        keys.iter().all(|k| k % 2 == 0),
        "the old snapshot must see none of the later inserts"
    );
    assert_eq!(keys.len(), 500);
}
