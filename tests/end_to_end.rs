//! Cross-crate integration tests: every update scheme must agree on
//! query results, and MaSM must deliver them with SSD-friendly I/O.

use std::sync::Arc;

use masm_baselines::{InPlaceEngine, IuEngine};
use masm_core::update::{FieldPatch, UpdateOp};
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use masm_workloads::synthetic::{SyntheticTable, UpdateMix, UpdateStreamGen};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

struct Rig {
    clock: SimClock,
    disk: SimDevice,
    ssd: SimDevice,
    wal: SimDevice,
}

impl Rig {
    fn new() -> Rig {
        let clock = SimClock::new();
        Rig {
            disk: SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone()),
            ssd: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            wal: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            clock,
        }
    }

    fn session(&self) -> SessionHandle {
        SessionHandle::fresh(self.clock.clone())
    }

    fn heap(&self, records: u64, fill: f64) -> Arc<TableHeap> {
        let heap = Arc::new(TableHeap::new(self.disk.clone(), HeapConfig::default()));
        let s = self.session();
        let table = SyntheticTable::new(records);
        heap.bulk_load(&s, table.records(), fill).unwrap();
        heap
    }
}

/// Render a scan's output for comparisons: (key, payload) pairs.
fn dump(it: impl Iterator<Item = Record>) -> Vec<(Key, Vec<u8>)> {
    it.map(|r| (r.key, r.payload)).collect()
}

#[test]
fn all_schemes_agree_on_query_results() {
    // The same update stream through MaSM, IU, and in-place must produce
    // byte-identical scans.
    let table = SyntheticTable::new(3_000);
    let updates: Vec<(Key, UpdateOp)> =
        UpdateStreamGen::uniform(table.clone(), UpdateMix::default(), 99)
            .take(2_000)
            .collect();

    // MaSM.
    let rig = Rig::new();
    let masm = MasmEngine::new(
        rig.heap(3_000, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let s = rig.session();
    for (k, op) in &updates {
        masm.apply_update(&s, *k, op.clone()).unwrap();
    }
    let masm_out = dump(masm.begin_scan(s.clone(), 0, u64::MAX).unwrap());

    // IU.
    let rig2 = Rig::new();
    let iu = IuEngine::new(rig2.heap(3_000, 1.0), rig2.ssd.clone(), schema());
    let s2 = rig2.session();
    for (ts, (k, op)) in updates.iter().enumerate() {
        iu.apply_update(&s2, *k, op.clone(), ts as u64 + 1).unwrap();
    }
    let iu_out = dump(iu.begin_scan(s2, 0, u64::MAX, u64::MAX).unwrap());

    // In-place (fill 0.9 so inserts fit; content equality still holds).
    let rig3 = Rig::new();
    let heap3 = rig3.heap(3_000, 0.9);
    let inplace = InPlaceEngine::new(Arc::clone(&heap3), schema());
    let s3 = rig3.session();
    for (ts, (k, op)) in updates.iter().enumerate() {
        inplace
            .apply_update(&s3, *k, op.clone(), ts as u64 + 1)
            .unwrap();
    }
    let inplace_out = dump(heap3.scan_range(s3, 0, u64::MAX));

    assert_eq!(masm_out, iu_out, "MaSM vs IU");
    assert_eq!(masm_out, inplace_out, "MaSM vs in-place");
}

#[test]
fn masm_equals_inplace_after_migration_too() {
    let table = SyntheticTable::new(2_000);
    let updates: Vec<(Key, UpdateOp)> =
        UpdateStreamGen::uniform(table.clone(), UpdateMix::default(), 5)
            .take(1_500)
            .collect();

    let rig = Rig::new();
    let masm = MasmEngine::new(
        rig.heap(2_000, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let s = rig.session();
    for (k, op) in &updates {
        masm.apply_update(&s, *k, op.clone()).unwrap();
    }
    let before = dump(masm.begin_scan(s.clone(), 0, u64::MAX).unwrap());
    masm.migrate(&s).unwrap();
    let after = dump(masm.begin_scan(s.clone(), 0, u64::MAX).unwrap());
    assert_eq!(before, after);

    // And the migrated heap alone (no merge) holds exactly that data.
    let raw = dump(masm.heap().scan_range(s, 0, u64::MAX));
    assert_eq!(before, raw, "post-migration heap is self-contained");
}

#[test]
fn range_scans_match_full_scans() {
    let rig = Rig::new();
    let masm = MasmEngine::new(
        rig.heap(5_000, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let s = rig.session();
    let table = SyntheticTable::new(5_000);
    for (k, op) in UpdateStreamGen::uniform(table, UpdateMix::default(), 17).take(3_000) {
        masm.apply_update(&s, k, op).unwrap();
    }
    let full = dump(masm.begin_scan(s.clone(), 0, u64::MAX).unwrap());
    // Every sub-range must equal the slice of the full scan.
    for (begin, end) in [(0u64, 999u64), (1000, 4999), (5000, 9999), (9000, u64::MAX)] {
        let part = dump(masm.begin_scan(s.clone(), begin, end).unwrap());
        let expect: Vec<(Key, Vec<u8>)> = full
            .iter()
            .filter(|(k, _)| *k >= begin && *k <= end)
            .cloned()
            .collect();
        assert_eq!(part, expect, "range [{begin}, {end}]");
    }
}

#[test]
fn masm_never_issues_random_ssd_writes() {
    // Design goal 2, end to end: stream updates, scans, merges, and a
    // migration; the SSD must see at most a handful of non-continuation
    // writes (run starts after space rewinds), never scattered ones.
    let rig = Rig::new();
    let masm = MasmEngine::new(
        rig.heap(2_000, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let s = rig.session();
    let table = SyntheticTable::new(2_000);
    rig.ssd.reset_stats();
    let mut gen = UpdateStreamGen::uniform(table, UpdateMix::default(), 3);
    for _ in 0..3 {
        for _ in 0..4_000 {
            let (k, op) = gen.next_update();
            masm.apply_update(&s, k, op).unwrap();
        }
        let _ = masm.begin_scan(s.clone(), 0, 500).unwrap().count();
        masm.migrate(&s).unwrap();
    }
    let stats = rig.ssd.stats();
    assert!(stats.write_ops > 50, "the test must actually write runs");
    // Every write either continues the previous one or starts a fresh
    // run region; with the rewinding allocator that is a small constant
    // per run, far below the write count.
    assert!(
        stats.random_writes < stats.write_ops / 4,
        "random {} of {} writes",
        stats.random_writes,
        stats.write_ops
    );
}

#[test]
fn modify_of_every_field_applies() {
    let rig = Rig::new();
    let masm = MasmEngine::new(
        rig.heap(100, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let s = rig.session();
    let sch = schema();
    // Field 0 is the u32 measure; field 1 the filler bytes.
    masm.apply_update(
        &s,
        50,
        UpdateOp::Modify(vec![FieldPatch {
            field: 0,
            value: 123u32.to_le_bytes().to_vec(),
        }]),
    )
    .unwrap();
    masm.apply_update(
        &s,
        50,
        UpdateOp::Modify(vec![FieldPatch {
            field: 1,
            value: vec![7u8; 88],
        }]),
    )
    .unwrap();
    let rec = masm.begin_scan(s, 50, 50).unwrap().next().unwrap();
    assert_eq!(sch.get_u32(&rec.payload, 0), 123);
    assert_eq!(sch.get(&rec.payload, 1), vec![7u8; 88]);
}

#[test]
fn update_cache_capacity_is_enforced() {
    let rig = Rig::new();
    let mut cfg = MasmConfig::small_for_tests();
    cfg.ssd_capacity = 64 * 4096; // tiny: 256 KiB (M = 8, α = 1 still valid)
                                  // The buffer is S·P = 64 KiB — a quarter of the cache — so the
                                  // cache can fill up while still below a 0.9 threshold; use 0.7 so
                                  // "full" implies "needs migration".
    cfg.migration_threshold = 0.7;
    let masm = MasmEngine::new(
        rig.heap(1_000, 1.0),
        rig.ssd.clone(),
        rig.wal.clone(),
        schema(),
        cfg,
    )
    .unwrap();
    let s = rig.session();
    let table = SyntheticTable::new(1_000);
    let mut gen = UpdateStreamGen::uniform(table, UpdateMix::default(), 1);
    let mut hit_full = false;
    for _ in 0..200_000 {
        let (k, op) = gen.next_update();
        match masm.apply_update(&s, k, op) {
            Ok(_) => {}
            Err(masm_core::MasmError::CacheFull { .. }) => {
                hit_full = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(hit_full, "engine must report a full cache");
    assert!(masm.needs_migration());
    // Migration drains the cache and ingestion resumes.
    masm.migrate(&s).unwrap();
    assert_eq!(masm.cached_bytes(), 0);
    let (k, op) =
        UpdateStreamGen::uniform(SyntheticTable::new(1_000), UpdateMix::default(), 2).next_update();
    masm.apply_update(&s, k, op).unwrap();
}
