//! Property-based integration tests: MaSM against a model oracle.
//!
//! The oracle is a `BTreeMap<Key, Vec<u8>>` applying the same update
//! semantics in memory. For any random sequence of well-formed updates
//! interleaved with scans, migrations, and crash-recoveries, every MaSM
//! scan must equal the oracle's range dump.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use masm_core::update::{FieldPatch, UpdateOp};
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

#[derive(Debug, Clone)]
enum Action {
    Insert { slot: u64, measure: u32 },
    Delete { slot: u64 },
    Modify { slot: u64, measure: u32 },
    Scan { begin_slot: u64, end_slot: u64 },
    Migrate,
    CrashRecover,
}

fn action_strategy(slots: u64) -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..slots, any::<u32>()).prop_map(|(slot, measure)| Action::Insert { slot, measure }),
        3 => (0..slots).prop_map(|slot| Action::Delete { slot }),
        3 => (0..slots, any::<u32>()).prop_map(|(slot, measure)| Action::Modify { slot, measure }),
        2 => (0..slots, 0..slots).prop_map(|(a, b)| Action::Scan {
            begin_slot: a.min(b),
            end_slot: a.max(b),
        }),
        1 => Just(Action::Migrate),
        1 => Just(Action::CrashRecover),
    ]
}

fn payload_with(measure: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, measure);
    p
}

struct Oracle {
    map: BTreeMap<Key, Vec<u8>>,
}

impl Oracle {
    fn apply(&mut self, key: Key, op: &UpdateOp) {
        match op {
            UpdateOp::Insert(p) | UpdateOp::Replace(p) => {
                self.map.insert(key, p.clone());
            }
            UpdateOp::Delete => {
                self.map.remove(&key);
            }
            UpdateOp::Modify(patches) => {
                if let Some(p) = self.map.get_mut(&key) {
                    let s = schema();
                    for patch in patches {
                        s.set(p, patch.field as usize, &patch.value);
                    }
                }
            }
        }
    }

    fn dump(&self, begin: Key, end: Key) -> Vec<(Key, Vec<u8>)> {
        self.map
            .range(begin..=end)
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }
}

fn run_scenario(slots: u64, actions: Vec<Action>) {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let session = SessionHandle::fresh(clock.clone());

    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let mut engine = MasmEngine::new(
        heap,
        ssd.clone(),
        wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let base: Vec<Record> = (0..slots)
        .map(|i| Record::new(i * 2, payload_with(i as u32)))
        .collect();
    engine.load_table(&session, base.clone(), 1.0).unwrap();

    let mut oracle = Oracle {
        map: base.into_iter().map(|r| (r.key, r.payload)).collect(),
    };

    for action in actions {
        match action {
            Action::Insert { slot, measure } => {
                let key = slot * 2 + 1;
                let op = UpdateOp::Insert(payload_with(measure));
                oracle.apply(key, &op);
                engine.apply_update(&session, key, op).unwrap();
            }
            Action::Delete { slot } => {
                let key = slot * 2;
                oracle.apply(key, &UpdateOp::Delete);
                engine
                    .apply_update(&session, key, UpdateOp::Delete)
                    .unwrap();
            }
            Action::Modify { slot, measure } => {
                let key = slot * 2;
                let op = UpdateOp::Modify(vec![FieldPatch {
                    field: 0,
                    value: measure.to_le_bytes().to_vec(),
                }]);
                oracle.apply(key, &op);
                engine.apply_update(&session, key, op).unwrap();
            }
            Action::Scan {
                begin_slot,
                end_slot,
            } => {
                let (b, e) = (begin_slot * 2, end_slot * 2 + 1);
                let got: Vec<(Key, Vec<u8>)> = engine
                    .begin_scan(session.clone(), b, e)
                    .unwrap()
                    .map(|r| (r.key, r.payload))
                    .collect();
                assert_eq!(got, oracle.dump(b, e), "scan [{b}, {e}] diverged");
            }
            Action::Migrate => {
                engine.migrate(&session).unwrap();
            }
            Action::CrashRecover => {
                drop(engine);
                let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
                engine = MasmEngine::recover(
                    heap,
                    ssd.clone(),
                    wal.clone(),
                    schema(),
                    MasmConfig::small_for_tests(),
                )
                .unwrap()
                .0;
            }
        }
    }
    // Final full check.
    let got: Vec<(Key, Vec<u8>)> = engine
        .begin_scan(session, 0, u64::MAX)
        .unwrap()
        .map(|r| (r.key, r.payload))
        .collect();
    assert_eq!(got, oracle.dump(0, u64::MAX), "final full scan diverged");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn masm_matches_oracle(actions in proptest::collection::vec(action_strategy(64), 1..120)) {
        run_scenario(64, actions);
    }

    #[test]
    fn masm_matches_oracle_dense_keyspace(
        actions in proptest::collection::vec(action_strategy(8), 1..200)
    ) {
        // Tiny key space: heavy duplicate traffic exercises the
        // fold/merge paths hard.
        run_scenario(8, actions);
    }
}

#[test]
fn regression_delete_insert_delete_same_key() {
    run_scenario(
        4,
        vec![
            Action::Delete { slot: 1 },
            Action::Insert {
                slot: 1,
                measure: 5,
            },
            Action::Scan {
                begin_slot: 0,
                end_slot: 3,
            },
            Action::Delete { slot: 1 },
            Action::Migrate,
            Action::Scan {
                begin_slot: 0,
                end_slot: 3,
            },
            Action::CrashRecover,
            Action::Scan {
                begin_slot: 0,
                end_slot: 3,
            },
        ],
    );
}

#[test]
fn regression_migrate_on_empty_then_insert() {
    run_scenario(
        4,
        vec![
            Action::Migrate,
            Action::Insert {
                slot: 0,
                measure: 1,
            },
            Action::Migrate,
            Action::CrashRecover,
            Action::Scan {
                begin_slot: 0,
                end_slot: 3,
            },
        ],
    );
}
