//! Crash-recovery integration tests: the engine must come back from the
//! redo log and the non-volatile SSD with zero lost or duplicated
//! updates, across multiple crash points and crash-recover cycles.

use std::sync::Arc;

use masm_core::update::UpdateOp;
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Key, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use masm_workloads::synthetic::{SyntheticTable, UpdateMix, UpdateStreamGen};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

struct Durable {
    clock: SimClock,
    disk: SimDevice,
    ssd: SimDevice,
    wal: SimDevice,
}

impl Durable {
    fn new() -> Durable {
        let clock = SimClock::new();
        Durable {
            disk: SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone()),
            ssd: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            wal: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            clock,
        }
    }

    fn session(&self) -> SessionHandle {
        SessionHandle::fresh(self.clock.clone())
    }

    fn fresh_engine(&self, records: u64) -> Arc<MasmEngine> {
        let heap = Arc::new(TableHeap::new(self.disk.clone(), HeapConfig::default()));
        let engine = MasmEngine::new(
            heap,
            self.ssd.clone(),
            self.wal.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap();
        let s = self.session();
        engine
            .load_table(&s, SyntheticTable::new(records).records(), 1.0)
            .unwrap();
        engine
    }

    /// Simulate a crash: rebuild everything from the devices.
    fn recover(&self) -> Arc<MasmEngine> {
        let heap = Arc::new(TableHeap::new(self.disk.clone(), HeapConfig::default()));
        MasmEngine::recover(
            heap,
            self.ssd.clone(),
            self.wal.clone(),
            schema(),
            MasmConfig::small_for_tests(),
        )
        .unwrap()
        .0
    }
}

fn scan_all(engine: &Arc<MasmEngine>, s: &SessionHandle) -> Vec<(Key, Vec<u8>)> {
    engine
        .begin_scan(s.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| (r.key, r.payload))
        .collect()
}

#[test]
fn recovery_with_empty_wal_is_clean() {
    let d = Durable::new();
    let engine = d.recover();
    let s = d.session();
    assert_eq!(scan_all(&engine, &s).len(), 0);
}

#[test]
fn repeated_crash_recover_cycles_lose_nothing() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(1_000);
    let table = SyntheticTable::new(1_000);
    let mut gen = UpdateStreamGen::uniform(table, UpdateMix::default(), 77);

    let mut engine = engine;
    let mut expected = scan_all(&engine, &s);
    for cycle in 0..4 {
        for _ in 0..700 {
            let (k, op) = gen.next_update();
            engine.apply_update(&s, k, op).unwrap();
        }
        expected = scan_all(&engine, &s);
        drop(engine);
        engine = d.recover();
        let got = scan_all(&engine, &s);
        assert_eq!(expected, got, "cycle {cycle}");
    }
    // Migration after several recoveries still works and preserves data.
    engine.migrate(&s).unwrap();
    assert_eq!(expected, scan_all(&engine, &s));
}

#[test]
fn recovery_after_migration_sees_migrated_data() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(800);
    for i in 0..900u64 {
        engine
            .apply_update(&s, i * 2 + 1, UpdateOp::Insert(schema().empty_payload()))
            .unwrap();
    }
    engine.migrate(&s).unwrap();
    let expected = scan_all(&engine, &s);
    drop(engine);
    let engine = d.recover();
    assert_eq!(expected, scan_all(&engine, &s));
    assert_eq!(engine.run_count(), 0, "migrated runs stay deleted");
}

#[test]
fn recovery_resumes_timestamps_monotonically() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(100);
    let mut last_ts = 0;
    for i in 0..50u64 {
        last_ts = engine
            .apply_update(&s, i * 2 + 1, UpdateOp::Delete)
            .unwrap();
    }
    drop(engine);
    let engine = d.recover();
    let next = engine.apply_update(&s, 1, UpdateOp::Delete).unwrap();
    assert!(
        next > last_ts,
        "post-recovery timestamps ({next}) must exceed pre-crash ones ({last_ts})"
    );
}

#[test]
fn torn_wal_tail_is_truncated_and_salvaged() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(100);
    engine.apply_update(&s, 1, UpdateOp::Delete).unwrap();
    drop(engine);
    // Tear the log tail: append a half-written record whose length
    // prefix promises more bytes than exist — the shape a crash
    // mid-append leaves behind.
    let len = d.wal.len();
    d.wal.write_at(0, len, &[200, 0, 0, 0, 0]).unwrap();
    let heap = Arc::new(TableHeap::new(d.disk.clone(), HeapConfig::default()));
    let (engine, report) = MasmEngine::recover(
        heap,
        d.ssd.clone(),
        d.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .expect("torn tail must be truncated, not fatal");
    assert_eq!(report.wal_torn_bytes, 5, "{report:?}");
    assert_eq!(report.updates_recovered, 1);
    // The acknowledged pre-crash delete survived the truncation.
    let keys: Vec<Key> = engine
        .begin_scan(s.clone(), 0, 5)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert!(!keys.contains(&1), "recovered delete visible");
    // Appending past the truncated tail and crashing again replays
    // cleanly: the garbage was buried by the new append point.
    engine.apply_update(&s, 3, UpdateOp::Delete).unwrap();
    drop(engine);
    let engine = d.recover();
    let keys: Vec<Key> = engine.begin_scan(s, 0, 5).unwrap().map(|r| r.key).collect();
    assert!(!keys.contains(&1) && !keys.contains(&3));
}

#[test]
fn midlog_wal_corruption_is_a_hard_error() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(100);
    engine.apply_update(&s, 1, UpdateOp::Delete).unwrap();
    engine.apply_update(&s, 3, UpdateOp::Delete).unwrap();
    drop(engine);
    // Flip a byte in the *middle* of the log. Valid records follow the
    // damage, so this cannot be a torn tail — recovery must refuse to
    // silently drop acknowledged history.
    let (mut bytes, _) = d.wal.read_at(d.wal.busy_until(), 12, 1).unwrap();
    bytes[0] ^= 0xFF;
    d.wal.write_at(d.wal.busy_until(), 12, &bytes).unwrap();
    let heap = Arc::new(TableHeap::new(d.disk.clone(), HeapConfig::default()));
    let err = MasmEngine::recover(
        heap,
        d.ssd.clone(),
        d.wal.clone(),
        schema(),
        MasmConfig::small_for_tests(),
    )
    .expect_err("mid-log corruption must be surfaced");
    assert!(err.to_string().contains("CRC"), "{err}");
}

#[test]
fn updates_arriving_after_recovery_coexist_with_recovered_state() {
    let d = Durable::new();
    let s = d.session();
    let engine = d.fresh_engine(500);
    for i in 0..800u64 {
        engine
            .apply_update(&s, i * 2 + 1, UpdateOp::Insert(schema().empty_payload()))
            .unwrap();
    }
    drop(engine);
    let engine = d.recover();
    // New updates after recovery.
    engine.apply_update(&s, 2, UpdateOp::Delete).unwrap();
    let keys: Vec<Key> = engine
        .begin_scan(s.clone(), 0, 20)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert!(keys.contains(&1), "recovered insert visible");
    assert!(!keys.contains(&2), "fresh delete visible");

    // Crash again: both generations survive.
    drop(engine);
    let engine = d.recover();
    let keys: Vec<Key> = engine
        .begin_scan(s, 0, 20)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert!(keys.contains(&1));
    assert!(!keys.contains(&2));
}
