//! Crash recovery demo (§3.6): kill the engine mid-stream — including
//! mid-migration — and bring it back from the redo log and the
//! non-volatile SSD.
//!
//! MaSM's recovery story is small by design: materialized sorted runs
//! are already durable on the SSD, so recovery only rebuilds the
//! in-memory update buffer (from the redo log) and re-drives any
//! interrupted migration, which page timestamps make idempotent.
//!
//! Run with: `cargo run --release -p masm-bench --example crash_recovery`

use std::sync::Arc;

use masm_core::update::UpdateOp;
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn main() {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let schema = Schema::synthetic_100b();
    let session = SessionHandle::fresh(clock.clone());

    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let engine = MasmEngine::new(
        heap,
        ssd.clone(),
        wal.clone(),
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    engine
        .load_table(
            &session,
            (0..5_000u64).map(|i| Record::new(i * 2, schema.empty_payload())),
            1.0,
        )
        .unwrap();

    // Stream updates: enough that some flush to SSD runs...
    for i in 0..3_000u64 {
        engine
            .apply_update(
                &session,
                i * 2 + 1,
                UpdateOp::Insert(schema.empty_payload()),
            )
            .unwrap();
    }
    let _warm: usize = engine
        .begin_scan(session.clone(), 0, u64::MAX)
        .unwrap()
        .count();
    // ...and a few more that are still in the in-memory buffer when the
    // crash hits (these are what the redo log recovers).
    for i in 3_000..3_040u64 {
        engine
            .apply_update(
                &session,
                i * 2 + 1,
                UpdateOp::Insert(schema.empty_payload()),
            )
            .unwrap();
    }
    let expected: Vec<u64> = engine
        .begin_scan(session.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();
    println!(
        "before crash: {} records visible, {} updates in memory, {} runs on SSD",
        expected.len(),
        engine.buffered_updates(),
        engine.run_count()
    );

    // CRASH. All in-memory state is gone; the devices survive.
    drop(engine);
    println!("\n*** crash ***\n");

    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let (engine, report) = MasmEngine::recover(
        heap,
        ssd,
        wal,
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    println!(
        "recovered: {} buffered updates restored, {} runs re-registered, \
         migration redone: {}",
        report.updates_recovered, report.runs_recovered, report.redid_migration
    );

    let after: Vec<u64> = engine
        .begin_scan(session.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert_eq!(expected, after, "no update lost, none duplicated");
    println!(
        "post-recovery scan sees the identical {} records — zero lost updates.",
        after.len()
    );

    // And the engine keeps working: migrate everything, verify again.
    engine.migrate(&session).unwrap();
    let migrated: Vec<u64> = engine
        .begin_scan(session, 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert_eq!(expected, migrated);
    println!("post-recovery migration verified: results unchanged.");
}
