//! A data warehouse serving analysis queries 24/7 while a feed of
//! updates streams in — the paper's motivating scenario (§1).
//!
//! Three configurations answer the same "sum of the measure column over
//! a key range" query while updates arrive:
//!   1. no updates at all (the unreachable ideal),
//!   2. conventional in-place updates (random I/O on the main disk),
//!   3. MaSM (updates cached on SSD, merged into the scan).
//!
//! Run with: `cargo run --release -p masm-bench --example online_warehouse`

use masm_bench::{scale_mb, time_scan_with_inplace_updates, SyntheticEnv};

fn main() {
    let mb = scale_mb().min(32);
    println!("building a {mb} MiB warehouse table (virtual devices)...");

    // Ideal: queries with no updates anywhere.
    let ideal = SyntheticEnv::new(mb);
    let max_key = ideal.table.max_key();
    let (begin, end) = (max_key / 4, max_key / 2);
    let t_ideal = ideal.time_pure_scan(begin, end);

    // Conventional: a saturated updater does random read-modify-writes
    // on the same disk while the query scans.
    let conventional = SyntheticEnv::new(mb);
    let t_inplace = time_scan_with_inplace_updates(&conventional, begin, end, 7);

    // MaSM: updates cached on the SSD (cache 50% full), merged on read.
    let masm = SyntheticEnv::new(mb);
    masm.fill_cache(0.5, 7);
    let t_masm = masm.time_masm_scan(begin, end);

    // The query itself: sum the measure column.
    let session = masm.machine.session();
    let schema = masm.engine.schema().clone();
    let sum: u64 = masm
        .engine
        .begin_scan(session, begin, end)
        .unwrap()
        .map(|r| schema.get_u32(&r.payload, 0) as u64)
        .sum();

    println!("\nquery: SELECT SUM(measure) over keys [{begin}, {end}] -> {sum}");
    println!("\n                      virtual time    vs ideal");
    println!(
        "  no updates          {:>9.1} ms       1.00x",
        t_ideal as f64 / 1e6
    );
    println!(
        "  in-place updates    {:>9.1} ms       {:.2}x",
        t_inplace as f64 / 1e6,
        t_inplace as f64 / t_ideal as f64
    );
    println!(
        "  MaSM                {:>9.1} ms       {:.2}x",
        t_masm as f64 / 1e6,
        t_masm as f64 / t_ideal as f64
    );
    println!(
        "\nMaSM answers over fresh data at essentially the no-update speed;\n\
         in-place updates make the same query several times slower."
    );
}
