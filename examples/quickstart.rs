//! Quickstart: the MaSM engine in ~60 lines.
//!
//! Builds a simulated machine (HDD for main data, SSD for the update
//! cache), loads a small table, applies online updates, runs merged
//! range scans that see fresh data, and migrates the cached updates back
//! into the table in place.
//!
//! Run with: `cargo run --release -p masm-bench --example quickstart`

use std::sync::Arc;

use masm_core::update::{FieldPatch, UpdateOp};
use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn main() {
    // One virtual clock; three devices (disk, update-cache SSD, WAL).
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());

    // A 100-byte-record table: u32 "measure" + filler, clustered by key.
    let schema = Schema::synthetic_100b();
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(
        heap,
        ssd,
        wal,
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .expect("valid config");

    // Load even keys 0..20_000 (odd keys are free for inserts).
    let session = SessionHandle::fresh(clock.clone());
    engine
        .load_table(
            &session,
            (0..10_000u64).map(|i| {
                let mut p = schema.empty_payload();
                schema.set_u32(&mut p, 0, i as u32);
                Record::new(i * 2, p)
            }),
            1.0,
        )
        .expect("bulk load");

    // Online well-formed updates: insert, delete, modify.
    let mut new_row = schema.empty_payload();
    schema.set_u32(&mut new_row, 0, 4242);
    engine
        .apply_update(&session, 4241, UpdateOp::Insert(new_row))
        .unwrap();
    engine
        .apply_update(&session, 4244, UpdateOp::Delete)
        .unwrap();
    engine
        .apply_update(
            &session,
            4246,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 777u32.to_le_bytes().to_vec(),
            }]),
        )
        .unwrap();

    // A range scan sees all three updates merged in, immediately.
    println!("range scan of [4240, 4250] after online updates:");
    for record in engine.begin_scan(session.clone(), 4240, 4250).unwrap() {
        println!(
            "  key {:>5}  measure {}",
            record.key,
            schema.get_u32(&record.payload, 0)
        );
    }

    // Migrate the cached updates back into the main data, in place.
    let report = engine.migrate(&session).unwrap();
    println!(
        "\nmigration: {} updates applied, {} pages written, runs left: {}",
        report.updates_applied,
        report.pages_written,
        engine.run_count()
    );

    // Scans read identical data afterwards.
    let keys: Vec<u64> = engine
        .begin_scan(session.clone(), 4240, 4250)
        .unwrap()
        .map(|r| r.key)
        .collect();
    println!("post-migration keys in [4240, 4250]: {keys:?}");
    println!("virtual time elapsed: {:.3} ms", clock.now() as f64 / 1e6);
}
