//! Transactions over MaSM (§3.6): snapshot isolation with
//! first-committer-wins, and two-phase locking with visibility at lock
//! release.
//!
//! Run with: `cargo run --release -p masm-bench --example transactions`

use std::sync::Arc;

use masm_core::txn::{LockManager, LockingTransaction, Transaction};
use masm_core::update::UpdateOp;
use masm_core::{MasmConfig, MasmEngine, MasmError};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn main() {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let schema = Schema::synthetic_100b();
    let session = SessionHandle::fresh(clock.clone());

    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(
        heap,
        ssd,
        wal,
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    engine
        .load_table(
            &session,
            (0..1_000u64).map(|i| {
                let mut p = schema.empty_payload();
                schema.set_u32(&mut p, 0, i as u32);
                Record::new(i * 2, p)
            }),
            1.0,
        )
        .unwrap();

    // --- Snapshot isolation -------------------------------------------
    let mut alice = Transaction::begin(&engine);
    let mut bob = Transaction::begin(&engine);

    // Both read the same snapshot; Alice writes key 100, Bob writes 100
    // and 102.
    alice.write(100, UpdateOp::Replace(payload(&schema, 1111)));
    bob.write(100, UpdateOp::Replace(payload(&schema, 2222)));
    bob.write(102, UpdateOp::Replace(payload(&schema, 2222)));

    // Alice sees her own uncommitted write; the world does not.
    let mine = alice
        .scan(session.clone(), 100, 100)
        .unwrap()
        .next()
        .unwrap();
    println!(
        "alice reads her own staged write: measure = {}",
        schema.get_u32(&mine.payload, 0)
    );

    let ts = alice.commit(&session).unwrap();
    println!("alice committed at ts {ts}");
    match bob.commit(&session) {
        Err(MasmError::Conflict { key }) => {
            println!("bob aborted: first-committer-wins conflict on key {key}")
        }
        other => panic!("expected a conflict, got {other:?}"),
    }

    // --- Two-phase locking --------------------------------------------
    let locks = LockManager::new();
    let mut txn = LockingTransaction::begin(&engine, &locks);
    txn.write(200, UpdateOp::Replace(payload(&schema, 9999)));
    // The write is invisible until the lock is released at commit.
    let before = engine
        .begin_scan(session.clone(), 200, 200)
        .unwrap()
        .next()
        .unwrap();
    println!(
        "\nunder 2PL, before commit the world sees measure = {}",
        schema.get_u32(&before.payload, 0)
    );
    txn.commit(&session).unwrap();
    let after = engine
        .begin_scan(session, 200, 200)
        .unwrap()
        .next()
        .unwrap();
    println!(
        "after lock release it sees measure = {}",
        schema.get_u32(&after.payload, 0)
    );
}

fn payload(schema: &Schema, v: u32) -> Vec<u8> {
    let mut p = schema.empty_payload();
    schema.set_u32(&mut p, 0, v);
    p
}
