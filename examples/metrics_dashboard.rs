//! Live metrics dashboard: drive a small MaSM workload and render the
//! unified [`masm_core::EngineStats`] snapshot as a text dashboard —
//! level gauges, per-operation latency percentiles, the SSD wear
//! summary, and the throughput deltas between two snapshots.
//!
//! This is the observability tour: everything printed here comes from
//! `MasmEngine::stats()` (one coherent snapshot, cheap enough to poll
//! from a driver loop), `MasmEngine::metrics_registry()` (the metric
//! catalog with units and help strings — also rendered as OpenMetrics
//! text), and an installed [`masm_telemetry::Tracer`] whose flight
//! recording is summarized as the top-3 longest spans per operation
//! and checked by an [`masm_telemetry::InvariantWatchdog`].
//!
//! Run with: `cargo run --release --example metrics_dashboard`

use std::collections::BTreeMap;
use std::sync::Arc;

use masm_core::update::{FieldPatch, UpdateOp};
use masm_core::{EngineStats, MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use masm_telemetry::{
    InvariantWatchdog, Metric, RecordKind, TraceConfig, TraceRecord, Tracer, TrackId,
};

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        return 0.0;
    }
    num as f64 * 100.0 / den as f64
}

fn render(title: &str, stats: &EngineStats) {
    println!(
        "\n== {title} @ {:.3} virtual ms ==",
        stats.at_ns as f64 / 1e6
    );
    println!(
        "ingested   {} updates / {} bytes",
        stats.ingested_updates, stats.ingested_bytes
    );
    println!(
        "buffer     {} updates, {}/{} bytes ({:.0}% full)",
        stats.buffer.updates,
        stats.buffer.bytes,
        stats.buffer.capacity_bytes,
        pct(stats.buffer.bytes, stats.buffer.capacity_bytes)
    );
    println!(
        "runs       {} on SSD, {}/{} bytes cached ({:.0}% of flash)",
        stats.runs.count,
        stats.runs.cached_bytes,
        stats.runs.ssd_capacity_bytes,
        pct(stats.runs.cached_bytes, stats.runs.ssd_capacity_bytes)
    );
    println!(
        "cache      {} lookups, {:.0}% hit rate, {} data bytes resident",
        stats.cache.lookups(),
        stats.cache.hit_rate() * 100.0,
        stats.cache.data_bytes
    );
    println!(
        "ssd        {} seq + {} random writes, {} bytes written",
        stats.ssd.write_ops - stats.ssd.random_writes,
        stats.ssd.random_writes,
        stats.ssd.bytes_written
    );
    println!(
        "wear       max {} writes/block over {} blocks (mean {:.2}, cv {:.3})",
        stats.ssd_wear.max_writes_per_block,
        stats.ssd_wear.blocks_touched,
        stats.ssd_wear.mean_writes_per_block,
        stats.ssd_wear.cv
    );
    println!(
        "merge      {} input runs, fan-in {}, {} blocks moved / {} merged",
        stats.merge.inputs, stats.merge.fan_in, stats.merge.blocks_moved, stats.merge.blocks_merged
    );

    println!(
        "\n{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "op (v-ns)", "count", "p50", "p95", "p99", "max"
    );
    stats.ops.for_each(|name, h| {
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            h.count,
            h.p50(),
            h.p95(),
            h.p99(),
            h.max
        );
    });
}

fn main() {
    // One virtual clock; three devices (disk, update-cache SSD, WAL).
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());

    let schema = Schema::synthetic_100b();
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(
        heap,
        ssd,
        wal,
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .expect("valid config");

    // Flight-record the whole run. Everything emitted below lands in
    // the tracer's lock-free rings; the summary at the end drains them.
    let tracer = Arc::new(Tracer::new(TraceConfig {
        ring_capacity: 1 << 14,
        ..TraceConfig::default()
    }));
    tracer.bind_registry(engine.metrics_registry());
    engine.install_tracer(Arc::clone(&tracer));

    let session = SessionHandle::fresh(clock.clone());
    engine
        .load_table(
            &session,
            (0..5_000u64).map(|i| Record::new(i * 2, schema.empty_payload())),
            1.0,
        )
        .expect("bulk load");

    // The metric catalog: every registered metric with unit and help.
    println!("metric catalog:");
    engine
        .metrics_registry()
        .for_each(|key, metric, unit, help| {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            println!("  {key:<16} {kind:<10} [{:<10}] {help}", unit.label());
        });

    // Phase 1: a burst of online updates with point reads and a scan.
    for i in 0..2_000u64 {
        let key = (i * 37) % 9_999;
        engine
            .apply_update(
                &session,
                key,
                UpdateOp::Modify(vec![FieldPatch {
                    field: 0,
                    value: (i as u32).to_le_bytes().to_vec(),
                }]),
            )
            .unwrap();
        if i % 50 == 0 {
            engine.get(&session, key).unwrap();
        }
    }
    // Flush the buffer into an SSD run so the scan exercises the block
    // cache and the `block_fetch` histogram, then scan twice: the
    // second pass is served from the cache.
    engine.flush_buffer(&session).unwrap();
    for _ in 0..2 {
        let n = engine
            .begin_scan(session.clone(), 0, 2_000)
            .unwrap()
            .count();
        println!("scan of [0, 2000] merged {n} records with the cached updates");
    }

    let after_ingest = engine.stats();
    render("after ingest burst", &after_ingest);

    // Phase 2: migrate the cached updates back into the table in place.
    let report = engine.migrate(&session).unwrap();
    println!(
        "\nmigration: {} runs / {} updates folded into the heap",
        report.runs_migrated, report.updates_applied
    );

    let end = engine.stats();
    render("after migration", &end);

    // Deltas: what happened between the two snapshots, and at what rate.
    let d = end.delta(&after_ingest);
    println!(
        "\ndelta over the migration phase ({:.3} virtual ms):",
        d.elapsed_ns as f64 / 1e9 * 1e3
    );
    println!(
        "  ssd bandwidth   {:.1} MB/s written",
        d.ssd_write_bytes_per_sec() / 1e6
    );
    println!(
        "  wal + ssd ops   {} writes",
        d.wal.write_ops + d.ssd.write_ops
    );
    println!("  migrate p50     {} virtual-ns", end.ops.migrate.p50());

    // The whole snapshot also exports as one JSON object (this is what
    // the NDJSON time series in the benches embeds per row).
    println!("\nstats JSON ({} bytes):", end.to_json().len());
    println!("{}", end.to_json());

    // The watchdog wraps the same invariant check and additionally
    // emits instant events + the `trace.violations` counter into the
    // flight recording, so a dashboard poll loop and the trace agree.
    let mut watchdog = InvariantWatchdog::new(
        Arc::clone(&tracer),
        TrackId {
            pid: 0,
            tid: masm_telemetry::current_tid(),
        },
        1_000_000,
    );
    let violations = watchdog.poll(&end);
    assert!(violations.is_empty(), "invariants violated: {violations:?}");

    // The registry also renders as OpenMetrics text (what a scraper
    // would pull); show the shape without dumping all of it.
    let exposition = engine.metrics_registry().render_openmetrics();
    println!(
        "\nOpenMetrics exposition: {} lines, {} bytes; first lines:",
        exposition.lines().count(),
        exposition.len()
    );
    for line in exposition.lines().take(5) {
        println!("  {line}");
    }

    // Drain the flight recording and show the top-3 longest spans per
    // operation — the causal view behind the percentile table above.
    let records = tracer.take_records();
    let stats = tracer.stats();
    let mut by_name: BTreeMap<&str, Vec<&TraceRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.kind == RecordKind::Span) {
        by_name.entry(r.name).or_default().push(r);
    }
    println!(
        "\ntrace: {} records emitted, {} retained after ring overflow ({} dropped)",
        stats.emitted,
        records.len(),
        stats.dropped
    );
    println!("top-3 longest spans per operation (virtual ns):");
    for (name, spans) in &mut by_name {
        spans.sort_by_key(|r| std::cmp::Reverse(r.dur_ns));
        let top: Vec<String> = spans
            .iter()
            .take(3)
            .map(|r| format!("{} @ {}", r.dur_ns, r.t_ns))
            .collect();
        println!("  {name:<20} {}", top.join(", "));
    }
    assert!(
        by_name.contains_key("flush") && by_name.contains_key("migrate"),
        "the workload must have traced a flush and a migration"
    );

    println!(
        "\nOK: coherent snapshot; {} random SSD writes across the whole run",
        end.ssd.random_writes
    );
}
