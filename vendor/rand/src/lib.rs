//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the subset of the `rand` 0.8 API the workspace
//! uses: the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is SplitMix64 — statistically fine for workload
//! generation and property tests, deterministic for a given seed, and
//! obviously not cryptographic (neither is the real `StdRng`'s use here).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] ("standard"
/// distribution in rand terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return Standard::sample(rng);
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// The user-facing random-value extension trait.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bools_are_mixed() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "{trues}");
    }
}
