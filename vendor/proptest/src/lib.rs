//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim implements the subset of the proptest API the workspace
//! uses: the [`Strategy`] trait with `prop_map` and `boxed`, `any`,
//! [`Just`], numeric-range and tuple strategies, `collection::{vec,
//! btree_set}`, the `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assert_ne!` macros, and
//! [`ProptestConfig`].
//!
//! Differences from real proptest: generation is plain random sampling
//! from a per-test deterministic seed, and **no shrinking** is performed
//! — a failing case panics with the assertion message and the case
//! number. That is sufficient for CI-grade property checking here.

use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A failing property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build an error carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one generated case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (accepted fields of the real crate we honour).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim never prints per-case
    /// progress.
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            verbose: 0,
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe counterpart of [`Strategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum correctly")
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min) as u64 + 1;
        self.min + rng.below(span) as usize
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` of a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` of a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate sets whose elements come from `element`. If the element
    /// domain is too small to reach the drawn size, the set saturates at
    /// whatever was achievable within a bounded number of draws.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng).max(self.size.min);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 64 + 256 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a test file typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Weighted or unweighted choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: $crate::TestCaseResult = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn kind() -> impl Strategy<Value = u32> {
        prop_oneof![
            3 => Just(7u32),
            1 => (100u32..200).prop_map(|v| v),
        ]
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 1u64..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=4).contains(&y), "y was {}", y);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..=255, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }

        #[test]
        fn sets_hit_requested_size(s in crate::collection::btree_set(0u64..10_000, 5..8)) {
            prop_assert!(s.len() >= 5 && s.len() < 8, "len {}", s.len());
        }

        #[test]
        fn oneof_draws_both_arms(xs in crate::collection::vec(kind(), 64..65)) {
            prop_assert!(xs.contains(&7));
            prop_assert_eq!(xs.len(), 64);
            prop_assert_ne!(xs.len(), 0);
        }

        #[test]
        fn tuples_and_mut_patterns(mut pair in (any::<u32>(), 0u64..5)) {
            pair.0 = pair.0.wrapping_add(1);
            prop_assert!(pair.1 < 5);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
