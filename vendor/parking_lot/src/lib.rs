//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the (small) subset of the `parking_lot` API the
//! workspace uses — `Mutex`, `RwLock`, and `Condvar` with non-poisoning
//! guards — implemented over `std::sync`. Poisoned std locks are
//! transparently recovered, matching parking_lot's semantics of not
//! propagating panics through lock acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily take
/// the std guard by value (std's wait consumes it) and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning accessors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Shared read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`] (parking_lot style:
/// `wait` takes the guard by `&mut` rather than by value).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
