//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored shim provides the subset of the criterion API the workspace's
//! micro-benchmarks use: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::iter`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple best-of-N wall-clock
//! loop printed to stdout — adequate for relative, same-machine numbers,
//! with none of criterion's statistics.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record its mean wall-clock time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm up once, then time a small adaptive batch.
        black_box(f());
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_millis() >= 10 || iters >= 1 << 20 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters *= 4;
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n## {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    /// Run a single named benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.throughput, f);
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 * 1e3 / b.ns_per_iter)
        }
        Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * 1e9 / b.ns_per_iter / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{name:<40} {:>12.0} ns/iter{rate}", b.ns_per_iter);
}

/// Collect benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
