//! # masm — umbrella crate for the MaSM reproduction workspace
//!
//! Re-exports the workspace crates so integration tests and examples can
//! depend on one package. See the individual crates for the real
//! documentation:
//!
//! * [`masm_storage`] — simulated HDD/SSD devices with calibrated timing.
//! * [`masm_pagestore`] — slotted-page clustered heap (the "main data").
//! * [`masm_blockrun`] — block-based immutable run format + block cache.
//! * [`masm_core`] — the MaSM engine itself.
//! * [`masm_baselines`] — in-place / IU / LSM comparison schemes.
//! * [`masm_workloads`] — synthetic, Zipf, and TPC-H-like generators.
//! * [`masm_bench`] — the experiment harness.

pub use masm_baselines;
pub use masm_bench;
pub use masm_blockrun;
pub use masm_core;
pub use masm_pagestore;
pub use masm_storage;
pub use masm_workloads;
