//! Property tests for the telemetry primitives: histogram invariants
//! over arbitrary sample streams, quantile monotonicity, delta
//! arithmetic, and exact JSON round-trips of [`StatsDelta`].

use proptest::prelude::*;

use masm_telemetry::json::parse;
use masm_telemetry::{
    BufferStats, EngineStats, Histogram, HistogramSnapshot, OpLatencies, RunSetStats, StatsDelta,
};

fn samples() -> impl Strategy<Value = Vec<u64>> {
    // Mix of small values, mid-range latencies, and extreme outliers so
    // every bucket region gets exercised.
    proptest::collection::vec(
        prop_oneof![
            Just(0u64),
            0u64..1024,
            1024u64..10_000_000,
            (u64::MAX - 1024)..u64::MAX,
        ],
        0..400,
    )
}

fn snapshot_of(vals: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h.snapshot()
}

/// A synthetic shard snapshot at `at` whose counter families are driven
/// by `c` (8 independent knobs). Monotone in every element of `c`, so a
/// later cut of the same shard is `stats_with(at_b, base + inc)`.
fn stats_with(at: u64, c: &[u64]) -> EngineStats {
    let mut s = EngineStats {
        at_ns: at,
        ingested_updates: c[0],
        ingested_bytes: c[0] * 100,
        buffer: BufferStats {
            updates: c[1] % 64,
            bytes: (c[1] % 64) * 100,
            capacity_bytes: 4096,
        },
        runs: RunSetStats {
            count: c[2] % 8,
            cached_bytes: (c[2] % 8) * 1024,
            ssd_capacity_bytes: 1 << 30,
        },
        ..EngineStats::default()
    };
    s.cache.hits = c[1];
    s.cache.misses = c[2];
    s.cache.data_bytes = c[1] % (1 << 20);
    s.ssd.write_ops = c[3];
    s.ssd.bytes_written = c[3] * 4096;
    s.ssd.queue_depth_sum = c[3] / 2;
    s.ssd.max_queue_depth = c[3] % 17;
    s.wal.write_ops = c[4];
    s.merge.blocks_moved = c[5];
    s.merge.fan_in = (c[5] % 9) as usize;
    s.compression.raw_bytes = c[6];
    s.compression.stored_bytes = c[6] / 2;
    s.workers.jobs_completed = c[7];
    s.workers.flushes = c[7];
    s.workers.queue_depth = c[7] % 7;
    let h = Histogram::new();
    for i in 0..(c[0].min(64)) {
        h.record(i * 13);
    }
    s.ops.ingest = h.snapshot();
    s
}

fn shard_counters() -> impl Strategy<Value = Vec<(Vec<u64>, Vec<u64>)>> {
    let knobs = || proptest::collection::vec(0u64..(1 << 30), 8);
    proptest::collection::vec((knobs(), knobs()), 1..5)
}

proptest! {
    /// Core histogram accounting: count matches the number of recorded
    /// samples, the bucket array sums to count, sum/max match the raw
    /// stream, and the reported percentiles are ordered and bounded by
    /// max. This is the "histogram count == op count" invariant the
    /// engine relies on.
    #[test]
    fn histogram_accounting_matches_stream(vals in samples()) {
        let s = snapshot_of(&vals);
        prop_assert_eq!(s.count, vals.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        prop_assert_eq!(s.sum, vals.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(s.max, vals.iter().copied().max().unwrap_or(0));
        prop_assert!(s.p50() <= s.p95());
        prop_assert!(s.p95() <= s.p99());
        prop_assert!(s.p99() <= s.max);
        if !vals.is_empty() {
            // p50 can never undershoot the smallest recorded value's
            // bucket floor; cheap sanity rather than exactness (log₂
            // buckets are lossy by design).
            prop_assert!(s.quantile(1.0) == s.max);
        }
    }

    /// Splitting a stream at any point and taking `later − earlier`
    /// gives exactly the histogram of the suffix (modulo `max`, which
    /// is a high-water mark carried from the newer snapshot).
    #[test]
    fn histogram_delta_is_suffix(vals in samples(), cut in 0usize..400) {
        let cut = cut.min(vals.len());
        let h = Histogram::new();
        for &v in &vals[..cut] {
            h.record(v);
        }
        let early = h.snapshot();
        for &v in &vals[cut..] {
            h.record(v);
        }
        let late = h.snapshot();
        let d = late.delta(&early);
        let suffix = snapshot_of(&vals[cut..]);
        prop_assert_eq!(d.count, suffix.count);
        prop_assert_eq!(d.sum, suffix.sum);
        prop_assert_eq!(d.buckets, suffix.buckets);
    }

    /// `StatsDelta` survives `to_json` → `parse` → `from_json` exactly,
    /// for deltas built from arbitrary per-field values (all integer
    /// fields stay below 2⁵³ in practice; the generator respects that).
    #[test]
    fn stats_delta_roundtrips_json(
        at in 1u64..(1 << 50),
        updates in 0u64..(1 << 40),
        bytes in 0u64..(1 << 45),
        ops_counts in proptest::collection::vec(0u64..(1 << 30), 6),
    ) {
        let mut now = EngineStats {
            at_ns: at,
            ingested_updates: updates,
            ingested_bytes: bytes,
            buffer: BufferStats { updates: 1, bytes: 64, capacity_bytes: 4096 },
            runs: RunSetStats { count: 1, cached_bytes: 1024, ssd_capacity_bytes: 1 << 30 },
            ..EngineStats::default()
        };
        now.cache.hits = updates / 2;
        now.cache.misses = updates / 7;
        now.ssd.write_ops = updates / 3;
        now.ssd.bytes_written = bytes / 2;
        now.wal.write_ops = updates;
        now.merge.blocks_moved = updates / 5;
        now.compression.raw_bytes = bytes;
        now.compression.stored_bytes = bytes / 3;
        let hists: Vec<HistogramSnapshot> = ops_counts
            .iter()
            .map(|&n| {
                let h = Histogram::new();
                for i in 0..(n % 64) {
                    h.record(i * 17);
                }
                h.snapshot()
            })
            .collect();
        now.ops = OpLatencies {
            ingest: hists[0],
            get: hists[1],
            scan_next: hists[2],
            flush: hists[3],
            migrate: hists[4],
            block_fetch: hists[5],
        };
        let d = now.delta(&EngineStats::default());
        let parsed = parse(&d.to_json()).expect("delta JSON parses");
        let back = StatsDelta::from_json(&parsed).expect("delta reconstructs");
        prop_assert_eq!(d, back);
        // The full EngineStats JSON must always parse, too.
        prop_assert!(parse(&now.to_json()).is_some());
        prop_assert!(now.invariant_violations().is_empty());
    }

    /// Histogram merge is bucketwise addition, hence commutative and
    /// associative — the algebra per-shard latency aggregation relies
    /// on.
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a in samples(), b in samples(), c in samples(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        // Merging equals recording the concatenated stream (modulo
        // nothing: buckets, count, sum, and max are all exact).
        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(sa.merge(&sb), snapshot_of(&all));
    }

    /// The sharded-stats aggregation identity: for per-shard snapshot
    /// pairs (aᵢ, bᵢ) cut at the same two instants on one shared clock,
    /// *delta of merges equals merge of deltas* —
    /// `merge(b₀..bₙ).delta(merge(a₀..aₙ)) == merge(bᵢ.delta(aᵢ))`.
    /// This is what lets `ShardedEngine::stats()` totals be differenced
    /// across time exactly as a single engine's would be. Merge itself
    /// is also checked commutative and associative.
    #[test]
    fn shard_merge_commutes_with_delta(
        shards in shard_counters(),
        at_a in 1u64..(1 << 40),
        dt in 1u64..(1 << 30),
    ) {
        let at_b = at_a + dt;
        let earlier: Vec<EngineStats> = shards
            .iter()
            .map(|(base, _)| stats_with(at_a, base))
            .collect();
        let later: Vec<EngineStats> = shards
            .iter()
            .map(|(base, inc)| {
                let grown: Vec<u64> = base.iter().zip(inc).map(|(b, i)| b + i).collect();
                stats_with(at_b, &grown)
            })
            .collect();
        let merged_a = earlier[1..].iter().fold(earlier[0], |acc, s| acc.merge(s));
        let merged_b = later[1..].iter().fold(later[0], |acc, s| acc.merge(s));
        // Commutativity + associativity of the snapshot merge.
        let reversed = earlier[..earlier.len() - 1]
            .iter()
            .rev()
            .fold(*earlier.last().unwrap(), |acc, s| acc.merge(s));
        prop_assert_eq!(merged_a, reversed);
        // Sum-of-deltas == delta-of-sums.
        let per_shard: Vec<StatsDelta> = later
            .iter()
            .zip(&earlier)
            .map(|(b, a)| b.delta(a))
            .collect();
        let summed = per_shard[1..]
            .iter()
            .fold(per_shard[0], |acc, d| acc.merge(d));
        prop_assert_eq!(merged_b.delta(&merged_a), summed);
    }
}
