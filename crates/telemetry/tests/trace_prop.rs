//! Property tests for the `masm-trace` flight recorder: exact drop
//! accounting under arbitrary ring capacities and writer counts, no
//! torn records under concurrency, span well-formedness (end ≥ start,
//! parents open before children, children close within parents) for
//! arbitrary nesting programs, and flow-id resolution.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use masm_telemetry::json::{parse, JsonValue};
use masm_telemetry::trace::{RecordKind, TraceConfig, TraceRecord, Tracer, TrackId};

const SPAN_NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One step of a synthetic tracing program (single track, monotonic
/// clock): open a span, close the innermost, drop an instant, or emit
/// a flow start/finish pair.
#[derive(Debug, Clone, Copy)]
enum Step {
    Open,
    Close,
    Instant,
    Flow,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Step::Open),
            2 => Just(Step::Close),
            1 => Just(Step::Instant),
            1 => Just(Step::Flow),
        ],
        0..120,
    )
}

proptest! {
    /// `emitted == retained + drained + dropped` holds exactly for any
    /// ring capacity, writer count, and stream length — and once fully
    /// drained, `retained == 0` and nothing was double-counted.
    #[test]
    fn drop_accounting_is_exact(
        capacity in 2usize..64,
        writers in 1u64..4,
        per_writer in 0u64..300,
    ) {
        let t = Arc::new(Tracer::new(TraceConfig {
            ring_capacity: capacity,
            ..TraceConfig::default()
        }));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    let tid = masm_telemetry::current_tid();
                    for i in 0..per_writer {
                        let v = w * per_writer + i;
                        t.emit(TraceRecord {
                            kind: RecordKind::Instant,
                            track: TrackId { pid: w as u32, tid },
                            name: "prop",
                            t_ns: v,
                            dur_ns: v.wrapping_mul(7),
                            flow: !v,
                            arg_name: "v",
                            arg: v,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let before = t.stats();
        prop_assert_eq!(before.emitted, writers * per_writer);
        prop_assert!(before.consistent(), "pre-drain accounting: {:?}", before);

        let mut drained = Vec::new();
        t.drain(|r| drained.push(r));
        let after = t.stats();
        prop_assert_eq!(after.retained, 0);
        prop_assert_eq!(after.drained, drained.len() as u64);
        prop_assert_eq!(after.emitted, after.drained + after.dropped);
        prop_assert!(after.consistent(), "post-drain accounting: {:?}", after);

        // No torn records: every field of a drained record is a pure
        // function of its `arg`, and no record is drained twice.
        let mut seen = Vec::new();
        for r in &drained {
            prop_assert_eq!(r.name, "prop");
            prop_assert_eq!(r.t_ns, r.arg);
            prop_assert_eq!(r.dur_ns, r.arg.wrapping_mul(7));
            prop_assert_eq!(r.flow, !r.arg);
            prop_assert_eq!(u64::from(r.track.pid), r.arg / per_writer.max(1));
            seen.push(r.arg);
        }
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), drained.len(), "a record was drained twice");
    }

    /// Spans produced by guard (stack) discipline on a monotonic clock
    /// are well-formed: durations are non-negative by construction,
    /// every parent opens strictly before its children, and children
    /// close within their parent. Flow start/finish pairs resolve to
    /// each other, start before finish.
    #[test]
    fn spans_are_well_formed_and_flows_resolve(program in steps()) {
        let t = Tracer::default();
        let clock = AtomicU64::new(1);
        let now = || clock.fetch_add(1, Ordering::Relaxed);
        let track = TrackId { pid: 0, tid: 1 };
        let mut stack = Vec::new();
        for step in &program {
            match step {
                Step::Open => {
                    let name = SPAN_NAMES[stack.len() % SPAN_NAMES.len()];
                    stack.push(t.span(name, track, now));
                }
                Step::Close => {
                    stack.pop();
                }
                Step::Instant => t.instant("tick", track, now(), "", 0),
                Step::Flow => {
                    let id = t.next_flow_id();
                    t.flow_start("link", track, now(), id);
                    t.flow_finish("link", track, now(), id);
                }
            }
        }
        while stack.pop().is_some() {}

        let records = t.take_records();
        let stats = t.stats();
        prop_assert_eq!(stats.dropped, 0, "program must fit the ring");
        prop_assert!(stats.consistent());

        let spans: Vec<&TraceRecord> =
            records.iter().filter(|r| r.kind == RecordKind::Span).collect();
        for a in &spans {
            let (a0, a1) = (a.t_ns, a.t_ns + a.dur_ns);
            prop_assert!(a1 >= a0);
            for b in &spans {
                let (b0, b1) = (b.t_ns, b.t_ns + b.dur_ns);
                // Stack discipline on a strictly monotonic clock: two
                // spans either nest or are disjoint — any overlap means
                // the later-opened one closed within the earlier.
                if a0 < b0 && b0 < a1 {
                    prop_assert!(b1 <= a1, "span {} [{},{}] straddles {} [{},{}]",
                        b.name, b0, b1, a.name, a0, a1);
                }
            }
        }

        let starts: Vec<&TraceRecord> =
            records.iter().filter(|r| r.kind == RecordKind::FlowStart).collect();
        let finishes: Vec<&TraceRecord> =
            records.iter().filter(|r| r.kind == RecordKind::FlowFinish).collect();
        prop_assert_eq!(starts.len(), finishes.len());
        for s in &starts {
            let matched: Vec<_> = finishes.iter().filter(|f| f.flow == s.flow).collect();
            prop_assert_eq!(matched.len(), 1, "flow id must resolve exactly once");
            prop_assert!(matched[0].t_ns >= s.t_ns, "flow must finish after it starts");
        }
    }

    /// Whatever the program emitted, the Chrome export is valid JSON
    /// with one event per record plus per-track metadata.
    #[test]
    fn export_always_parses(program in steps()) {
        let t = Tracer::default();
        let clock = AtomicU64::new(1);
        let now = || clock.fetch_add(1, Ordering::Relaxed);
        let track = TrackId { pid: 3, tid: 2 };
        let mut stack = Vec::new();
        for step in &program {
            match step {
                Step::Open => stack.push(t.span("s", track, now)),
                Step::Close => {
                    stack.pop();
                }
                Step::Instant => t.instant("i", track, now(), "n", 1),
                Step::Flow => {
                    let id = t.next_flow_id();
                    t.flow_start("f", track, now(), id);
                    t.flow_finish("f", track, now(), id);
                }
            }
        }
        while stack.pop().is_some() {}
        let emitted = t.stats().emitted;
        let json = t.export_chrome_trace();
        let doc = parse(&json).expect("export must be valid JSON");
        match doc.get("traceEvents") {
            Some(JsonValue::Arr(events)) => {
                let metadata = if emitted > 0 { 2 } else { 0 };
                prop_assert_eq!(events.len() as u64, emitted + metadata);
            }
            other => prop_assert!(false, "traceEvents must be an array, got {:?}", other),
        }
    }
}
