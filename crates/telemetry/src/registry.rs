//! A registry that namespaces metric families.
//!
//! Components register their metrics under `family.name` keys (for the
//! engine: `op.ingest`, `cache.hits`, …) and hold the returned `Arc` for
//! the hot path; the registry itself is only walked at export time, so
//! registration cost never shows up in per-operation latency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, Unit};

/// One registered metric, tagged with its kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Arc<Counter>),
    /// A level.
    Gauge(Arc<Gauge>),
    /// A latency (or size) distribution.
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    metric: Metric,
    unit: Unit,
    help: &'static str,
}

/// Namespaced metric families. Keys are `family.name`; re-registering
/// an existing key returns the existing metric (so two components can
/// share a family without coordination).
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        family: &str,
        name: &str,
        make: impl FnOnce() -> Metric,
        unit: Unit,
        help: &'static str,
    ) -> Metric {
        let key = format!("{family}.{name}");
        // Recover a poisoned lock instead of propagating the panic:
        // every metric is atomic and the map is append-only, so a
        // thread that died mid-registration leaves nothing half-built
        // worth failing exports over.
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        entries
            .entry(key)
            .or_insert_with(|| Entry {
                metric: make(),
                unit,
                help,
            })
            .metric
            .clone()
    }

    /// Register (or fetch) a counter. `unit` states what it counts.
    pub fn counter(
        &self,
        family: &str,
        name: &str,
        unit: Unit,
        help: &'static str,
    ) -> Arc<Counter> {
        match self.register(
            family,
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            unit,
            help,
        ) {
            Metric::Counter(c) => c,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, family: &str, name: &str, unit: Unit, help: &'static str) -> Arc<Gauge> {
        match self.register(
            family,
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            unit,
            help,
        ) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a histogram. `unit` is the sample unit
    /// (virtual-ns for latency families).
    pub fn histogram(
        &self,
        family: &str,
        name: &str,
        unit: Unit,
        help: &'static str,
    ) -> Arc<Histogram> {
        match self.register(
            family,
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            unit,
            help,
        ) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Register an *existing* counter under `family.name` (the
    /// [`crate::trace::Tracer`] uses this to expose its own accounting
    /// counters). If the key already exists, the registered counter
    /// wins and is returned — same sharing semantics as
    /// [`Registry::counter`].
    pub fn attach_counter(
        &self,
        family: &str,
        name: &str,
        counter: Arc<Counter>,
        unit: Unit,
        help: &'static str,
    ) -> Arc<Counter> {
        match self.register(family, name, move || Metric::Counter(counter), unit, help) {
            Metric::Counter(c) => c,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Walk every registered metric in key order:
    /// `(full_name, metric, unit, help)`. A poisoned lock (a thread
    /// panicked inside a previous walk's callback) is recovered —
    /// exports are read-mostly and metrics are atomic, so continuing
    /// is safe.
    pub fn for_each(&self, mut f: impl FnMut(&str, &Metric, Unit, &'static str)) {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        for (key, e) in entries.iter() {
            f(key, &e.metric, e.unit, e.help);
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every registered metric as Prometheus / OpenMetrics text
    /// exposition, ending with `# EOF`.
    ///
    /// The output is deterministic for a given set of metric values:
    /// families render in key order (the registry map is a `BTreeMap`),
    /// names are the `family.name` key with `.` → `_` plus a unit
    /// suffix (`_bytes`, `_virtual_ns`; `ops` adds none), counters get
    /// the conventional `_total` sample suffix, and histograms render
    /// cumulative `_bucket{le="…"}` series over the log₂ buckets
    /// (inclusive upper bounds, trailing empty buckets elided) plus
    /// `_sum`/`_count`.
    #[must_use]
    pub fn render_openmetrics(&self) -> String {
        let mut out = String::new();
        self.for_each(|key, metric, unit, help| {
            let mut name = key.replace('.', "_");
            let suffix = match unit {
                Unit::Ops => "",
                Unit::Bytes => "_bytes",
                Unit::VirtualNs => "_virtual_ns",
            };
            if !suffix.is_empty() && !name.ends_with(suffix) {
                name.push_str(suffix);
            }
            if !help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {help}");
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name}_total {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let top = s.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
                    let mut cumulative = 0u64;
                    for (i, &n) in s.buckets.iter().enumerate().take(top) {
                        cumulative += n;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cumulative}",
                            bucket_upper_bound(i)
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
                    let _ = writeln!(out, "{name}_sum {}", s.sum);
                    let _ = writeln!(out, "{name}_count {}", s.count);
                }
            }
        });
        out.push_str("# EOF\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_namespaces_and_shares() {
        let r = Registry::new();
        let c1 = r.counter("cache", "hits", Unit::Ops, "tier-1 hits");
        let c2 = r.counter("cache", "hits", Unit::Ops, "tier-1 hits");
        c1.incr();
        assert_eq!(c2.get(), 1, "same key shares the metric");
        r.gauge("cache", "bytes", Unit::Bytes, "resident bytes");
        r.histogram("op", "ingest", Unit::VirtualNs, "ingest latency");
        assert_eq!(r.len(), 3);
        let mut keys = Vec::new();
        r.for_each(|k, _, unit, _| keys.push((k.to_string(), unit.label())));
        assert_eq!(
            keys,
            vec![
                ("cache.bytes".to_string(), "bytes"),
                ("cache.hits".to_string(), "ops"),
                ("op.ingest".to_string(), "virtual-ns"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("a", "b", Unit::Ops, "");
        r.gauge("a", "b", Unit::Ops, "");
    }

    #[test]
    fn attach_counter_shares_the_given_counter() {
        let r = Registry::new();
        let mine = Arc::new(Counter::new());
        let got = r.attach_counter("trace", "emitted", Arc::clone(&mine), Unit::Ops, "emitted");
        mine.add(7);
        assert_eq!(got.get(), 7, "registry holds the attached counter");
        // Re-registering the key returns the already-attached one.
        let again = r.counter("trace", "emitted", Unit::Ops, "emitted");
        assert_eq!(again.get(), 7);
    }

    #[test]
    fn poisoned_registry_recovers() {
        let r = Arc::new(Registry::new());
        let hits = r.counter("cache", "hits", Unit::Ops, "hits");
        hits.incr();
        // Panic *inside* a for_each callback: the walker holds the
        // lock, so the unwinding thread poisons it.
        let r2 = Arc::clone(&r);
        let died = std::thread::spawn(move || {
            r2.for_each(|_, _, _, _| panic!("callback died mid-walk"));
        })
        .join();
        assert!(died.is_err(), "the walker thread must have panicked");
        // Every entry point still works — one dead exporter must not
        // take down metrics for good.
        assert_eq!(r.len(), 1);
        let mut seen = 0;
        r.for_each(|_, _, _, _| seen += 1);
        assert_eq!(seen, 1);
        assert_eq!(r.counter("cache", "hits", Unit::Ops, "hits").get(), 1);
        assert!(r.render_openmetrics().contains("cache_hits_total 1"));
    }

    #[test]
    fn openmetrics_rendering_matches_golden_output() {
        let r = Registry::new();
        let g = r.gauge("buffer", "bytes", Unit::Bytes, "resident bytes");
        g.set(4096);
        let c = r.counter("worker", "flushes", Unit::Ops, "background flushes");
        c.add(3);
        let h = r.histogram("op", "ingest", Unit::VirtualNs, "ingest latency");
        h.record(0);
        h.record(3);
        h.record(10);
        let expected = "\
# HELP buffer_bytes resident bytes
# TYPE buffer_bytes gauge
buffer_bytes 4096
# HELP op_ingest_virtual_ns ingest latency
# TYPE op_ingest_virtual_ns histogram
op_ingest_virtual_ns_bucket{le=\"0\"} 1
op_ingest_virtual_ns_bucket{le=\"1\"} 1
op_ingest_virtual_ns_bucket{le=\"3\"} 2
op_ingest_virtual_ns_bucket{le=\"7\"} 2
op_ingest_virtual_ns_bucket{le=\"15\"} 3
op_ingest_virtual_ns_bucket{le=\"+Inf\"} 3
op_ingest_virtual_ns_sum 13
op_ingest_virtual_ns_count 3
# HELP worker_flushes background flushes
# TYPE worker_flushes counter
worker_flushes_total 3
# EOF
";
        assert_eq!(r.render_openmetrics(), expected);
    }

    #[test]
    fn openmetrics_empty_registry_is_just_eof() {
        assert_eq!(Registry::new().render_openmetrics(), "# EOF\n");
    }
}
