//! A registry that namespaces metric families.
//!
//! Components register their metrics under `family.name` keys (for the
//! engine: `op.ingest`, `cache.hits`, …) and hold the returned `Arc` for
//! the hot path; the registry itself is only walked at export time, so
//! registration cost never shows up in per-operation latency.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, Unit};

/// One registered metric, tagged with its kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Arc<Counter>),
    /// A level.
    Gauge(Arc<Gauge>),
    /// A latency (or size) distribution.
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    metric: Metric,
    unit: Unit,
    help: &'static str,
}

/// Namespaced metric families. Keys are `family.name`; re-registering
/// an existing key returns the existing metric (so two components can
/// share a family without coordination).
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        family: &str,
        name: &str,
        make: impl FnOnce() -> Metric,
        unit: Unit,
        help: &'static str,
    ) -> Metric {
        let key = format!("{family}.{name}");
        let mut entries = self.entries.lock().expect("registry poisoned");
        entries
            .entry(key)
            .or_insert_with(|| Entry {
                metric: make(),
                unit,
                help,
            })
            .metric
            .clone()
    }

    /// Register (or fetch) a counter. `unit` states what it counts.
    pub fn counter(
        &self,
        family: &str,
        name: &str,
        unit: Unit,
        help: &'static str,
    ) -> Arc<Counter> {
        match self.register(
            family,
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            unit,
            help,
        ) {
            Metric::Counter(c) => c,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, family: &str, name: &str, unit: Unit, help: &'static str) -> Arc<Gauge> {
        match self.register(
            family,
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            unit,
            help,
        ) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a histogram. `unit` is the sample unit
    /// (virtual-ns for latency families).
    pub fn histogram(
        &self,
        family: &str,
        name: &str,
        unit: Unit,
        help: &'static str,
    ) -> Arc<Histogram> {
        match self.register(
            family,
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            unit,
            help,
        ) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {family}.{name} already registered with a different kind"),
        }
    }

    /// Walk every registered metric in key order:
    /// `(full_name, metric, unit, help)`.
    pub fn for_each(&self, mut f: impl FnMut(&str, &Metric, Unit, &'static str)) {
        let entries = self.entries.lock().expect("registry poisoned");
        for (key, e) in entries.iter() {
            f(key, &e.metric, e.unit, e.help);
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry poisoned").len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_namespaces_and_shares() {
        let r = Registry::new();
        let c1 = r.counter("cache", "hits", Unit::Ops, "tier-1 hits");
        let c2 = r.counter("cache", "hits", Unit::Ops, "tier-1 hits");
        c1.incr();
        assert_eq!(c2.get(), 1, "same key shares the metric");
        r.gauge("cache", "bytes", Unit::Bytes, "resident bytes");
        r.histogram("op", "ingest", Unit::VirtualNs, "ingest latency");
        assert_eq!(r.len(), 3);
        let mut keys = Vec::new();
        r.for_each(|k, _, unit, _| keys.push((k.to_string(), unit.label())));
        assert_eq!(
            keys,
            vec![
                ("cache.bytes".to_string(), "bytes"),
                ("cache.hits".to_string(), "ops"),
                ("op.ingest".to_string(), "virtual-ns"),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("a", "b", Unit::Ops, "");
        r.gauge("a", "b", Unit::Ops, "");
    }
}
