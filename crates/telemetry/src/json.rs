//! Minimal JSON writer + parser for NDJSON export and round-trip tests.
//!
//! The workspace is offline (no serde), so this module hand-rolls the
//! tiny subset the telemetry layer needs: an object builder that emits
//! compact one-line JSON, and a recursive-descent parser good enough to
//! validate exported rows and round-trip [`crate::StatsDelta`].
//!
//! Numbers parse into `f64`; integer fields exported by this crate stay
//! well below 2⁵³ (virtual-ns across a whole simulated day is ~8.6e13),
//! so round-trips are exact in practice.

use std::collections::BTreeMap;

/// Builder for one compact JSON object (one NDJSON row).
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field (finite; NaN/inf are emitted as 0 to keep the
    /// row parseable).
    pub fn f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.6}"));
        } else {
            self.buf.push('0');
        }
        self
    }

    /// Add a string field (escaped).
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Add a pre-serialized JSON value verbatim (nested object/array).
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Finish: the complete `{…}` string.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs on integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member `key` of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?.get(key)
    }

    /// Numeric member `key` as `u64` (rounted; `None` if absent or not
    /// a number).
    #[must_use]
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            JsonValue::Num(n) => Some(n.round() as u64),
            _ => None,
        }
    }

    /// Numeric member `key` as `f64`.
    #[must_use]
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns `None` on any syntax error or
/// trailing garbage — callers treat an unparseable row as a failure.
#[must_use]
pub fn parse(input: &str) -> Option<JsonValue> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => Some(JsonValue::Str(parse_string(b, pos)?)),
        b't' => {
            expect(b, pos, "true")?;
            Some(JsonValue::Bool(true))
        }
        b'f' => {
            expect(b, pos, "false")?;
            Some(JsonValue::Bool(false))
        }
        b'n' => {
            expect(b, pos, "null")?;
            Some(JsonValue::Null)
        }
        _ => parse_num(b, pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(())
    } else {
        None
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(map));
            }
            _ => return None,
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar from the remaining input.
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        return None;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_compact_rows() {
        let mut o = JsonObj::new();
        o.u64("a", 1)
            .f64("b", 0.5)
            .str("c", "x\"y")
            .raw("d", "[1,2]");
        assert_eq!(
            o.finish(),
            "{\"a\":1,\"b\":0.500000,\"c\":\"x\\\"y\",\"d\":[1,2]}"
        );
    }

    #[test]
    fn parser_roundtrips_writer_output() {
        let mut o = JsonObj::new();
        o.u64("count", 12345).f64("rate", 3.25).str("name", "fig12");
        let v = parse(&o.finish()).expect("parses");
        assert_eq!(v.get_u64("count"), Some(12345));
        assert_eq!(v.get_f64("rate"), Some(3.25));
        assert_eq!(v.get("name"), Some(&JsonValue::Str("fig12".into())));
    }

    #[test]
    fn parser_handles_nesting_and_arrays() {
        let v = parse(r#"{"a":{"b":[1,2,{"c":true}]},"d":null,"e":-1.5e2}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().get("b").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Obj(
                    [("c".to_string(), JsonValue::Bool(true))]
                        .into_iter()
                        .collect()
                ),
            ])
        );
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get_f64("e"), Some(-150.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_none());
        assert!(parse("{}x").is_none());
        assert!(parse("{\"a\":}").is_none());
        assert!(parse("").is_none());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut o = JsonObj::new();
        o.str("s", "tab\tnl\nquote\"backslash\\end");
        let v = parse(&o.finish()).unwrap();
        assert_eq!(
            v.get("s"),
            Some(&JsonValue::Str("tab\tnl\nquote\"backslash\\end".into()))
        );
    }
}
