//! Atomic metric primitives: counters, gauges, and log₂-bucketed
//! histograms with a fixed bucket array (no allocation on the record
//! path).

use std::sync::atomic::{AtomicU64, Ordering};

/// The unit a metric is reported in. Stated explicitly so exported
/// numbers are never ambiguous (see the crate-level Units section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A count of operations or events.
    Ops,
    /// Bytes.
    Bytes,
    /// Virtual nanoseconds on the shared simulated clock (wall-clock
    /// nanoseconds when driven against real hardware).
    VirtualNs,
}

impl Unit {
    /// Stable lowercase label used in exported metric catalogs.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Unit::Ops => "ops",
            Unit::Bytes => "bytes",
            Unit::VirtualNs => "virtual-ns",
        }
    }
}

/// A monotonically increasing event count (unit: whatever its
/// [`Registry`](crate::Registry) entry declares, typically ops or
/// bytes). Lock-free; `&self` everywhere.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that can move both ways (resident bytes, open scans, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating at zero).
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of buckets in every [`Histogram`]: bucket 0 holds exact
/// zeros, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, and the last
/// bucket absorbs everything from `2^62` up. The array is a fixed-size
/// field of the histogram — recording never allocates.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (for the engine: latency
/// in virtual-ns). Recording is three relaxed atomic RMWs plus one
/// `fetch_max` into a **fixed** `[AtomicU64; 64]` bucket array — a
/// bounded constant with no allocation, cheap enough for per-record hot
/// paths like scan-next.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Map a sample to its bucket: 0 → 0, otherwise `⌊log₂ v⌋ + 1`, capped
/// at the last bucket.
#[must_use]
pub(crate) fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (used for percentile readout and
/// the OpenMetrics `le` labels).
#[must_use]
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A histogram with all buckets at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Constant-time, allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far (unit: ops).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copyable snapshot for reporting.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Fold another histogram's snapshot into this one (bucket-wise
    /// add), as if its samples had been recorded here. With per-shard
    /// histograms this is how a global latency family is assembled.
    pub fn merge(&self, other: &HistogramSnapshot) {
        for (b, &n) in self.buckets.iter().zip(other.buckets.iter()) {
            b.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }
}

/// Copyable summary of a [`Histogram`]. Sample unit is whatever the
/// histogram recorded (virtual-ns for the engine's latency families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (unit: ops); see [`HISTOGRAM_BUCKETS`]
    /// for the bucket boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples (unit: ops).
    pub count: u64,
    /// Sum of all samples (sample unit, e.g. virtual-ns). Wraps mod
    /// 2⁶⁴ if the stream exceeds `u64::MAX` in aggregate.
    pub sum: u64,
    /// Largest sample observed (sample unit).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty; sample unit).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Value at quantile `q ∈ [0, 1]`: the inclusive upper bound of the
    /// first bucket whose cumulative count reaches `q × count`, clamped
    /// to the observed [`HistogramSnapshot::max`] so the top bucket
    /// never reports an absurd bound. 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (sample unit).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (sample unit).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (sample unit).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Difference between two snapshots (`self − earlier`): bucket and
    /// counter fields subtract (the sum wraps, matching its recording
    /// semantics); `max` is carried from `self` (it is a high-water
    /// mark, not a counter).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] - earlier.buckets[i]),
            count: self.count - earlier.count,
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Combine two snapshots as if their streams had been recorded into
    /// one histogram: buckets and counts add, the sum wraps (matching
    /// its recording semantics), and `max` takes the larger high-water
    /// mark. Associative and commutative, so summing per-shard
    /// snapshots in any order yields the same global histogram — the
    /// property the shard-aggregation proptest pins.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge saturates at zero");
    }

    #[test]
    fn bucket_mapping_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for shift in 0..64 {
            assert!(bucket_index(1u64 << shift) < HISTOGRAM_BUCKETS);
        }
    }

    #[test]
    fn record_path_is_a_fixed_array_no_allocation() {
        // The whole histogram is one inline struct: a fixed bucket
        // array plus three scalars. If someone swaps the array for a
        // Vec/HashMap (allocating on record), this size pin fails.
        assert_eq!(
            std::mem::size_of::<Histogram>(),
            (HISTOGRAM_BUCKETS + 3) * std::mem::size_of::<u64>()
        );
        // Extreme values stay in-bounds rather than growing anything.
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn snapshot_stats_and_percentiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1110);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 185.0).abs() < 1e-9);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.quantile(1.0), 1000, "top quantile clamps to max");
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn merge_is_bucketwise_add() {
        let h1 = Histogram::new();
        let h2 = Histogram::new();
        for v in [1u64, 100] {
            h1.record(v);
        }
        for v in [2u64, 5000] {
            h2.record(v);
        }
        let merged = h1.snapshot().merge(&h2.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 5103);
        assert_eq!(merged.max, 5000);
        assert_eq!(merged.buckets.iter().sum::<u64>(), 4);
        // Folding into a live histogram matches snapshot-level merge.
        h1.merge(&h2.snapshot());
        assert_eq!(h1.snapshot(), merged);
    }

    #[test]
    fn snapshot_delta_subtracts_counts_keeps_max() {
        let h = Histogram::new();
        h.record(10);
        let a = h.snapshot();
        h.record(20);
        h.record(5);
        let b = h.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 25);
        assert_eq!(d.max, 20);
        assert_eq!(d.buckets.iter().sum::<u64>(), 2);
    }
}
