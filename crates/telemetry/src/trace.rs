//! `masm-trace` — a lock-free flight recorder with Perfetto export.
//!
//! The metrics layer answers *how much*; this module answers *why*: it
//! records causally-linked spans and instant events across the engine's
//! threads — ingest → backpressure stall → sealed batch → flush job →
//! the compaction or migration it triggered — into bounded in-memory
//! ring buffers, and exports them as Chrome trace-event JSON that opens
//! directly in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! # Design
//!
//! * **Fixed-size records.** A [`TraceRecord`] is `Copy`, contains no
//!   heap data (names are `&'static str`), and its exact size is pinned
//!   by a test — the emit path allocates nothing, ever.
//! * **Bounded rings, overflow counted.** Records land in one of
//!   [`TRACE_RINGS`] bounded ring buffers (writers are striped by
//!   thread id; claims are CAS-based and lock-free). A full ring
//!   *drops* the record and counts it — emitters never block and never
//!   overwrite unread data, so `emitted == retained + drained +
//!   dropped` holds exactly ([`TraceStats`]).
//! * **Pay for what you use.** [`Tracer::enabled`] is one relaxed
//!   atomic load; every instrumentation site checks it first, so a
//!   disabled tracer costs one load per operation. Hot per-operation
//!   spans are additionally sampled 1-in-2^`op_sample_shift`.
//! * **Causal links.** Flow ids ([`Tracer::next_flow_id`]) connect a
//!   producer-side [`Tracer::flow_start`] to a consumer-side
//!   [`Tracer::flow_finish`] across threads; Perfetto draws the arrow
//!   between the enclosing slices. Track ids map `pid` = shard and
//!   `tid` = OS thread ([`current_tid`]), so a sharded engine renders
//!   as one process lane per shard.
//!
//! Timestamps come from whatever clock the caller samples — the engine
//! passes virtual [`crate::ClockSource`] time (session cursors or the
//! shared high-water clock), wall-clock drivers pass
//! [`crate::WallClock`] time. The export writes microsecond `ts`/`dur`
//! fields as Chrome expects.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::JsonObj;
use crate::metrics::{Counter, Unit};
use crate::registry::Registry;
use crate::stats::EngineStats;

/// Number of ring buffers writers are striped over (by thread id).
pub const TRACE_RINGS: usize = 16;

/// The kind of one [`TraceRecord`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A complete span (`ph:"X"`): `[t_ns, t_ns + dur_ns]`.
    Span,
    /// A thread-scoped instant event (`ph:"i"`).
    Instant,
    /// A flow origin (`ph:"s"`), bound to the enclosing span.
    FlowStart,
    /// A flow target (`ph:"f"`), bound to the enclosing span.
    FlowFinish,
    /// A counter sample (`ph:"C"`).
    Counter,
}

/// Where an event renders: `pid` = shard, `tid` = worker/actor thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId {
    /// Process lane: the shard id (0 for an unsharded engine).
    pub pid: u32,
    /// Thread lane: a process-wide thread index ([`current_tid`]).
    pub tid: u32,
}

/// One fixed-size trace record. `Copy`, no heap data — the emit path
/// is allocation-free by construction (size pinned by a test, like
/// [`crate::Histogram`]'s bucket array).
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Event kind.
    pub kind: RecordKind,
    /// Shard/thread lane.
    pub track: TrackId,
    /// Event (or span) name; flow start/finish pairs share a name.
    pub name: &'static str,
    /// Event time in clock nanoseconds (span start for [`RecordKind::Span`]).
    pub t_ns: u64,
    /// Span duration (0 for non-span records).
    pub dur_ns: u64,
    /// Flow id linking a start/finish pair (0 = none).
    pub flow: u64,
    /// Name of the numeric payload (`""` = none).
    pub arg_name: &'static str,
    /// Numeric payload (bytes, attempts, lag, counter value, …).
    pub arg: u64,
}

impl TraceRecord {
    const EMPTY: TraceRecord = TraceRecord {
        kind: RecordKind::Instant,
        track: TrackId { pid: 0, tid: 0 },
        name: "",
        t_ns: 0,
        dur_ns: 0,
        flow: 0,
        arg_name: "",
        arg: 0,
    };
}

/// One bounded ring: multi-producer (CAS claim), single consumer (the
/// drain path holds [`Tracer`]'s drain lock). Producers that find the
/// ring full return `false` instead of blocking or overwriting.
struct Ring {
    /// Next claim index (monotonic, not wrapped).
    head: AtomicU64,
    /// Next read index (monotonic; advanced only by the consumer).
    tail: AtomicU64,
    /// `seq == index + 1` marks a slot as published for that index.
    slots: Box<[Slot]>,
}

struct Slot {
    seq: AtomicU64,
    rec: UnsafeCell<TraceRecord>,
}

// Slots are written only by the producer that CAS-claimed their index
// and read only after the matching release-store of `seq` — the
// acquire/release pair orders the record bytes, so no torn reads.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let slots = (0..capacity.max(2))
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                rec: UnsafeCell::new(TraceRecord::EMPTY),
            })
            .collect();
        Ring {
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots,
        }
    }

    fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Lock-free bounded push: `false` when the ring is full (the
    /// record is dropped, never blocking the emitter).
    fn push(&self, rec: TraceRecord) -> bool {
        loop {
            let head = self.head.load(Ordering::Acquire);
            let tail = self.tail.load(Ordering::Acquire);
            if head.wrapping_sub(tail) >= self.capacity() {
                return false;
            }
            if self
                .head
                .compare_exchange_weak(head, head + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let slot = &self.slots[(head % self.capacity()) as usize];
                // Safety: this producer owns index `head` exclusively
                // (the CAS), and the consumer cannot touch the slot
                // until the release-store below publishes it.
                unsafe { *slot.rec.get() = rec };
                slot.seq.store(head + 1, Ordering::Release);
                return true;
            }
        }
    }

    /// Single-consumer drain (caller holds the tracer's drain lock).
    fn drain(&self, f: &mut impl FnMut(TraceRecord)) -> u64 {
        let mut n = 0;
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            if tail == self.head.load(Ordering::Acquire) {
                return n;
            }
            let slot = &self.slots[(tail % self.capacity()) as usize];
            if slot.seq.load(Ordering::Acquire) != tail + 1 {
                // Claimed but not yet published; the producer is mid-write.
                std::hint::spin_loop();
                continue;
            }
            // Safety: published (seq acquire above) and not yet consumed
            // (tail advances only below, after the copy).
            let rec = unsafe { *slot.rec.get() };
            self.tail.store(tail + 1, Ordering::Release);
            f(rec);
            n += 1;
        }
    }

    fn len(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.tail.load(Ordering::Acquire))
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's process-wide trace thread index (assigned on first
/// use, stable for the thread's lifetime).
#[must_use]
pub fn current_tid() -> u32 {
    THREAD_TID.with(|t| *t)
}

/// Tracer construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Capacity of each of the [`TRACE_RINGS`] ring buffers, in
    /// records. Overflow is counted ([`TraceStats::dropped`]), not
    /// blocked on.
    pub ring_capacity: usize,
    /// Sample hot per-operation spans 1-in-2^shift
    /// ([`Tracer::op_span`]); 0 records every operation. Lifecycle
    /// events (jobs, flows, instants) are never sampled away.
    pub op_sample_shift: u32,
    /// Whether the tracer starts enabled.
    pub enabled: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
            op_sample_shift: 0,
            enabled: true,
        }
    }
}

/// Emission accounting. The exact-drop invariant is
/// `emitted == retained + drained + dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Records offered to the rings while the tracer was enabled.
    pub emitted: u64,
    /// Records dropped because their ring was full.
    pub dropped: u64,
    /// Records handed to a consumer by [`Tracer::drain`].
    pub drained: u64,
    /// Records currently waiting in the rings.
    pub retained: u64,
}

impl TraceStats {
    /// Whether the drop-accounting invariant holds.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.emitted == self.retained + self.drained + self.dropped
    }
}

/// The flight recorder: lock-free span/event emission into bounded
/// rings, drained on demand and exported as Chrome trace-event JSON.
#[derive(Debug)]
pub struct Tracer {
    rings: Vec<Ring>,
    enabled: AtomicBool,
    op_mask: u64,
    op_counter: AtomicU64,
    next_flow: AtomicU64,
    emitted: Arc<Counter>,
    dropped: Arc<Counter>,
    violations: Arc<Counter>,
    drained: AtomicU64,
    /// Serializes consumers; the emit path never touches it.
    drain_lock: Mutex<()>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    /// Build a tracer with the given ring capacity and sampling knobs.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Tracer {
        Tracer {
            rings: (0..TRACE_RINGS)
                .map(|_| Ring::new(cfg.ring_capacity))
                .collect(),
            enabled: AtomicBool::new(cfg.enabled),
            op_mask: (1u64 << cfg.op_sample_shift.min(63)) - 1,
            op_counter: AtomicU64::new(0),
            next_flow: AtomicU64::new(1),
            emitted: Arc::new(Counter::new()),
            dropped: Arc::new(Counter::new()),
            violations: Arc::new(Counter::new()),
            drained: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
        }
    }

    /// Whether recording is on — **one relaxed atomic load**; this is
    /// the whole per-operation cost of a disabled tracer.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// A fresh process-unique flow id (never 0).
    pub fn next_flow_id(&self) -> u64 {
        self.next_flow.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether this hot-path operation is in the 1-in-2^shift sample.
    #[inline]
    pub fn sample_op(&self) -> bool {
        self.op_mask == 0 || (self.op_counter.fetch_add(1, Ordering::Relaxed) & self.op_mask) == 0
    }

    /// The `trace.violations` counter ([`InvariantWatchdog`] bumps it).
    #[must_use]
    pub fn violations_counter(&self) -> &Arc<Counter> {
        &self.violations
    }

    /// Register the `trace.*` counters (emitted / dropped /
    /// violations) into `registry` so metric-catalog exports include
    /// the recorder's own accounting.
    pub fn bind_registry(&self, registry: &Registry) {
        registry.attach_counter(
            "trace",
            "emitted",
            Arc::clone(&self.emitted),
            Unit::Ops,
            "trace records offered to the ring buffers",
        );
        registry.attach_counter(
            "trace",
            "dropped",
            Arc::clone(&self.dropped),
            Unit::Ops,
            "trace records dropped on ring overflow",
        );
        registry.attach_counter(
            "trace",
            "violations",
            Arc::clone(&self.violations),
            Unit::Ops,
            "invariant violations observed by the watchdog",
        );
    }

    /// Emit one record (no-op when disabled). Lock-free and
    /// allocation-free; overflow is counted, not blocked on.
    pub fn emit(&self, rec: TraceRecord) {
        if !self.enabled() {
            return;
        }
        self.emitted.incr();
        let ring = &self.rings[rec.track.tid as usize % TRACE_RINGS];
        if !ring.push(rec) {
            self.dropped.incr();
        }
    }

    /// A complete span with explicit start and duration.
    pub fn span_event(
        &self,
        name: &'static str,
        track: TrackId,
        t_ns: u64,
        dur_ns: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        self.emit(TraceRecord {
            kind: RecordKind::Span,
            track,
            name,
            t_ns,
            dur_ns,
            flow: 0,
            arg_name,
            arg,
        });
    }

    /// A thread-scoped instant event.
    pub fn instant(
        &self,
        name: &'static str,
        track: TrackId,
        t_ns: u64,
        arg_name: &'static str,
        arg: u64,
    ) {
        self.emit(TraceRecord {
            kind: RecordKind::Instant,
            track,
            name,
            t_ns,
            dur_ns: 0,
            flow: 0,
            arg_name,
            arg,
        });
    }

    /// A flow origin: Perfetto draws an arrow from the span enclosing
    /// this event to the span enclosing the matching
    /// [`Tracer::flow_finish`].
    pub fn flow_start(&self, name: &'static str, track: TrackId, t_ns: u64, flow: u64) {
        self.emit(TraceRecord {
            kind: RecordKind::FlowStart,
            track,
            name,
            t_ns,
            dur_ns: 0,
            flow,
            arg_name: "",
            arg: 0,
        });
    }

    /// A flow target (see [`Tracer::flow_start`]).
    pub fn flow_finish(&self, name: &'static str, track: TrackId, t_ns: u64, flow: u64) {
        self.emit(TraceRecord {
            kind: RecordKind::FlowFinish,
            track,
            name,
            t_ns,
            dur_ns: 0,
            flow,
            arg_name: "",
            arg: 0,
        });
    }

    /// A counter sample (renders as a counter track).
    pub fn counter(&self, name: &'static str, track: TrackId, t_ns: u64, value: u64) {
        self.emit(TraceRecord {
            kind: RecordKind::Counter,
            track,
            name,
            t_ns,
            dur_ns: 0,
            flow: 0,
            arg_name: "value",
            arg: value,
        });
    }

    /// A drop-guard span: records a complete span from now (per the
    /// caller's clock closure, mirroring [`crate::Timer`]) to the
    /// guard's drop.
    pub fn span<F: Fn() -> u64>(
        &self,
        name: &'static str,
        track: TrackId,
        now: F,
    ) -> SpanGuard<'_, F> {
        let start = now();
        SpanGuard {
            tracer: self,
            name,
            track,
            start,
            now,
            arg_name: "",
            arg: 0,
        }
    }

    /// A sampled hot-path span: `None` (cost: one relaxed
    /// fetch-and-add) for operations outside the 1-in-2^shift sample.
    pub fn op_span<F: Fn() -> u64>(
        &self,
        name: &'static str,
        track: TrackId,
        now: F,
    ) -> Option<SpanGuard<'_, F>> {
        if !self.sample_op() {
            return None;
        }
        Some(self.span(name, track, now))
    }

    /// Drain every ring in thread-stripe order, handing each record to
    /// `f`. Single-consumer (internally serialized); concurrent
    /// emitters keep running lock-free.
    pub fn drain(&self, mut f: impl FnMut(TraceRecord)) -> u64 {
        let _guard = self
            .drain_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut n = 0;
        for ring in &self.rings {
            n += ring.drain(&mut f);
        }
        self.drained.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Drain into a vector, sorted by event time (stable, so equal
    /// timestamps keep emission-stripe order).
    pub fn take_records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        self.drain(|r| out.push(r));
        out.sort_by_key(|r| r.t_ns);
        out
    }

    /// Emission accounting (see [`TraceStats::consistent`]).
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            emitted: self.emitted.get(),
            dropped: self.dropped.get(),
            drained: self.drained.load(Ordering::Relaxed),
            retained: self.rings.iter().map(Ring::len).sum(),
        }
    }

    /// Drain everything and render it as Chrome trace-event JSON (see
    /// [`render_chrome_trace`]).
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        render_chrome_trace(&self.take_records())
    }
}

/// A drop-guard recording a complete span, mirroring [`crate::Timer`]:
/// the clock closure is sampled at construction and at drop.
pub struct SpanGuard<'t, F: Fn() -> u64> {
    tracer: &'t Tracer,
    name: &'static str,
    track: TrackId,
    start: u64,
    now: F,
    arg_name: &'static str,
    arg: u64,
}

impl<F: Fn() -> u64> SpanGuard<'_, F> {
    /// Attach a numeric payload to the span record.
    pub fn set_arg(&mut self, name: &'static str, value: u64) {
        self.arg_name = name;
        self.arg = value;
    }
}

impl<F: Fn() -> u64> Drop for SpanGuard<'_, F> {
    fn drop(&mut self) {
        let end = (self.now)();
        self.tracer.span_event(
            self.name,
            self.track,
            self.start,
            end.saturating_sub(self.start),
            self.arg_name,
            self.arg,
        );
    }
}

fn push_event(events: &mut Vec<String>, rec: &TraceRecord) {
    let ts_us = rec.t_ns as f64 / 1000.0;
    let mut o = JsonObj::new();
    match rec.kind {
        RecordKind::Span => {
            o.str("name", rec.name)
                .str("cat", "masm")
                .str("ph", "X")
                .f64("ts", ts_us)
                .f64("dur", rec.dur_ns as f64 / 1000.0)
                .u64("pid", u64::from(rec.track.pid))
                .u64("tid", u64::from(rec.track.tid));
            if !rec.arg_name.is_empty() {
                let mut args = JsonObj::new();
                args.u64(rec.arg_name, rec.arg);
                o.raw("args", &args.finish());
            }
        }
        RecordKind::Instant => {
            o.str("name", rec.name)
                .str("cat", "masm")
                .str("ph", "i")
                .str("s", "t")
                .f64("ts", ts_us)
                .u64("pid", u64::from(rec.track.pid))
                .u64("tid", u64::from(rec.track.tid));
            if !rec.arg_name.is_empty() {
                let mut args = JsonObj::new();
                args.u64(rec.arg_name, rec.arg);
                o.raw("args", &args.finish());
            }
        }
        RecordKind::FlowStart | RecordKind::FlowFinish => {
            o.str("name", rec.name).str("cat", "flow");
            if rec.kind == RecordKind::FlowStart {
                o.str("ph", "s");
            } else {
                o.str("ph", "f").str("bp", "e");
            }
            o.u64("id", rec.flow)
                .f64("ts", ts_us)
                .u64("pid", u64::from(rec.track.pid))
                .u64("tid", u64::from(rec.track.tid));
        }
        RecordKind::Counter => {
            let mut args = JsonObj::new();
            args.u64(rec.arg_name, rec.arg);
            o.str("name", rec.name)
                .str("ph", "C")
                .f64("ts", ts_us)
                .u64("pid", u64::from(rec.track.pid))
                .raw("args", &args.finish());
        }
    }
    events.push(o.finish());
}

/// Render drained records as a Chrome trace-event JSON document
/// (`{"traceEvents":[…]}`), openable in Perfetto / `chrome://tracing`.
/// Process (`shard-N`) and thread names are synthesized as metadata
/// events for every track that appears.
#[must_use]
pub fn render_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 8);
    let mut seen_pids: Vec<u32> = Vec::new();
    let mut seen_tracks: Vec<TrackId> = Vec::new();
    for rec in records {
        if !seen_pids.contains(&rec.track.pid) {
            seen_pids.push(rec.track.pid);
        }
        if !seen_tracks.contains(&rec.track) {
            seen_tracks.push(rec.track);
        }
    }
    seen_pids.sort_unstable();
    seen_tracks.sort_unstable_by_key(|t| (t.pid, t.tid));
    for pid in seen_pids {
        let mut args = JsonObj::new();
        args.str("name", &format!("shard-{pid}"));
        let mut o = JsonObj::new();
        o.str("name", "process_name")
            .str("ph", "M")
            .u64("pid", u64::from(pid))
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    for track in seen_tracks {
        let mut args = JsonObj::new();
        args.str("name", &format!("thread-{}", track.tid));
        let mut o = JsonObj::new();
        o.str("name", "thread_name")
            .str("ph", "M")
            .u64("pid", u64::from(track.pid))
            .u64("tid", u64::from(track.tid))
            .raw("args", &args.finish());
        events.push(o.finish());
    }
    for rec in records {
        push_event(&mut events, rec);
    }
    let mut doc = JsonObj::new();
    doc.raw("traceEvents", &format!("[{}]", events.join(",")))
        .str("displayTimeUnit", "ms");
    doc.finish()
}

/// Polls [`EngineStats`] on a configurable interval (measured on the
/// snapshot's own `at_ns`, so it behaves identically under simulated
/// and wall-clock time, like [`crate::TimeSeriesWriter`]) and emits
/// instant events + the `trace.violations` counter when the paper's
/// bounded-cost invariants regress — the violation is recorded *in
/// situ*, surrounded by the causal context that produced it.
#[derive(Debug)]
pub struct InvariantWatchdog {
    tracer: Arc<Tracer>,
    track: TrackId,
    interval_ns: u64,
    max_epoch_lag: u64,
    last_poll: Option<u64>,
}

impl InvariantWatchdog {
    /// A watchdog emitting on `tracer` under `track` (pid = the shard
    /// being watched), polling at most once per `interval_ns`.
    #[must_use]
    pub fn new(tracer: Arc<Tracer>, track: TrackId, interval_ns: u64) -> Self {
        InvariantWatchdog {
            tracer,
            track,
            interval_ns,
            max_epoch_lag: 64,
            last_poll: None,
        }
    }

    /// Epoch-lag alarm threshold (default 64): a pinned query snapshot
    /// trailing the publish head by more than this many epochs emits an
    /// `epoch.lag` instant event.
    #[must_use]
    pub fn with_max_epoch_lag(mut self, lag: u64) -> Self {
        self.max_epoch_lag = lag;
        self
    }

    /// Check one snapshot. Returns the violation messages found (empty
    /// when the interval has not elapsed or everything holds). The
    /// first poll always samples.
    pub fn poll(&mut self, stats: &EngineStats) -> Vec<String> {
        let now = stats.at_ns;
        if let Some(last) = self.last_poll {
            if now.saturating_sub(last) < self.interval_ns {
                return Vec::new();
            }
        }
        self.last_poll = Some(now);
        let violations = stats.invariant_violations();
        for _ in &violations {
            self.tracer.violations_counter().incr();
            self.tracer.instant(
                "invariant.violation",
                self.track,
                now,
                "total",
                self.tracer.violations_counter().get(),
            );
        }
        if stats.workers.epoch_lag > self.max_epoch_lag {
            self.tracer.instant(
                "epoch.lag",
                self.track,
                now,
                "epochs",
                stats.workers.epoch_lag,
            );
        }
        self.tracer.counter(
            "trace.violations",
            self.track,
            now,
            self.tracer.violations_counter().get(),
        );
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::sync::atomic::AtomicU64;
    use std::thread;

    fn track(pid: u32, tid: u32) -> TrackId {
        TrackId { pid, tid }
    }

    /// The emit path writes one fixed-size record — no heap data, no
    /// allocation. Two `&'static str` (two words each) + four u64
    /// payload fields + the 8-byte track + the kind byte, padded to
    /// 8-byte alignment: 80 bytes. If this grows, the flight recorder's
    /// memory bound and allocation-freeness both change: move the new
    /// state somewhere else.
    #[test]
    fn record_is_fixed_size_no_allocation() {
        assert_eq!(std::mem::size_of::<TraceRecord>(), 80);
        // Copy is what lets the ring hand records around by value.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceRecord>();
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::new(TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        });
        t.instant("x", track(0, 1), 10, "", 0);
        drop(t.span("s", track(0, 1), || 5));
        let s = t.stats();
        assert_eq!(s.emitted, 0);
        assert_eq!(s.retained, 0);
        assert!(s.consistent());
        t.set_enabled(true);
        t.instant("x", track(0, 1), 10, "", 0);
        assert_eq!(t.stats().emitted, 1);
    }

    #[test]
    fn overflow_is_counted_not_blocked() {
        let t = Tracer::new(TraceConfig {
            ring_capacity: 4,
            ..TraceConfig::default()
        });
        // All records from one tid land in one 4-slot ring.
        for i in 0..20 {
            t.instant("e", track(0, 1), i, "", 0);
        }
        let s = t.stats();
        assert_eq!(s.emitted, 20);
        assert_eq!(s.retained, 4);
        assert_eq!(s.dropped, 16);
        assert!(s.consistent());
        let drained = t.drain(|_| {});
        assert_eq!(drained, 4);
        let s = t.stats();
        assert_eq!(s.drained, 4);
        assert_eq!(s.retained, 0);
        assert!(s.consistent());
    }

    /// Concurrent writers against a concurrent drainer: every drained
    /// record is internally consistent (never torn across fields) and
    /// the drop accounting is exact.
    #[test]
    fn concurrent_stress_no_torn_records_exact_accounting() {
        const WRITERS: u64 = 8;
        const PER_WRITER: u64 = 20_000;
        let t = Arc::new(Tracer::new(TraceConfig {
            ring_capacity: 256,
            ..TraceConfig::default()
        }));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));

        let drainer = {
            let t = Arc::clone(&t);
            let seen = Arc::clone(&seen);
            let stop = Arc::clone(&stop);
            thread::spawn(move || loop {
                let mut batch = Vec::new();
                t.drain(|r| batch.push(r));
                seen.lock().unwrap().extend(batch);
                if stop.load(Ordering::Acquire) {
                    let mut batch = Vec::new();
                    t.drain(|r| batch.push(r));
                    seen.lock().unwrap().extend(batch);
                    return;
                }
                std::hint::spin_loop();
            })
        };

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    let tid = current_tid();
                    for i in 0..PER_WRITER {
                        // Every field derived from (w, i): a torn record
                        // breaks the cross-field checks below.
                        let v = w * PER_WRITER + i;
                        t.emit(TraceRecord {
                            kind: RecordKind::Span,
                            track: track(w as u32, tid),
                            name: "stress",
                            t_ns: v,
                            dur_ns: v.wrapping_mul(3),
                            flow: v ^ 0xABCD,
                            arg_name: "v",
                            arg: v,
                        });
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        drainer.join().unwrap();

        let seen = seen.lock().unwrap();
        for r in seen.iter() {
            assert_eq!(r.name, "stress");
            assert_eq!(r.t_ns, r.arg, "torn record: t_ns vs arg");
            assert_eq!(r.dur_ns, r.arg.wrapping_mul(3), "torn record: dur");
            assert_eq!(r.flow, r.arg ^ 0xABCD, "torn record: flow");
            assert_eq!(u64::from(r.track.pid), r.arg / PER_WRITER, "torn track");
        }
        let s = t.stats();
        assert_eq!(s.emitted, WRITERS * PER_WRITER);
        assert_eq!(s.retained, 0);
        assert_eq!(s.drained, seen.len() as u64);
        assert!(s.consistent(), "emitted != drained + dropped: {s:?}");
        // No writer-side duplicates: drained values are unique.
        let mut vals: Vec<u64> = seen.iter().map(|r| r.arg).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), seen.len(), "duplicate records drained");
    }

    #[test]
    fn span_guards_nest_and_durations_are_nonnegative() {
        let t = Tracer::default();
        let clock = AtomicU64::new(100);
        let now = || clock.fetch_add(10, Ordering::Relaxed);
        let tr = track(0, 7);
        {
            let _outer = t.span("outer", tr, now);
            let _inner = t.span("inner", tr, now);
            // inner drops first (LIFO), then outer.
        }
        let recs = t.take_records();
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        assert!(outer.t_ns < inner.t_ns, "parent must open before child");
        assert!(
            inner.t_ns + inner.dur_ns <= outer.t_ns + outer.dur_ns,
            "child must close within parent"
        );
    }

    #[test]
    fn op_sampling_keeps_one_in_two_pow_shift() {
        let t = Tracer::new(TraceConfig {
            op_sample_shift: 3,
            ..TraceConfig::default()
        });
        let kept = (0..800).filter(|_| t.sample_op()).count();
        assert_eq!(kept, 100);
    }

    #[test]
    fn export_is_valid_chrome_trace_json() {
        let t = Tracer::default();
        let tr = track(2, 9);
        let flow = t.next_flow_id();
        t.span_event("job.flush", tr, 1000, 500, "bytes", 4096);
        t.flow_start("masm.flush", track(2, 3), 900, flow);
        t.flow_finish("masm.flush", tr, 1001, flow);
        t.instant("job.retry", tr, 1200, "attempts", 2);
        t.counter("trace.violations", tr, 1300, 1);
        let json = t.export_chrome_trace();
        let doc = parse(&json).expect("export must parse");
        let events = match doc.get("traceEvents") {
            Some(crate::json::JsonValue::Arr(a)) => a,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        // 1 process + 2 thread metadata + 5 records.
        assert_eq!(events.len(), 8);
        let phase = |e: &crate::json::JsonValue| match e.get("ph") {
            Some(crate::json::JsonValue::Str(s)) => s.clone(),
            _ => panic!("event without ph"),
        };
        let spans: Vec<_> = events.iter().filter(|e| phase(e) == "X").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].get_u64("pid"), Some(2));
        assert_eq!(spans[0].get_u64("tid"), Some(9));
        assert_eq!(spans[0].get_f64("ts"), Some(1.0));
        assert_eq!(
            spans[0].get("args").and_then(|a| a.get_u64("bytes")),
            Some(4096)
        );
        let s = events.iter().find(|e| phase(e) == "s").expect("flow start");
        let f = events
            .iter()
            .find(|e| phase(e) == "f")
            .expect("flow finish");
        assert_eq!(s.get_u64("id"), f.get_u64("id"), "flow ids must resolve");
        assert!(events.iter().any(|e| phase(e) == "i"));
        assert!(events.iter().any(|e| phase(e) == "C"));
        assert!(events.iter().any(|e| phase(e) == "M"));
    }

    #[test]
    fn watchdog_emits_on_violation_and_respects_interval() {
        let t = Arc::new(Tracer::default());
        let mut dog =
            InvariantWatchdog::new(Arc::clone(&t), track(0, 1), 1000).with_max_epoch_lag(4);
        let mut stats = EngineStats {
            at_ns: 10,
            ..EngineStats::default()
        };
        // A healthy snapshot: counter sample only, no violation.
        assert!(dog.poll(&stats).is_empty());
        assert_eq!(t.violations_counter().get(), 0);
        // Break the cache-accounting invariant.
        stats.at_ns = 2000;
        stats.cache.data_bytes = 1;
        let v = dog.poll(&stats);
        assert_eq!(v.len(), 1, "cache accounting violation expected: {v:?}");
        assert_eq!(t.violations_counter().get(), 1);
        // Within the interval: no re-poll even though still violated.
        stats.at_ns = 2500;
        assert!(dog.poll(&stats).is_empty());
        assert_eq!(t.violations_counter().get(), 1);
        // Past the interval + an epoch-lag alarm.
        stats.at_ns = 4000;
        stats.workers.epoch_lag = 9;
        assert_eq!(dog.poll(&stats).len(), 1);
        let recs = t.take_records();
        assert!(recs.iter().any(|r| r.name == "invariant.violation"));
        assert!(recs
            .iter()
            .any(|r| r.name == "epoch.lag" && r.arg == 9 && r.kind == RecordKind::Instant));
        assert!(recs
            .iter()
            .any(|r| r.name == "trace.violations" && r.kind == RecordKind::Counter));
    }
}
