//! [`EngineStats`] — the unified engine snapshot — and [`StatsDelta`],
//! the monotonic difference between two snapshots.
//!
//! One `MasmEngine::stats()` call returns everything the paper's
//! quantitative invariants need, composed from the per-subsystem
//! reports that previously lived in four disconnected structs: cache
//! ([`CacheStatsSnapshot`]), merge ([`MergeReport`]), compression
//! ([`CompressionReport`]), device I/O + wear ([`IoStatsSnapshot`],
//! [`WearStats`]), buffer occupancy, and per-operation latency
//! histograms. `StatsDelta = now − prev` makes rates first-class:
//! benches poll snapshots and report updates/s or bytes/s without
//! re-plumbing counters by hand.

use masm_storage::{
    CacheStatsSnapshot, CompressionReport, IoStatsSnapshot, MergeReport, WearStats,
};

use crate::json::{JsonObj, JsonValue};
use crate::metrics::HistogramSnapshot;

/// Occupancy of the in-memory update buffer at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Buffered update records (unit: ops).
    pub updates: u64,
    /// Encoded bytes of the buffered updates (unit: bytes).
    pub bytes: u64,
    /// Current buffer capacity, including stolen query pages
    /// (unit: bytes).
    pub capacity_bytes: u64,
}

impl BufferStats {
    /// Combine per-shard buffer occupancies: every field adds — each
    /// shard owns an independent buffer, so the sum is the machine-wide
    /// buffered footprint.
    #[must_use]
    pub fn merge(&self, other: &BufferStats) -> BufferStats {
        BufferStats {
            updates: self.updates + other.updates,
            bytes: self.bytes + other.bytes,
            capacity_bytes: self.capacity_bytes + other.capacity_bytes,
        }
    }
}

/// The materialized-run set at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSetStats {
    /// Live materialized runs (unit: ops).
    pub count: u64,
    /// SSD bytes occupied by live runs (unit: bytes).
    pub cached_bytes: u64,
    /// Configured SSD update-cache capacity (unit: bytes).
    pub ssd_capacity_bytes: u64,
}

impl RunSetStats {
    /// Combine per-shard run sets: counts, occupancy, and capacity all
    /// add (shards hold disjoint runs on disjoint flash slices).
    #[must_use]
    pub fn merge(&self, other: &RunSetStats) -> RunSetStats {
        RunSetStats {
            count: self.count + other.count,
            cached_bytes: self.cached_bytes + other.cached_bytes,
            ssd_capacity_bytes: self.ssd_capacity_bytes + other.ssd_capacity_bytes,
        }
    }
}

/// Background worker-pool occupancy and lifetime counters at snapshot
/// time. All zero for an inline engine (`background_workers = 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Configured background worker threads (unit: ops).
    pub threads: u64,
    /// Jobs waiting in the backlog queue right now (gauge; unit: ops).
    pub queue_depth: u64,
    /// Bytes of sealed update batches awaiting a background flush
    /// (gauge; unit: bytes). This is what the ingest backpressure gate
    /// bounds.
    pub backlog_bytes: u64,
    /// Jobs completed since construction (unit: ops).
    pub jobs_completed: u64,
    /// Jobs retried after a transient failure (unit: ops).
    pub jobs_retried: u64,
    /// Jobs abandoned after exhausting retries (unit: ops).
    pub jobs_failed: u64,
    /// Background flushes materialized (unit: ops).
    pub flushes: u64,
    /// Background merges completed (unit: ops).
    pub merges: u64,
    /// Background migrations completed (unit: ops).
    pub migrations: u64,
    /// Timestamps issued since the oldest still-active query pinned its
    /// snapshot (gauge): how far the engine's epoch has advanced past
    /// its oldest reader. 0 when no query is active.
    pub epoch_lag: u64,
}

/// Latency histograms for every public engine operation, recorded at
/// the hot paths by [`crate::Timer`] guards. All samples are
/// **virtual-ns**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpLatencies {
    /// One `apply_update` call (includes any flush it triggered).
    pub ingest: HistogramSnapshot,
    /// One point lookup (`get`).
    pub get: HistogramSnapshot,
    /// One record yielded by a merged range scan (`MergeScan::next`).
    pub scan_next: HistogramSnapshot,
    /// One buffer flush that materialized a run.
    pub flush: HistogramSnapshot,
    /// One full or partial migration.
    pub migrate: HistogramSnapshot,
    /// One block obtained by a run scan (cache hit ≈ 0, miss = device
    /// wait), recorded inside `masm-blockrun`.
    pub block_fetch: HistogramSnapshot,
}

impl OpLatencies {
    /// Visit each histogram with its stable family name.
    pub fn for_each(&self, mut f: impl FnMut(&'static str, &HistogramSnapshot)) {
        f("ingest", &self.ingest);
        f("get", &self.get);
        f("scan_next", &self.scan_next);
        f("flush", &self.flush);
        f("migrate", &self.migrate);
        f("block_fetch", &self.block_fetch);
    }

    /// Combine per-shard latency families bucket-wise (see
    /// [`HistogramSnapshot::merge`]): the global histogram of the
    /// union of both shards' samples.
    #[must_use]
    pub fn merge(&self, other: &OpLatencies) -> OpLatencies {
        OpLatencies {
            ingest: self.ingest.merge(&other.ingest),
            get: self.get.merge(&other.get),
            scan_next: self.scan_next.merge(&other.scan_next),
            flush: self.flush.merge(&other.flush),
            migrate: self.migrate.merge(&other.migrate),
            block_fetch: self.block_fetch.merge(&other.block_fetch),
        }
    }
}

/// The unified engine snapshot. All counter fields are cumulative since
/// engine construction; gauges (buffer, runs, cache byte levels) are
/// levels at `at_ns`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Virtual time of the snapshot (unit: virtual-ns).
    pub at_ns: u64,
    /// Updates ingested since construction (unit: ops).
    pub ingested_updates: u64,
    /// Logical bytes of ingested updates (unit: bytes).
    pub ingested_bytes: u64,
    /// In-memory update-buffer occupancy.
    pub buffer: BufferStats,
    /// Materialized-run set occupancy.
    pub runs: RunSetStats,
    /// Block-cache counters and byte gauges.
    pub cache: CacheStatsSnapshot,
    /// Cumulative planned-merge totals.
    pub merge: MergeReport,
    /// Cumulative codec accounting.
    pub compression: CompressionReport,
    /// Update-cache SSD device I/O.
    pub ssd: IoStatsSnapshot,
    /// SSD erase-block wear summary (no raw histogram cloning).
    pub ssd_wear: WearStats,
    /// WAL device I/O.
    pub wal: IoStatsSnapshot,
    /// Background worker-pool occupancy and counters.
    pub workers: WorkerStats,
    /// Per-operation latency histograms (virtual-ns).
    pub ops: OpLatencies,
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let mut o = JsonObj::new();
    o.u64("count", h.count)
        .u64("sum", h.sum)
        .u64("max", h.max)
        .u64("p50", h.p50())
        .u64("p95", h.p95())
        .u64("p99", h.p99())
        .f64("mean", h.mean());
    o.finish()
}

fn io_json(s: &IoStatsSnapshot) -> String {
    let mut o = JsonObj::new();
    o.u64("read_ops", s.read_ops)
        .u64("write_ops", s.write_ops)
        .u64("bytes_read", s.bytes_read)
        .u64("bytes_written", s.bytes_written)
        .u64("sequential_ops", s.sequential_ops)
        .u64("random_ops", s.random_ops)
        .u64("random_writes", s.random_writes)
        .u64("busy_ns", s.busy_ns)
        .u64("max_queue_depth", s.max_queue_depth)
        .u64("queue_depth_sum", s.queue_depth_sum)
        .u64("max_block_wear", s.max_block_wear)
        .u64("touched_blocks", s.touched_blocks);
    o.finish()
}

fn io_from_json(v: &JsonValue) -> Option<IoStatsSnapshot> {
    Some(IoStatsSnapshot {
        read_ops: v.get_u64("read_ops")?,
        write_ops: v.get_u64("write_ops")?,
        bytes_read: v.get_u64("bytes_read")?,
        bytes_written: v.get_u64("bytes_written")?,
        sequential_ops: v.get_u64("sequential_ops")?,
        random_ops: v.get_u64("random_ops")?,
        random_writes: v.get_u64("random_writes")?,
        busy_ns: v.get_u64("busy_ns")?,
        max_queue_depth: v.get_u64("max_queue_depth")?,
        queue_depth_sum: v.get_u64("queue_depth_sum")?,
        max_block_wear: v.get_u64("max_block_wear")?,
        touched_blocks: v.get_u64("touched_blocks")?,
    })
}

fn cache_json(c: &CacheStatsSnapshot) -> String {
    let mut o = JsonObj::new();
    o.u64("hits", c.hits)
        .u64("misses", c.misses)
        .u64("insertions", c.insertions)
        .u64("evictions", c.evictions)
        .u64("promotions", c.promotions)
        .u64("demotions", c.demotions)
        .u64("rejected", c.rejected)
        .u64("tier2_hits", c.tier2_hits)
        .u64("tier2_insertions", c.tier2_insertions)
        .u64("tier2_evictions", c.tier2_evictions)
        .u64("data_bytes", c.data_bytes)
        .u64("probation_bytes", c.probation_bytes)
        .u64("protected_bytes", c.protected_bytes)
        .u64("meta_bytes", c.meta_bytes)
        .u64("disk_bytes", c.disk_bytes)
        .u64("tier2_bytes", c.tier2_bytes)
        .f64("hit_rate", c.hit_rate());
    o.finish()
}

fn cache_from_json(v: &JsonValue) -> Option<CacheStatsSnapshot> {
    Some(CacheStatsSnapshot {
        hits: v.get_u64("hits")?,
        misses: v.get_u64("misses")?,
        insertions: v.get_u64("insertions")?,
        evictions: v.get_u64("evictions")?,
        promotions: v.get_u64("promotions")?,
        demotions: v.get_u64("demotions")?,
        rejected: v.get_u64("rejected")?,
        tier2_hits: v.get_u64("tier2_hits")?,
        tier2_insertions: v.get_u64("tier2_insertions")?,
        tier2_evictions: v.get_u64("tier2_evictions")?,
        data_bytes: v.get_u64("data_bytes")?,
        probation_bytes: v.get_u64("probation_bytes")?,
        protected_bytes: v.get_u64("protected_bytes")?,
        meta_bytes: v.get_u64("meta_bytes")?,
        disk_bytes: v.get_u64("disk_bytes")?,
        tier2_bytes: v.get_u64("tier2_bytes")?,
    })
}

fn merge_json(m: &MergeReport) -> String {
    let mut o = JsonObj::new();
    o.u64("inputs", m.inputs as u64)
        .u64("fan_in", m.fan_in as u64)
        .u64("blocks_moved", m.blocks_moved)
        .u64("blocks_merged", m.blocks_merged)
        .u64("bytes_moved", m.bytes_moved)
        .u64("bytes_decoded", m.bytes_decoded)
        .u64("entries_out", m.entries_out)
        .u64("peak_merge_entries", m.peak_merge_entries);
    o.finish()
}

fn merge_from_json(v: &JsonValue) -> Option<MergeReport> {
    Some(MergeReport {
        inputs: v.get_u64("inputs")? as usize,
        fan_in: v.get_u64("fan_in")? as usize,
        blocks_moved: v.get_u64("blocks_moved")?,
        blocks_merged: v.get_u64("blocks_merged")?,
        bytes_moved: v.get_u64("bytes_moved")?,
        bytes_decoded: v.get_u64("bytes_decoded")?,
        entries_out: v.get_u64("entries_out")?,
        peak_merge_entries: v.get_u64("peak_merge_entries")?,
    })
}

fn compression_json(c: &CompressionReport) -> String {
    let mut o = JsonObj::new();
    o.u64("runs", c.runs)
        .u64("blocks", c.blocks)
        .u64("raw_bytes", c.raw_bytes)
        .u64("stored_bytes", c.stored_bytes)
        .u64("blocks_identity", c.blocks_identity)
        .u64("blocks_delta", c.blocks_delta)
        .u64("blocks_lz", c.blocks_lz)
        .u64("codec_trials", c.codec_trials)
        .u64("codec_trials_saved", c.codec_trials_saved)
        .u64("lz_probes_skipped", c.lz_probes_skipped)
        .f64("ratio", c.ratio());
    o.finish()
}

fn compression_from_json(v: &JsonValue) -> Option<CompressionReport> {
    Some(CompressionReport {
        runs: v.get_u64("runs")?,
        blocks: v.get_u64("blocks")?,
        raw_bytes: v.get_u64("raw_bytes")?,
        stored_bytes: v.get_u64("stored_bytes")?,
        blocks_identity: v.get_u64("blocks_identity")?,
        blocks_delta: v.get_u64("blocks_delta")?,
        blocks_lz: v.get_u64("blocks_lz")?,
        codec_trials: v.get_u64("codec_trials")?,
        codec_trials_saved: v.get_u64("codec_trials_saved")?,
        lz_probes_skipped: v.get_u64("lz_probes_skipped")?,
    })
}

fn worker_json(w: &WorkerStats) -> String {
    let mut o = JsonObj::new();
    o.u64("threads", w.threads)
        .u64("queue_depth", w.queue_depth)
        .u64("backlog_bytes", w.backlog_bytes)
        .u64("jobs_completed", w.jobs_completed)
        .u64("jobs_retried", w.jobs_retried)
        .u64("jobs_failed", w.jobs_failed)
        .u64("flushes", w.flushes)
        .u64("merges", w.merges)
        .u64("migrations", w.migrations)
        .u64("epoch_lag", w.epoch_lag);
    o.finish()
}

fn worker_from_json(v: &JsonValue) -> Option<WorkerStats> {
    Some(WorkerStats {
        threads: v.get_u64("threads")?,
        queue_depth: v.get_u64("queue_depth")?,
        backlog_bytes: v.get_u64("backlog_bytes")?,
        jobs_completed: v.get_u64("jobs_completed")?,
        jobs_retried: v.get_u64("jobs_retried")?,
        jobs_failed: v.get_u64("jobs_failed")?,
        flushes: v.get_u64("flushes")?,
        merges: v.get_u64("merges")?,
        migrations: v.get_u64("migrations")?,
        epoch_lag: v.get_u64("epoch_lag")?,
    })
}

impl WorkerStats {
    /// Difference between two snapshots (self − earlier). The gauges
    /// (`threads`, `queue_depth`, `backlog_bytes`, `epoch_lag`) are
    /// carried from `self`; the counters subtract.
    #[must_use]
    pub fn delta(&self, earlier: &WorkerStats) -> WorkerStats {
        WorkerStats {
            threads: self.threads,
            queue_depth: self.queue_depth,
            backlog_bytes: self.backlog_bytes,
            jobs_completed: self.jobs_completed - earlier.jobs_completed,
            jobs_retried: self.jobs_retried - earlier.jobs_retried,
            jobs_failed: self.jobs_failed - earlier.jobs_failed,
            flushes: self.flushes - earlier.flushes,
            merges: self.merges - earlier.merges,
            migrations: self.migrations - earlier.migrations,
            epoch_lag: self.epoch_lag,
        }
    }

    /// Combine per-shard worker views. The counters add (each shard's
    /// jobs are counted by its own shard-tagged counters); the gauges
    /// (`threads`, `queue_depth`, `backlog_bytes`) take the max — the
    /// shards of one engine *share* one pool, so each reports the same
    /// pool-wide level and summing would multiply it by the shard
    /// count. `epoch_lag` takes the worst shard's lag.
    #[must_use]
    pub fn merge(&self, other: &WorkerStats) -> WorkerStats {
        WorkerStats {
            threads: self.threads.max(other.threads),
            queue_depth: self.queue_depth.max(other.queue_depth),
            backlog_bytes: self.backlog_bytes.max(other.backlog_bytes),
            jobs_completed: self.jobs_completed + other.jobs_completed,
            jobs_retried: self.jobs_retried + other.jobs_retried,
            jobs_failed: self.jobs_failed + other.jobs_failed,
            flushes: self.flushes + other.flushes,
            merges: self.merges + other.merges,
            migrations: self.migrations + other.migrations,
            epoch_lag: self.epoch_lag.max(other.epoch_lag),
        }
    }
}

fn wear_json(w: &WearStats) -> String {
    let mut o = JsonObj::new();
    o.u64("max_writes_per_block", w.max_writes_per_block)
        .f64("mean_writes_per_block", w.mean_writes_per_block)
        .u64("blocks_touched", w.blocks_touched)
        .f64("cv", w.cv);
    o.finish()
}

impl EngineStats {
    /// One compact JSON object with every family nested under a stable
    /// key: `ingested`, `buffer`, `runs`, `cache`, `merge`,
    /// `compression`, `ssd`, `ssd_wear`, `wal`, and `ops` (six latency
    /// histograms). `random_writes` is additionally lifted to the top
    /// level so the paper's zero-random-write invariant is greppable in
    /// every NDJSON row.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut ops = JsonObj::new();
        self.ops.for_each(|name, h| {
            ops.raw(name, &hist_json(h));
        });
        let mut ingested = JsonObj::new();
        ingested
            .u64("updates", self.ingested_updates)
            .u64("bytes", self.ingested_bytes);
        let mut buffer = JsonObj::new();
        buffer
            .u64("updates", self.buffer.updates)
            .u64("bytes", self.buffer.bytes)
            .u64("capacity_bytes", self.buffer.capacity_bytes);
        let mut runs = JsonObj::new();
        runs.u64("count", self.runs.count)
            .u64("cached_bytes", self.runs.cached_bytes)
            .u64("ssd_capacity_bytes", self.runs.ssd_capacity_bytes);
        let mut o = JsonObj::new();
        o.u64("at_ns", self.at_ns)
            .u64("random_writes", self.ssd.random_writes)
            .raw("ingested", &ingested.finish())
            .raw("buffer", &buffer.finish())
            .raw("runs", &runs.finish())
            .raw("cache", &cache_json(&self.cache))
            .raw("merge", &merge_json(&self.merge))
            .raw("compression", &compression_json(&self.compression))
            .raw("ssd", &io_json(&self.ssd))
            .raw("ssd_wear", &wear_json(&self.ssd_wear))
            .raw("wal", &io_json(&self.wal))
            .raw("workers", &worker_json(&self.workers))
            .raw("ops", &ops.finish());
        o.finish()
    }

    /// Monotonic difference `self − earlier`. Counter families
    /// subtract; byte gauges (buffer, runs, cache levels) are *not*
    /// carried into the delta — read them off the newer snapshot.
    ///
    /// Panics (in debug builds) if `earlier` is actually newer: every
    /// cumulative counter must be monotone non-decreasing between two
    /// snapshots of the same engine.
    #[must_use]
    pub fn delta(&self, earlier: &EngineStats) -> StatsDelta {
        StatsDelta {
            elapsed_ns: self.at_ns - earlier.at_ns,
            ingested_updates: self.ingested_updates - earlier.ingested_updates,
            ingested_bytes: self.ingested_bytes - earlier.ingested_bytes,
            cache: self.cache.delta(&earlier.cache),
            merge: self.merge.delta(&earlier.merge),
            compression: self.compression.delta(&earlier.compression),
            ssd: self.ssd.delta(&earlier.ssd),
            wal: self.wal.delta(&earlier.wal),
            workers: self.workers.delta(&earlier.workers),
            ops: OpCountDeltas {
                ingest: OpCountDelta::between(&earlier.ops.ingest, &self.ops.ingest),
                get: OpCountDelta::between(&earlier.ops.get, &self.ops.get),
                scan_next: OpCountDelta::between(&earlier.ops.scan_next, &self.ops.scan_next),
                flush: OpCountDelta::between(&earlier.ops.flush, &self.ops.flush),
                migrate: OpCountDelta::between(&earlier.ops.migrate, &self.ops.migrate),
                block_fetch: OpCountDelta::between(&earlier.ops.block_fetch, &self.ops.block_fetch),
            },
        }
    }

    /// Combine two shards' snapshots into the global engine view: the
    /// snapshot a single engine covering both shards' work would have
    /// produced. Counters and disjoint-resource gauges (buffer, runs,
    /// cache bytes, flash capacity) add; high-water marks (`fan_in`,
    /// queue depths, wear maxima) take the larger side; the wear
    /// summary recombines exactly via moments
    /// ([`WearStats::merge`](masm_storage::WearStats::merge)); worker
    /// *pool* gauges take the max because shards share one pool.
    ///
    /// `merge` is associative and commutative, and commutes with
    /// [`EngineStats::delta`] when all snapshots are taken on one
    /// shared clock (`at_ns` equal across shards at each sampling
    /// instant) — the property the aggregation proptest pins, so
    /// summing per-shard deltas equals the delta of summed snapshots.
    #[must_use]
    pub fn merge(&self, other: &EngineStats) -> EngineStats {
        let mut merge_totals = self.merge;
        merge_totals.absorb(&other.merge);
        let mut compression = self.compression;
        compression.absorb(&other.compression);
        EngineStats {
            at_ns: self.at_ns.max(other.at_ns),
            ingested_updates: self.ingested_updates + other.ingested_updates,
            ingested_bytes: self.ingested_bytes + other.ingested_bytes,
            buffer: self.buffer.merge(&other.buffer),
            runs: self.runs.merge(&other.runs),
            cache: self.cache.merge(&other.cache),
            merge: merge_totals,
            compression,
            ssd: self.ssd.merge(&other.ssd),
            ssd_wear: self.ssd_wear.merge(&other.ssd_wear),
            wal: self.wal.merge(&other.wal),
            workers: self.workers.merge(&other.workers),
            ops: self.ops.merge(&other.ops),
        }
    }

    /// Internal-consistency checks shared by tests and benches. Returns
    /// human-readable violations; empty means the snapshot is coherent.
    #[must_use]
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.cache.data_bytes != self.cache.probation_bytes + self.cache.protected_bytes {
            v.push(format!(
                "cache.data_bytes {} != probation {} + protected {}",
                self.cache.data_bytes, self.cache.probation_bytes, self.cache.protected_bytes
            ));
        }
        self.ops.for_each(|name, h| {
            if h.buckets.iter().sum::<u64>() != h.count {
                v.push(format!("ops.{name}: bucket sum != count {}", h.count));
            }
            if h.count > 0 && h.p50() > h.max {
                v.push(format!("ops.{name}: p50 {} > max {}", h.p50(), h.max));
            }
        });
        if self.buffer.bytes > 0 && self.buffer.updates == 0 {
            v.push("buffer.bytes > 0 with zero buffered updates".into());
        }
        v
    }
}

/// Count/sum delta of one latency family between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCountDelta {
    /// Operations in the interval (unit: ops).
    pub count: u64,
    /// Total latency in the interval (unit: virtual-ns).
    pub sum_ns: u64,
}

impl OpCountDelta {
    fn between(earlier: &HistogramSnapshot, now: &HistogramSnapshot) -> Self {
        OpCountDelta {
            count: now.count - earlier.count,
            sum_ns: now.sum - earlier.sum,
        }
    }

    fn to_json(self) -> String {
        let mut o = JsonObj::new();
        o.u64("count", self.count).u64("sum_ns", self.sum_ns);
        o.finish()
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(OpCountDelta {
            count: v.get_u64("count")?,
            sum_ns: v.get_u64("sum_ns")?,
        })
    }

    /// Combine per-shard interval deltas (counts and latency sums add).
    #[must_use]
    pub fn merge(&self, other: &OpCountDelta) -> OpCountDelta {
        OpCountDelta {
            count: self.count + other.count,
            sum_ns: self.sum_ns.wrapping_add(other.sum_ns),
        }
    }
}

/// Per-operation count/sum deltas (fields mirror [`OpLatencies`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCountDeltas {
    /// `apply_update` calls.
    pub ingest: OpCountDelta,
    /// Point lookups.
    pub get: OpCountDelta,
    /// Scan records yielded.
    pub scan_next: OpCountDelta,
    /// Buffer flushes.
    pub flush: OpCountDelta,
    /// Migrations.
    pub migrate: OpCountDelta,
    /// Run-scan block fetches.
    pub block_fetch: OpCountDelta,
}

impl OpCountDeltas {
    /// Combine per-shard interval deltas family-wise.
    #[must_use]
    pub fn merge(&self, other: &OpCountDeltas) -> OpCountDeltas {
        OpCountDeltas {
            ingest: self.ingest.merge(&other.ingest),
            get: self.get.merge(&other.get),
            scan_next: self.scan_next.merge(&other.scan_next),
            flush: self.flush.merge(&other.flush),
            migrate: self.migrate.merge(&other.migrate),
            block_fetch: self.block_fetch.merge(&other.block_fetch),
        }
    }
}

/// The monotonic difference between two [`EngineStats`] snapshots of
/// one engine: every field is "what happened in the interval", so rates
/// (e.g. [`StatsDelta::updates_per_sec`]) are first-class. Serializes
/// to one JSON object and parses back exactly
/// ([`StatsDelta::from_json`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Interval length (unit: virtual-ns).
    pub elapsed_ns: u64,
    /// Updates ingested in the interval (unit: ops).
    pub ingested_updates: u64,
    /// Logical update bytes ingested (unit: bytes).
    pub ingested_bytes: u64,
    /// Cache counter deltas (byte gauges carried from the newer
    /// snapshot, as documented on [`CacheStatsSnapshot::delta`]).
    pub cache: CacheStatsSnapshot,
    /// Merge-counter deltas (`fan_in` carried, it is a high-water mark).
    pub merge: MergeReport,
    /// Compression-counter deltas.
    pub compression: CompressionReport,
    /// SSD I/O deltas (wear fields carried, they are levels).
    pub ssd: IoStatsSnapshot,
    /// WAL I/O deltas.
    pub wal: IoStatsSnapshot,
    /// Worker-pool counter deltas (gauges carried, as documented on
    /// [`WorkerStats::delta`]).
    pub workers: WorkerStats,
    /// Per-operation count/latency-sum deltas.
    pub ops: OpCountDeltas,
}

impl StatsDelta {
    /// Update ingest rate over the interval (unit: ops per *virtual*
    /// second; 0 when the interval is empty).
    #[must_use]
    pub fn updates_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ingested_updates as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Combine per-shard interval deltas into the global interval: the
    /// same rules as [`EngineStats::merge`] applied to "what happened"
    /// fields. `elapsed_ns` takes the max — per-shard snapshots of one
    /// engine are cut on one shared clock, so the intervals coincide
    /// and max (rather than sum) keeps rates honest.
    #[must_use]
    pub fn merge(&self, other: &StatsDelta) -> StatsDelta {
        let mut merge_totals = self.merge;
        merge_totals.absorb(&other.merge);
        let mut compression = self.compression;
        compression.absorb(&other.compression);
        StatsDelta {
            elapsed_ns: self.elapsed_ns.max(other.elapsed_ns),
            ingested_updates: self.ingested_updates + other.ingested_updates,
            ingested_bytes: self.ingested_bytes + other.ingested_bytes,
            cache: self.cache.merge(&other.cache),
            merge: merge_totals,
            compression,
            ssd: self.ssd.merge(&other.ssd),
            wal: self.wal.merge(&other.wal),
            workers: self.workers.merge(&other.workers),
            ops: self.ops.merge(&other.ops),
        }
    }

    /// SSD write bandwidth over the interval (unit: bytes per virtual
    /// second).
    #[must_use]
    pub fn ssd_write_bytes_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ssd.bytes_written as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// One compact JSON object; [`StatsDelta::from_json`] inverts it.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut ops = JsonObj::new();
        ops.raw("ingest", &self.ops.ingest.to_json())
            .raw("get", &self.ops.get.to_json())
            .raw("scan_next", &self.ops.scan_next.to_json())
            .raw("flush", &self.ops.flush.to_json())
            .raw("migrate", &self.ops.migrate.to_json())
            .raw("block_fetch", &self.ops.block_fetch.to_json());
        let mut o = JsonObj::new();
        o.u64("elapsed_ns", self.elapsed_ns)
            .u64("ingested_updates", self.ingested_updates)
            .u64("ingested_bytes", self.ingested_bytes)
            .f64("updates_per_sec", self.updates_per_sec())
            .raw("cache", &cache_json(&self.cache))
            .raw("merge", &merge_json(&self.merge))
            .raw("compression", &compression_json(&self.compression))
            .raw("ssd", &io_json(&self.ssd))
            .raw("wal", &io_json(&self.wal))
            .raw("workers", &worker_json(&self.workers))
            .raw("ops", &ops.finish());
        o.finish()
    }

    /// Parse a value produced by [`StatsDelta::to_json`]. Returns
    /// `None` on any missing or mistyped field.
    #[must_use]
    pub fn from_json(v: &JsonValue) -> Option<StatsDelta> {
        let ops = v.get("ops")?;
        Some(StatsDelta {
            elapsed_ns: v.get_u64("elapsed_ns")?,
            ingested_updates: v.get_u64("ingested_updates")?,
            ingested_bytes: v.get_u64("ingested_bytes")?,
            cache: cache_from_json(v.get("cache")?)?,
            merge: merge_from_json(v.get("merge")?)?,
            compression: compression_from_json(v.get("compression")?)?,
            ssd: io_from_json(v.get("ssd")?)?,
            wal: io_from_json(v.get("wal")?)?,
            workers: worker_from_json(v.get("workers")?)?,
            ops: OpCountDeltas {
                ingest: OpCountDelta::from_json(ops.get("ingest")?)?,
                get: OpCountDelta::from_json(ops.get("get")?)?,
                scan_next: OpCountDelta::from_json(ops.get("scan_next")?)?,
                flush: OpCountDelta::from_json(ops.get("flush")?)?,
                migrate: OpCountDelta::from_json(ops.get("migrate")?)?,
                block_fetch: OpCountDelta::from_json(ops.get("block_fetch")?)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::Histogram;

    fn sample_stats(scale: u64) -> EngineStats {
        let h = Histogram::new();
        for i in 0..scale {
            h.record(i * 100);
        }
        let hist = h.snapshot();
        EngineStats {
            at_ns: 1_000_000 * scale,
            ingested_updates: 10 * scale,
            ingested_bytes: 1000 * scale,
            buffer: BufferStats {
                updates: 3,
                bytes: 300,
                capacity_bytes: 4096,
            },
            runs: RunSetStats {
                count: 2,
                cached_bytes: 8192,
                ssd_capacity_bytes: 1 << 20,
            },
            cache: CacheStatsSnapshot {
                hits: 5 * scale,
                misses: scale,
                data_bytes: 128,
                probation_bytes: 100,
                protected_bytes: 28,
                ..CacheStatsSnapshot::default()
            },
            merge: MergeReport {
                inputs: 2,
                fan_in: 2,
                blocks_moved: scale,
                bytes_moved: 100 * scale,
                ..MergeReport::default()
            },
            compression: CompressionReport {
                runs: scale,
                blocks: 4 * scale,
                raw_bytes: 4000 * scale,
                stored_bytes: 1500 * scale,
                ..CompressionReport::default()
            },
            ssd: IoStatsSnapshot {
                write_ops: 7 * scale,
                bytes_written: 7000 * scale,
                sequential_ops: 7 * scale,
                busy_ns: 10_000 * scale,
                ..IoStatsSnapshot::default()
            },
            ssd_wear: WearStats {
                max_writes_per_block: 3,
                mean_writes_per_block: 1.5,
                blocks_touched: 4,
                cv: 0.3,
            },
            wal: IoStatsSnapshot {
                write_ops: 10 * scale,
                bytes_written: 400 * scale,
                ..IoStatsSnapshot::default()
            },
            workers: WorkerStats {
                threads: 2,
                jobs_completed: 3 * scale,
                flushes: 2 * scale,
                merges: scale,
                ..WorkerStats::default()
            },
            ops: OpLatencies {
                ingest: hist,
                get: hist,
                scan_next: hist,
                flush: hist,
                migrate: hist,
                block_fetch: hist,
            },
        }
    }

    #[test]
    fn engine_stats_json_has_all_families() {
        let s = sample_stats(2);
        let v = parse(&s.to_json()).expect("EngineStats JSON parses");
        for family in [
            "ingested",
            "buffer",
            "runs",
            "cache",
            "merge",
            "compression",
            "ssd",
            "ssd_wear",
            "wal",
            "workers",
            "ops",
        ] {
            assert!(v.get(family).is_some(), "missing family {family}");
        }
        assert_eq!(
            v.get_u64("random_writes"),
            Some(0),
            "top-level invariant field"
        );
        let ops = v.get("ops").unwrap();
        for op in [
            "ingest",
            "get",
            "scan_next",
            "flush",
            "migrate",
            "block_fetch",
        ] {
            let h = ops.get(op).unwrap_or_else(|| panic!("missing op {op}"));
            assert!(h.get_u64("p99").is_some());
        }
    }

    #[test]
    fn invariants_hold_on_coherent_snapshot() {
        assert!(sample_stats(3).invariant_violations().is_empty());
        let mut broken = sample_stats(3);
        broken.cache.data_bytes += 1;
        assert_eq!(broken.invariant_violations().len(), 1);
    }

    #[test]
    fn delta_is_monotone_and_rates_work() {
        let a = sample_stats(1);
        let b = sample_stats(3);
        let d = b.delta(&a);
        assert_eq!(d.ingested_updates, 20);
        assert_eq!(d.elapsed_ns, 2_000_000);
        assert!((d.updates_per_sec() - 10_000.0).abs() < 1e-6);
        assert_eq!(d.ops.ingest.count, 2);
        assert!(d.ssd_write_bytes_per_sec() > 0.0);
    }

    #[test]
    fn stats_delta_roundtrips_through_json() {
        let d = sample_stats(4).delta(&sample_stats(1));
        let parsed = parse(&d.to_json()).expect("delta JSON parses");
        let back = StatsDelta::from_json(&parsed).expect("delta reconstructs");
        assert_eq!(d, back);
        // Default (all-zero) deltas round-trip too.
        let zero = StatsDelta::default();
        let back = StatsDelta::from_json(&parse(&zero.to_json()).unwrap()).unwrap();
        assert_eq!(zero, back);
    }
}
