//! NDJSON time-series export: one JSON object per line, sampled from
//! [`EngineStats`] snapshots on a (virtual-clock) interval.
//!
//! Sustained-load benches poll [`TimeSeriesWriter::poll`] from their
//! driver loop; the writer decides — off the snapshot's own `at_ns`, so
//! it works identically under simulated and wall-clock time — whether a
//! new sample is due, and appends a row combining the level snapshot
//! with the [`StatsDelta`](crate::StatsDelta) since the previous row.

use std::io::{self, Write};

use crate::json::JsonObj;
use crate::stats::EngineStats;

/// A source of "now" for time-series rows, in nanoseconds from an
/// arbitrary origin. One trait covers both time domains the workspace
/// runs in: the simulator's virtual [`masm_storage::SimClock`] and real
/// wall time ([`WallClock`]), so the same driver loop exports NDJSON in
/// either mode.
pub trait ClockSource: std::fmt::Debug {
    /// Nanoseconds since this source's origin.
    fn now_ns(&self) -> u64;
}

impl ClockSource for masm_storage::SimClock {
    fn now_ns(&self) -> u64 {
        self.now()
    }
}

/// Wall-clock [`ClockSource`]: nanoseconds since the instant it was
/// created (monotonic, immune to system-time jumps).
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn start() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl ClockSource for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Appends newline-delimited JSON rows to any [`Write`] sink and counts
/// them. Rows are written verbatim plus a trailing `\n`; the caller is
/// responsible for handing in one-line JSON (what [`JsonObj::finish`]
/// produces).
#[derive(Debug)]
pub struct NdjsonWriter<W: Write> {
    out: W,
    rows: u64,
}

impl<W: Write> NdjsonWriter<W> {
    /// Wrap a sink.
    pub fn new(out: W) -> Self {
        NdjsonWriter { out, rows: 0 }
    }

    /// Append one row (a complete JSON object, no trailing newline).
    pub fn row(&mut self, json: &str) -> io::Result<()> {
        debug_assert!(!json.contains('\n'), "NDJSON rows must be one line");
        self.out.write_all(json.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.rows += 1;
        Ok(())
    }

    /// Rows appended so far (unit: ops).
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and return the underlying sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// The underlying sink, borrowed.
    pub fn get_ref(&self) -> &W {
        &self.out
    }
}

/// Samples [`EngineStats`] on a fixed virtual-clock interval and
/// appends one NDJSON row per sample.
///
/// Each row is `{"t_ns", "random_writes", "updates_per_sec",
/// "stats": {…}, "delta": {…}}`:
///
/// * `t_ns` — the snapshot's virtual time (unit: virtual-ns).
/// * `random_writes` — the SSD's cumulative random-write count, lifted
///   to the top level so the paper's zero-random-write invariant is
///   checkable per row without descending into `stats.ssd`.
/// * `updates_per_sec` — ingest rate over the interval since the
///   previous row (unit: ops per virtual second; 0 on the first row).
/// * `stats` — the full [`EngineStats::to_json`] object (levels and
///   cumulative counters).
/// * `delta` — the [`StatsDelta::to_json`](crate::StatsDelta::to_json)
///   object since the previous row; omitted on the first row, which has
///   no predecessor.
#[derive(Debug)]
pub struct TimeSeriesWriter<W: Write> {
    out: NdjsonWriter<W>,
    interval_ns: u64,
    next_ns: Option<u64>,
    prev: Option<EngineStats>,
    /// Optional second time domain: when set, every row additionally
    /// carries `wall_ns` read from this source at sample time, bridging
    /// virtual-time series to real elapsed time.
    clock: Option<Box<dyn ClockSource + Send>>,
}

impl<W: Write> TimeSeriesWriter<W> {
    /// A writer that samples every `interval_ns` of virtual time
    /// (clamped to ≥ 1 so a zero interval samples on every poll).
    pub fn new(out: W, interval_ns: u64) -> Self {
        TimeSeriesWriter {
            out: NdjsonWriter::new(out),
            interval_ns: interval_ns.max(1),
            next_ns: None,
            prev: None,
            clock: None,
        }
    }

    /// Stamp every row with `wall_ns` from `clock` (a [`WallClock`] for
    /// real time, or any [`ClockSource`] — including a shared
    /// `SimClock`, useful when rows are driven off stats snapshots whose
    /// `at_ns` lags the global clock).
    #[must_use]
    pub fn with_clock(mut self, clock: impl ClockSource + Send + 'static) -> Self {
        self.clock = Some(Box::new(clock));
        self
    }

    /// Offer a snapshot; a row is appended only when the snapshot's
    /// `at_ns` has reached the next sample tick (the first poll always
    /// samples, establishing the baseline). Returns whether a row was
    /// written. Cheap when no sample is due: one comparison.
    pub fn poll(&mut self, stats: &EngineStats) -> io::Result<bool> {
        match self.next_ns {
            Some(next) if stats.at_ns < next => return Ok(false),
            _ => {}
        }
        self.sample(stats)?;
        Ok(true)
    }

    /// Append a row unconditionally (used for a final row at the end of
    /// a bench so the series always covers the full span).
    pub fn sample(&mut self, stats: &EngineStats) -> io::Result<()> {
        let mut o = JsonObj::new();
        o.u64("t_ns", stats.at_ns)
            .u64("random_writes", stats.ssd.random_writes);
        if let Some(clock) = &self.clock {
            o.u64("wall_ns", clock.now_ns());
        }
        match &self.prev {
            Some(prev) => {
                let d = stats.delta(prev);
                o.f64("updates_per_sec", d.updates_per_sec());
                o.raw("stats", &stats.to_json());
                o.raw("delta", &d.to_json());
            }
            None => {
                o.f64("updates_per_sec", 0.0);
                o.raw("stats", &stats.to_json());
            }
        }
        self.out.row(&o.finish())?;
        self.prev = Some(*stats);
        // Next tick is measured from this sample, so a driver that
        // polls rarely does not emit a burst of catch-up rows.
        self.next_ns = Some(stats.at_ns.saturating_add(self.interval_ns));
        Ok(())
    }

    /// Rows written so far (unit: ops).
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.out.rows()
    }

    /// The most recent sampled snapshot, if any.
    #[must_use]
    pub fn last_sample(&self) -> Option<&EngineStats> {
        self.prev.as_ref()
    }

    /// Flush and return the underlying sink.
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner()
    }

    /// The underlying sink, borrowed (e.g. to inspect an in-memory
    /// buffer in tests).
    pub fn get_ref(&self) -> &W {
        self.out.get_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::stats::StatsDelta;

    fn stats_at(t: u64, updates: u64) -> EngineStats {
        EngineStats {
            at_ns: t,
            ingested_updates: updates,
            ingested_bytes: updates * 100,
            ..EngineStats::default()
        }
    }

    #[test]
    fn ndjson_writer_counts_lines() {
        let mut w = NdjsonWriter::new(Vec::new());
        w.row("{\"a\":1}").unwrap();
        w.row("{\"b\":2}").unwrap();
        assert_eq!(w.rows(), 2);
        let buf = w.into_inner().unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn polls_sample_on_interval_only() {
        let mut ts = TimeSeriesWriter::new(Vec::new(), 1000);
        assert!(ts.poll(&stats_at(0, 0)).unwrap(), "first poll samples");
        assert!(!ts.poll(&stats_at(500, 5)).unwrap(), "mid-interval skipped");
        assert!(ts.poll(&stats_at(1000, 10)).unwrap());
        assert!(!ts.poll(&stats_at(1500, 15)).unwrap());
        assert!(ts.poll(&stats_at(2600, 26)).unwrap());
        assert_eq!(ts.rows(), 3);
        // Next tick counts from the last sample (2600), not the grid.
        assert!(!ts.poll(&stats_at(3000, 30)).unwrap());
        assert!(ts.poll(&stats_at(3600, 36)).unwrap());
    }

    #[test]
    fn rows_parse_and_carry_rate_and_invariant_field() {
        let mut ts = TimeSeriesWriter::new(Vec::new(), 100);
        ts.poll(&stats_at(0, 0)).unwrap();
        ts.poll(&stats_at(1_000_000_000, 2000)).unwrap();
        let buf = String::from_utf8(ts.into_inner().unwrap()).unwrap();
        let rows: Vec<_> = buf.lines().map(|l| parse(l).expect("row parses")).collect();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.get_u64("random_writes"), Some(0));
            assert!(row.get("stats").is_some());
        }
        assert!(rows[0].get("delta").is_none(), "first row has no delta");
        let second = &rows[1];
        assert!((second.get_f64("updates_per_sec").unwrap() - 2000.0).abs() < 1e-6);
        let delta = StatsDelta::from_json(second.get("delta").unwrap()).unwrap();
        assert_eq!(delta.ingested_updates, 2000);
        assert_eq!(delta.elapsed_ns, 1_000_000_000);
    }

    #[test]
    fn wall_clock_stamps_rows_when_configured() {
        // A SimClock is a ClockSource too — deterministic in tests.
        let clock = masm_storage::SimClock::default();
        clock.advance_by(42);
        let mut ts = TimeSeriesWriter::new(Vec::new(), 100).with_clock(clock.clone());
        ts.poll(&stats_at(0, 0)).unwrap();
        clock.advance_by(58);
        ts.sample(&stats_at(200, 2)).unwrap();
        let buf = String::from_utf8(ts.into_inner().unwrap()).unwrap();
        let rows: Vec<_> = buf.lines().map(|l| parse(l).expect("row parses")).collect();
        assert_eq!(rows[0].get_u64("wall_ns"), Some(42));
        assert_eq!(rows[1].get_u64("wall_ns"), Some(100));
    }

    #[test]
    fn real_wall_clock_is_monotonic() {
        let clock = WallClock::start();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
        let mut ts = TimeSeriesWriter::new(Vec::new(), 1).with_clock(clock);
        ts.poll(&stats_at(0, 0)).unwrap();
        let buf = String::from_utf8(ts.into_inner().unwrap()).unwrap();
        let row = parse(buf.lines().next().unwrap()).unwrap();
        assert!(row.get_u64("wall_ns").is_some());
    }

    #[test]
    fn forced_sample_ignores_interval() {
        let mut ts = TimeSeriesWriter::new(Vec::new(), 1_000_000);
        ts.poll(&stats_at(0, 0)).unwrap();
        ts.sample(&stats_at(10, 1)).unwrap();
        assert_eq!(ts.rows(), 2);
        assert_eq!(ts.last_sample().unwrap().ingested_updates, 1);
    }
}
