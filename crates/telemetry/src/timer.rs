//! A drop-guard that records elapsed time into a [`Histogram`].

use crate::metrics::Histogram;

/// Records `now() − start` (virtual-ns) into a histogram when dropped.
///
/// The clock is any `Fn() -> u64` — for the simulated engine that is
/// `|| session.now()`, so the guard stays generic without a dependency
/// on the storage crate. The guard is two words on the stack plus the
/// closure; nothing allocates.
///
/// ```
/// use std::cell::Cell;
/// use masm_telemetry::{Histogram, Timer};
/// let hist = Histogram::new();
/// let t = Cell::new(100u64);
/// {
///     let _guard = Timer::start(&hist, || t.get());
///     t.set(t.get() + 42); // simulated work
/// }
/// assert_eq!(hist.snapshot().sum, 42);
/// ```
pub struct Timer<'h, F: Fn() -> u64> {
    hist: &'h Histogram,
    now: F,
    start: u64,
}

impl<'h, F: Fn() -> u64> Timer<'h, F> {
    /// Start timing; the elapsed time is recorded on drop.
    #[must_use]
    pub fn start(hist: &'h Histogram, now: F) -> Self {
        let start = now();
        Timer { hist, now, start }
    }
}

impl<F: Fn() -> u64> Drop for Timer<'_, F> {
    fn drop(&mut self) {
        self.hist.record((self.now)().saturating_sub(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn records_elapsed_on_drop() {
        let hist = Histogram::new();
        let clock = AtomicU64::new(10);
        {
            let _t = Timer::start(&hist, || clock.load(Ordering::Relaxed));
            clock.store(25, Ordering::Relaxed);
        }
        let s = hist.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 15);
    }

    #[test]
    fn backwards_clock_records_zero() {
        let hist = Histogram::new();
        let clock = AtomicU64::new(100);
        {
            let _t = Timer::start(&hist, || clock.load(Ordering::Relaxed));
            clock.store(40, Ordering::Relaxed);
        }
        assert_eq!(hist.snapshot().sum, 0);
    }
}
