//! # masm-telemetry — unified observability for the MaSM engine
//!
//! The MaSM paper's headline claims are *quantitative invariants* —
//! zero random SSD writes, bounded migration cost, scan slowdown within
//! a few percent — so the reproduction's benches, tests, and (future)
//! ops dashboards all need the same numbers. This crate provides them
//! in three layers:
//!
//! 1. **Metrics core** ([`metrics`], [`registry`], [`timer`]) — lock-free
//!    atomic [`Counter`]s and [`Gauge`]s, log₂-bucketed latency
//!    [`Histogram`]s with p50/p95/p99/max readout and a **fixed bucket
//!    array** (no allocation on the record path), a [`Registry`] that
//!    namespaces metric families, and a [`Timer`] guard that records
//!    elapsed virtual nanoseconds into a histogram on drop. This layer
//!    has no dependencies and is usable by any crate in the workspace.
//! 2. **Unified snapshots** ([`stats`]) — [`EngineStats`], the one
//!    struct that composes cache, merge, compression, device I/O,
//!    SSD-wear summary, buffer occupancy, and per-operation latency
//!    histograms; [`StatsDelta`] (`now − prev`) makes rates
//!    first-class.
//! 3. **Time-series export** ([`timeseries`]) — [`TimeSeriesWriter`]
//!    polls snapshots on a virtual-clock interval and appends NDJSON
//!    rows (one JSON object per line), so sustained-load benches emit a
//!    time series instead of a single summary row; [`NdjsonWriter`] is
//!    the row-level building block for non-engine producers.
//!
//! JSON is hand-rolled ([`json`]) because the workspace is offline (no
//! serde); the tiny writer/parser pair is enough for NDJSON rows and
//! for round-trip tests.
//!
//! ## Units
//!
//! Every metric states its unit in its rustdoc. The conventions:
//! **ops** (a count of operations or events), **bytes**, and
//! **virtual-ns** (nanoseconds of simulated time on the shared
//! [`masm_storage::SimClock`]; wall-clock when a driver runs against
//! real hardware).

pub mod json;
pub mod metrics;
pub mod registry;
pub mod stats;
pub mod timer;
pub mod timeseries;
pub mod trace;

pub use json::JsonValue;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Unit, HISTOGRAM_BUCKETS};
pub use registry::{Metric, Registry};
pub use stats::{
    BufferStats, EngineStats, OpCountDelta, OpCountDeltas, OpLatencies, RunSetStats, StatsDelta,
    WorkerStats,
};
pub use timer::Timer;
pub use timeseries::{ClockSource, NdjsonWriter, TimeSeriesWriter, WallClock};
pub use trace::{
    current_tid, render_chrome_trace, InvariantWatchdog, RecordKind, SpanGuard, TraceConfig,
    TraceRecord, TraceStats, Tracer, TrackId,
};
