//! Error type shared by the storage substrate.

use std::fmt;

/// Errors surfaced by storage backends and simulated devices.
#[derive(Debug)]
pub enum StorageError {
    /// An access touched bytes beyond the end of the device.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// Underlying OS-level I/O failure (file backend only).
    Io(std::io::Error),
    /// The device was explicitly failed by fault injection.
    Faulted(&'static str),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access out of bounds: offset={offset} len={len} capacity={capacity}"
            ),
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Faulted(msg) => write!(f, "device faulted: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_bounds() {
        let e = StorageError::OutOfBounds {
            offset: 10,
            len: 20,
            capacity: 16,
        };
        let s = e.to_string();
        assert!(s.contains("offset=10"));
        assert!(s.contains("capacity=16"));
    }

    #[test]
    fn display_faulted() {
        let e = StorageError::Faulted("injected");
        assert!(e.to_string().contains("injected"));
    }

    #[test]
    fn io_error_source_preserved() {
        let e = StorageError::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
