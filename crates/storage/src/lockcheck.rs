//! Debug-mode lock-discipline checking.
//!
//! The engine's concurrency contract is that no engine mutex (state,
//! WAL, merge totals) is ever held across a device access: a device
//! read or write costs virtual (and, with a real backend, wall-clock)
//! time, and holding a shared lock for that long turns every other
//! thread's O(µs) critical section into an O(ms) stall — exactly the
//! stop-the-world behavior the background-worker engine exists to
//! remove.
//!
//! Components that want the discipline enforced wrap their mutex
//! acquisitions in a [`LockToken`]; [`crate::SimDevice`] asserts (in
//! debug builds) that no tracked token is live on the current thread
//! when an I/O is issued. The accounting is thread-local, so a worker
//! doing I/O while *another* thread sits in a critical section is fine
//! — only I/O *from within* a tracked critical section panics.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

thread_local! {
    static TRACKED_HELD: Cell<u32> = const { Cell::new(0) };
}

/// RAII token recording that the current thread is inside a tracked
/// critical section. Acquire it right after locking a tracked mutex and
/// let it drop with the guard.
#[derive(Debug)]
pub struct LockToken {
    _priv: (),
}

impl LockToken {
    /// Enter a tracked critical section on this thread.
    #[must_use]
    pub fn acquire() -> Self {
        TRACKED_HELD.with(|c| c.set(c.get() + 1));
        LockToken { _priv: () }
    }
}

impl Drop for LockToken {
    fn drop(&mut self) {
        TRACKED_HELD.with(|c| c.set(c.get() - 1));
    }
}

/// Number of tracked critical sections the current thread is inside.
#[must_use]
pub fn tracked_locks_held() -> u32 {
    TRACKED_HELD.with(Cell::get)
}

/// Debug-mode hook: panic if the current thread issues an I/O while
/// inside a tracked critical section.
pub(crate) fn assert_no_tracked_locks(op: &str) {
    debug_assert_eq!(
        tracked_locks_held(),
        0,
        "device {op} issued while a tracked engine lock is held — \
         I/O must never happen under an engine mutex"
    );
}

/// A mutex whose critical sections are tracked by the lock-discipline
/// checker: while a [`TrackedGuard`] is live, any device I/O issued from
/// the same thread panics in debug builds.
///
/// This is the engine's tool for *proving* its phased-locking contract
/// ("no engine lock held across I/O") rather than promising it in a
/// comment — every test run exercises the assertion.
#[derive(Debug, Default)]
pub struct TrackedMutex<T> {
    inner: parking_lot::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` in a tracked mutex.
    pub fn new(value: T) -> Self {
        TrackedMutex {
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Lock, entering a tracked critical section on this thread.
    pub fn lock(&self) -> TrackedGuard<'_, T> {
        let guard = self.inner.lock();
        TrackedGuard {
            token: LockToken::acquire(),
            guard,
        }
    }
}

/// RAII guard for a [`TrackedMutex`]; releases the lock and exits the
/// tracked critical section on drop.
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    // Declared before `guard`: drop order exits the tracked section
    // first, then releases the lock — the tracked window is always a
    // subset of the held window.
    token: LockToken,
    guard: parking_lot::MutexGuard<'a, T>,
}

impl<'a, T> TrackedGuard<'a, T> {
    /// The underlying `parking_lot` guard, for `Condvar::wait`.
    ///
    /// A condvar wait *blocks*, but blocking on a notification is not
    /// I/O — the tracking token stays live across the wait, which is
    /// correct: the thread re-holds the lock when the wait returns.
    pub fn inner_mut(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        let _ = &self.token;
        &mut self.guard
    }
}

impl<T> Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_nest_and_release() {
        assert_eq!(tracked_locks_held(), 0);
        let a = LockToken::acquire();
        let b = LockToken::acquire();
        assert_eq!(tracked_locks_held(), 2);
        drop(b);
        assert_eq!(tracked_locks_held(), 1);
        drop(a);
        assert_eq!(tracked_locks_held(), 0);
    }

    #[test]
    fn tracking_is_per_thread() {
        let _held = LockToken::acquire();
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(tracked_locks_held(), 0));
        });
        assert_eq!(tracked_locks_held(), 1);
    }

    #[test]
    fn tracked_mutex_counts_while_held() {
        let m = TrackedMutex::new(7u32);
        assert_eq!(tracked_locks_held(), 0);
        {
            let mut g = m.lock();
            assert_eq!(tracked_locks_held(), 1);
            *g += 1;
        }
        assert_eq!(tracked_locks_held(), 0);
        assert_eq!(*m.lock(), 8);
    }
}
