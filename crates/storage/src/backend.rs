//! Byte storage backends.
//!
//! Backends store real bytes so the whole system is testable end-to-end:
//! what MaSM writes to the simulated SSD is exactly what a later range
//! scan merges back. Two implementations are provided:
//!
//! * [`MemBackend`] — a growable in-memory byte array (default for tests
//!   and benchmarks; the timing model supplies all performance behaviour).
//! * [`FileBackend`] — a real file, for experiments larger than RAM.

use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::{StorageError, StorageResult};

/// Random-access byte storage.
///
/// Implementations must be safe for concurrent use; the simulated device
/// layer serializes *timing*, not data access.
pub trait StorageBackend: Send + Sync {
    /// Read `buf.len()` bytes starting at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()>;
    /// Write `buf` starting at `offset`, growing the backend if needed.
    fn write_at(&self, offset: u64, buf: &[u8]) -> StorageResult<()>;
    /// Current size in bytes (high-water mark of writes).
    fn len(&self) -> u64;
    /// True when nothing has been written yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Growable in-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    data: RwLock<Vec<u8>>,
}

impl MemBackend {
    /// Create an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a backend pre-sized to `capacity` zero bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        MemBackend {
            data: RwLock::new(vec![0u8; capacity as usize]),
        }
    }
}

impl StorageBackend for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let data = self.data.read();
        let end = offset + buf.len() as u64;
        if end > data.len() as u64 {
            return Err(StorageError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                capacity: data.len() as u64,
            });
        }
        buf.copy_from_slice(&data[offset as usize..end as usize]);
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> StorageResult<()> {
        let mut data = self.data.write();
        let end = (offset + buf.len() as u64) as usize;
        if end > data.len() {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }
}

/// File-backed storage using positional I/O.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: AtomicU64,
}

impl FileBackend {
    /// Create (truncating) a file backend at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend {
            file,
            len: AtomicU64::new(0),
        })
    }

    /// Open an existing file backend at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file,
            len: AtomicU64::new(len),
        })
    }
}

impl StorageBackend for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> StorageResult<()> {
        let capacity = self.len();
        if offset + buf.len() as u64 > capacity {
            return Err(StorageError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                capacity,
            });
        }
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)?;
        }
        #[cfg(not(unix))]
        {
            compile_error!("FileBackend requires a unix platform");
        }
        Ok(())
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> StorageResult<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(buf, offset)?;
        }
        let end = offset + buf.len() as u64;
        self.len.fetch_max(end, Ordering::AcqRel);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(b: &dyn StorageBackend) {
        b.write_at(0, b"hello world").unwrap();
        let mut buf = [0u8; 5];
        b.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("masm-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("file-{}.bin", std::process::id()));
        roundtrip(&FileBackend::create(&path).unwrap());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mem_grows_on_write() {
        let b = MemBackend::new();
        assert!(b.is_empty());
        b.write_at(100, &[1, 2, 3]).unwrap();
        assert_eq!(b.len(), 103);
        let mut buf = [0u8; 3];
        b.read_at(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
        // The gap is zero-filled.
        let mut gap = [9u8; 4];
        b.read_at(0, &mut gap).unwrap();
        assert_eq!(gap, [0, 0, 0, 0]);
    }

    #[test]
    fn mem_read_past_end_errors() {
        let b = MemBackend::with_capacity(8);
        let mut buf = [0u8; 16];
        let err = b.read_at(0, &mut buf).unwrap_err();
        assert!(matches!(err, StorageError::OutOfBounds { .. }));
    }

    #[test]
    fn mem_overwrite_in_place() {
        let b = MemBackend::with_capacity(16);
        b.write_at(4, b"abcd").unwrap();
        b.write_at(6, b"XY").unwrap();
        let mut buf = [0u8; 4];
        b.read_at(4, &mut buf).unwrap();
        assert_eq!(&buf, b"abXY");
        assert_eq!(b.len(), 16, "overwrite must not grow");
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let b = std::sync::Arc::new(MemBackend::with_capacity(8 * 1024));
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let b = b.clone();
                s.spawn(move || {
                    let payload = vec![i as u8; 1024];
                    b.write_at(i * 1024, &payload).unwrap();
                });
            }
        });
        for i in 0..8u64 {
            let mut buf = vec![0u8; 1024];
            b.read_at(i * 1024, &mut buf).unwrap();
            assert!(buf.iter().all(|&x| x == i as u8));
        }
    }
}
