//! Simulated devices: byte storage + timing + statistics.
//!
//! A [`SimDevice`] binds a [`StorageBackend`] to a [`DeviceProfile`] and a
//! shared [`SimClock`]. It maintains a single *busy-until* horizon: requests
//! from any number of actors serialize on the device, exactly like a real
//! disk with one head (or one SATA link).
//!
//! Sequentiality detection depends on the profile's
//! [`DeviceProfile::queue_streams`]. A single-head device (HDD) judges
//! every access against the one most recently touched byte, so two
//! interleaved streams — a table scan and a stream of random in-place
//! updates, say — destroy each other's sequential patterns and both pay
//! seek penalties: the central interference effect of the paper's §2.2.
//! A multi-stream device (SSD under NCQ) instead tracks a bounded set
//! of open stream *tails*; an access is sequential when it continues
//! its own stream, so concurrent appenders (background flush workers,
//! merge writers) keep their individual write patterns sequential.
//!
//! The device also accounts its submission queue: how many requests
//! were in flight when each new one arrived ([`IoStatsSnapshot::
//! max_queue_depth`]), which is how parallel segment execution becomes
//! observable.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{MemBackend, StorageBackend};
use crate::clock::{Ns, SimClock};
use crate::device::{AccessKind, DeviceProfile};
use crate::error::{StorageError, StorageResult};
use crate::lockcheck::assert_no_tracked_locks;
use crate::stats::{IoStats, IoStatsSnapshot};

#[derive(Debug)]
struct DevState {
    /// Virtual time until which the device is occupied.
    busy_until: Ns,
    /// End offset of the most recent access (single-head sequentiality
    /// and seek-distance accounting).
    last_end: Option<u64>,
    /// Open write-stream tails (multi-stream devices only): an access
    /// at one of these offsets continues that stream. LRU-bounded to
    /// `queue_streams`.
    write_tails: VecDeque<u64>,
    /// Open read-stream tails (multi-stream devices only), bounded to
    /// `4 × queue_streams`.
    read_tails: VecDeque<u64>,
    /// Completion times of requests still occupying the device, for
    /// queue-depth accounting.
    inflight: BinaryHeap<Reverse<Ns>>,
    stats: IoStats,
}

impl DevState {
    /// Classify an access and update the stream-tail state. Multi-stream
    /// devices match writes against write tails only (flash cares about
    /// write contiguity per stream) while reads may also continue a
    /// write tail (reading back what was just appended), without
    /// consuming it.
    fn classify(&mut self, streams: usize, kind: AccessKind, offset: u64, len: u64) -> bool {
        if streams == 0 {
            let sequential = self.last_end == Some(offset);
            self.last_end = Some(offset + len);
            return sequential;
        }
        let sequential = match kind {
            AccessKind::Write => remove_tail(&mut self.write_tails, offset),
            AccessKind::Read => {
                remove_tail(&mut self.read_tails, offset) || self.write_tails.contains(&offset)
            }
        };
        let (tails, cap) = match kind {
            AccessKind::Write => (&mut self.write_tails, streams),
            AccessKind::Read => (&mut self.read_tails, streams * 4),
        };
        tails.push_back(offset + len);
        while tails.len() > cap {
            tails.pop_front();
        }
        self.last_end = Some(offset + len);
        sequential
    }
}

fn remove_tail(tails: &mut VecDeque<u64>, offset: u64) -> bool {
    if let Some(pos) = tails.iter().position(|&t| t == offset) {
        tails.remove(pos);
        true
    } else {
        false
    }
}

/// A simulated storage device.
///
/// Cloning is cheap (shared state); all methods take `&self`.
#[derive(Clone)]
pub struct SimDevice {
    backend: Arc<dyn StorageBackend>,
    profile: DeviceProfile,
    clock: SimClock,
    state: Arc<Mutex<DevState>>,
    faulted: Arc<AtomicBool>,
    write_faulted: Arc<AtomicBool>,
    read_faulted: Arc<AtomicBool>,
    /// Pending torn-write injection: `u64::MAX` = none, otherwise the
    /// number of leading bytes the next write persists before the
    /// device "loses power" (see [`SimDevice::inject_torn_write`]).
    torn_write_keep: Arc<AtomicU64>,
}

/// Sentinel for "no torn write pending".
const NO_TORN_WRITE: u64 = u64::MAX;

impl std::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDevice")
            .field("profile", &self.profile.name)
            .field("len", &self.backend.len())
            .finish()
    }
}

impl SimDevice {
    /// Create a device over `backend` with timing `profile` on `clock`.
    pub fn new(backend: Arc<dyn StorageBackend>, profile: DeviceProfile, clock: SimClock) -> Self {
        SimDevice {
            backend,
            profile,
            clock,
            state: Arc::new(Mutex::new(DevState {
                busy_until: 0,
                last_end: None,
                write_tails: VecDeque::new(),
                read_tails: VecDeque::new(),
                inflight: BinaryHeap::new(),
                stats: IoStats::default(),
            })),
            faulted: Arc::new(AtomicBool::new(false)),
            write_faulted: Arc::new(AtomicBool::new(false)),
            read_faulted: Arc::new(AtomicBool::new(false)),
            torn_write_keep: Arc::new(AtomicU64::new(NO_TORN_WRITE)),
        }
    }

    /// Convenience: in-memory device with the given profile.
    pub fn in_memory(profile: DeviceProfile, clock: SimClock) -> Self {
        Self::new(Arc::new(crate::backend::MemBackend::new()), profile, clock)
    }

    /// The timing profile of this device.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current backend size in bytes.
    pub fn len(&self) -> u64 {
        self.backend.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Schedule an access starting no earlier than `at`; returns
    /// `(start, completion)` in virtual time and updates statistics.
    /// The device is occupied until `start + duration`; the returned
    /// completion additionally includes the profile's extra latency for
    /// random operations (which does not occupy the device — see
    /// [`DeviceProfile::rand_extra_latency`]).
    fn schedule(&self, at: Ns, kind: AccessKind, offset: u64, len: u64) -> (Ns, Ns) {
        let mut st = self.state.lock();
        let span = self.backend.len().max(offset + len).max(1);
        let dist_frac = match st.last_end {
            Some(last) => offset.abs_diff(last) as f64 / span as f64,
            None => 0.532f64.powi(2), // no position yet: average seek
        };
        let sequential = st.classify(self.profile.queue_streams, kind, offset, len);
        let duration = self
            .profile
            .duration_at_distance(kind, len, sequential, dist_frac);
        // Queue accounting: drop requests that completed before this
        // submission instant; what remains (plus this one) is the depth
        // the device sees.
        while let Some(&Reverse(done)) = st.inflight.peek() {
            if done <= at {
                st.inflight.pop();
            } else {
                break;
            }
        }
        let start = at.max(st.busy_until);
        let end = start + duration;
        st.busy_until = end;
        st.inflight.push(Reverse(end));
        let depth = st.inflight.len() as u64;
        st.stats.record(
            kind,
            len,
            sequential,
            duration,
            offset,
            self.profile.erase_block,
        );
        st.stats.record_queue_depth(depth);
        let completion = if sequential {
            end
        } else {
            end + self.profile.rand_extra_latency
        };
        self.clock.advance_to(completion);
        (start, completion)
    }

    fn check_fault(&self) -> StorageResult<()> {
        if self.faulted.load(Ordering::Acquire) {
            Err(StorageError::Faulted("injected device fault"))
        } else {
            Ok(())
        }
    }

    /// Read `len` bytes at `offset`, submitted at virtual time `at`.
    /// Returns the data and the completion time.
    pub fn read_at(&self, at: Ns, offset: u64, len: u64) -> StorageResult<(Vec<u8>, Ns)> {
        assert_no_tracked_locks("read");
        self.check_fault()?;
        if self.read_faulted.load(Ordering::Acquire) {
            return Err(StorageError::Faulted("injected device read fault"));
        }
        let mut buf = vec![0u8; len as usize];
        self.backend.read_at(offset, &mut buf)?;
        let (_, end) = self.schedule(at, AccessKind::Read, offset, len);
        Ok((buf, end))
    }

    /// Write `data` at `offset`, submitted at virtual time `at`.
    /// Returns the completion time.
    pub fn write_at(&self, at: Ns, offset: u64, data: &[u8]) -> StorageResult<Ns> {
        assert_no_tracked_locks("write");
        self.check_fault()?;
        if self.write_faulted.load(Ordering::Acquire) {
            return Err(StorageError::Faulted("injected device write fault"));
        }
        let keep = self.torn_write_keep.swap(NO_TORN_WRITE, Ordering::AcqRel);
        if keep != NO_TORN_WRITE {
            // Crash mid-append: only the first `keep` bytes reach the
            // medium, the device goes dark, and the caller sees the
            // failure. Later recovery finds the torn record.
            let k = (keep as usize).min(data.len());
            if k > 0 {
                self.backend.write_at(offset, &data[..k])?;
            }
            self.write_faulted.store(true, Ordering::Release);
            return Err(StorageError::Faulted("injected torn write"));
        }
        self.backend.write_at(offset, data)?;
        let (_, end) = self.schedule(at, AccessKind::Write, offset, data.len() as u64);
        Ok(end)
    }

    /// Snapshot of accumulated I/O statistics.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.state.lock().stats.snapshot()
    }

    /// O(1) erase-block wear summary (see [`crate::WearStats`]).
    pub fn wear_stats(&self) -> crate::stats::WearStats {
        self.state.lock().stats.wear_stats()
    }

    /// Reset statistics (busy horizon and data are preserved).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }

    /// Virtual time at which the device becomes idle.
    pub fn busy_until(&self) -> Ns {
        self.state.lock().busy_until
    }

    /// Force the next access to be treated as random (e.g. after another
    /// component used the device out-of-band). On multi-stream devices
    /// this closes every open stream.
    pub fn invalidate_head_position(&self) {
        let mut st = self.state.lock();
        st.last_end = None;
        st.write_tails.clear();
        st.read_tails.clear();
    }

    /// Treat the next access at `offset` as a sequential continuation.
    ///
    /// A freshly created device has no head position, so its very first
    /// write is classified random even when a writer (like the MaSM run
    /// allocator) will only ever append from a fixed origin. Priming the
    /// position at that origin removes the artifact so tests can assert
    /// the strict `random_writes == 0` invariant of the paper's design
    /// goal 2. On a multi-stream device this *opens* a write stream at
    /// `offset` (a new append stream for a run writer); existing
    /// streams are unaffected.
    pub fn prime_head_position(&self, offset: u64) {
        let mut st = self.state.lock();
        if self.profile.queue_streams == 0 {
            st.last_end = Some(offset);
        } else if !st.write_tails.contains(&offset) {
            let cap = self.profile.queue_streams;
            st.write_tails.push_back(offset);
            while st.write_tails.len() > cap {
                st.write_tails.pop_front();
            }
        }
    }

    /// [`SimDevice::prime_head_position`], but only when the device has
    /// no head position yet. Safe for several actors sharing one device
    /// (e.g. two engines with regions on one SSD, §4.3): the first
    /// construction removes the fresh-device artifact, later ones leave
    /// the real head state — and its sequentiality accounting — intact.
    pub fn prime_head_position_if_unset(&self, offset: u64) {
        let mut st = self.state.lock();
        if self.profile.queue_streams == 0 {
            if st.last_end.is_none() {
                st.last_end = Some(offset);
            }
        } else if st.write_tails.is_empty() && st.last_end.is_none() {
            st.write_tails.push_back(offset);
        }
    }

    /// Fault injection: make all subsequent accesses fail until
    /// [`SimDevice::clear_fault`].
    pub fn inject_fault(&self) {
        self.faulted.store(true, Ordering::Release);
    }

    /// Clear an injected fault.
    pub fn clear_fault(&self) {
        self.faulted.store(false, Ordering::Release);
    }

    /// Fault injection restricted to writes: reads keep succeeding.
    /// Models a device that has gone read-only (e.g. an SSD at end of
    /// life), and lets tests verify that queries keep being served while
    /// background flush/migration work fails.
    pub fn inject_write_fault(&self) {
        self.write_faulted.store(true, Ordering::Release);
    }

    /// Clear an injected write fault.
    pub fn clear_write_fault(&self) {
        self.write_faulted.store(false, Ordering::Release);
    }

    /// Fault injection restricted to reads: writes keep succeeding.
    /// Models unrecoverable read errors (media corruption reported by
    /// the device) so recovery paths can be tested against them.
    pub fn inject_read_fault(&self) {
        self.read_faulted.store(true, Ordering::Release);
    }

    /// Clear an injected read fault.
    pub fn clear_read_fault(&self) {
        self.read_faulted.store(false, Ordering::Release);
    }

    /// Make the *next* write persist only its first `keep_bytes` bytes
    /// and then fail, leaving the device write-faulted (as after a
    /// power cut mid-append). The partial bytes stay on the medium —
    /// exactly the torn-tail shape crash recovery must tolerate. Use
    /// [`SimDevice::clear_write_fault`] to "power the device back on".
    pub fn inject_torn_write(&self, keep_bytes: u64) {
        self.torn_write_keep.store(keep_bytes, Ordering::Release);
    }

    /// Cancel a pending torn-write injection.
    pub fn clear_torn_write(&self) {
        self.torn_write_keep.store(NO_TORN_WRITE, Ordering::Release);
    }

    /// Freeze the current durable contents into a fresh in-memory
    /// device: a crash image. Only bytes whose writes completed are
    /// visible (backend writes are atomic), the head position and
    /// statistics start clean, and the snapshot shares no state with
    /// the live device — the original can keep running while tests
    /// recover from the copy. Out-of-band: costs no virtual time.
    pub fn snapshot(&self, clock: SimClock) -> StorageResult<SimDevice> {
        self.snapshot_prefix(clock, self.backend.len())
    }

    /// [`SimDevice::snapshot`] truncated to the first `len` bytes: the
    /// deterministic "crash at byte offset N" primitive. Cutting a WAL
    /// device at every prefix sweeps recovery across every possible
    /// crash point, including mid-record torn tails.
    pub fn snapshot_prefix(&self, clock: SimClock, len: u64) -> StorageResult<SimDevice> {
        let n = len.min(self.backend.len());
        let backend = MemBackend::new();
        if n > 0 {
            let mut buf = vec![0u8; n as usize];
            self.backend.read_at(0, &mut buf)?;
            backend.write_at(0, &buf)?;
        }
        Ok(SimDevice::new(
            Arc::new(backend),
            self.profile.clone(),
            clock,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MILLIS;

    fn hdd() -> SimDevice {
        SimDevice::in_memory(DeviceProfile::hdd_barracuda(), SimClock::new())
    }

    fn ssd() -> SimDevice {
        SimDevice::in_memory(DeviceProfile::ssd_x25e(), SimClock::new())
    }

    #[test]
    fn data_roundtrip_through_device() {
        let d = ssd();
        d.write_at(0, 0, b"masm").unwrap();
        let (data, _) = d.read_at(0, 0, 4).unwrap();
        assert_eq!(&data, b"masm");
    }

    #[test]
    fn sequential_writes_avoid_seek_penalty() {
        let d = hdd();
        let chunk = vec![0u8; 64 * 1024];
        let t1 = d.write_at(0, 0, &chunk).unwrap();
        let t2 = d.write_at(t1, 64 * 1024, &chunk).unwrap();
        // Second write is sequential: its duration must be far below a seek.
        assert!(t2 - t1 < 2 * MILLIS, "sequential write took {}ns", t2 - t1);
        let s = d.stats();
        assert_eq!(s.sequential_ops, 1);
        assert_eq!(s.random_ops, 1); // the first op had no predecessor
    }

    #[test]
    fn interleaved_streams_destroy_sequentiality() {
        let d = hdd();
        let chunk = vec![0u8; 4096];
        // Pre-populate distant regions.
        d.write_at(0, 0, &vec![0u8; 1 << 20]).unwrap();
        d.write_at(0, 1 << 30, &vec![0u8; 1 << 20]).unwrap();
        d.reset_stats();
        // Stream A scans forward; stream B writes far away, alternating.
        let mut t = d.busy_until();
        for i in 0..4u64 {
            let (_, ta) = d.read_at(t, i * 4096, 4096).unwrap();
            let tb = d.write_at(ta, (1 << 30) + i * 4096, &chunk).unwrap();
            t = tb;
        }
        let s = d.stats();
        // Every access after an access from the other stream is random.
        assert_eq!(s.sequential_ops, 0, "{s:?}");
        assert_eq!(s.random_ops, 8);
    }

    #[test]
    fn device_serializes_concurrent_submissions() {
        let d = ssd();
        d.write_at(0, 0, &vec![0u8; 1 << 20]).unwrap();
        let base = d.busy_until();
        // Two requests submitted at the same virtual instant must not
        // overlap on one device.
        let (_, e1) = d.read_at(base, 0, 512 * 1024).unwrap();
        let (_, e2) = d.read_at(base, 512 * 1024, 512 * 1024).unwrap();
        assert!(e2 > e1);
        let gap = e2 - e1;
        let dur1 = e1 - base;
        // Second op starts after the first completes; with sequential
        // continuation its duration is similar.
        assert!(gap > dur1 / 2);
    }

    #[test]
    fn clock_tracks_device_completion() {
        let c = SimClock::new();
        let d = SimDevice::in_memory(DeviceProfile::ssd_x25e(), c.clone());
        let end = d.write_at(0, 0, &[1u8; 4096]).unwrap();
        assert_eq!(c.now(), end);
    }

    #[test]
    fn out_of_bounds_read_fails_cleanly() {
        let d = ssd();
        assert!(d.read_at(0, 0, 10).is_err());
    }

    #[test]
    fn fault_injection_blocks_io() {
        let d = ssd();
        d.write_at(0, 0, &[1, 2, 3]).unwrap();
        d.inject_fault();
        assert!(matches!(d.read_at(0, 0, 3), Err(StorageError::Faulted(_))));
        d.clear_fault();
        assert!(d.read_at(0, 0, 3).is_ok());
    }

    #[test]
    fn write_fault_injection_spares_reads() {
        let d = ssd();
        d.write_at(0, 0, &[1, 2, 3]).unwrap();
        d.inject_write_fault();
        assert!(matches!(
            d.write_at(0, 8, &[4]),
            Err(StorageError::Faulted(_))
        ));
        assert_eq!(d.read_at(0, 0, 3).unwrap().0, vec![1, 2, 3]);
        d.clear_write_fault();
        assert!(d.write_at(0, 8, &[4]).is_ok());
    }

    #[test]
    fn read_fault_injection_spares_writes() {
        let d = ssd();
        d.write_at(0, 0, &[1, 2, 3]).unwrap();
        d.inject_read_fault();
        assert!(matches!(d.read_at(0, 0, 3), Err(StorageError::Faulted(_))));
        assert!(d.write_at(d.busy_until(), 8, &[4]).is_ok());
        d.clear_read_fault();
        assert_eq!(d.read_at(0, 0, 3).unwrap().0, vec![1, 2, 3]);
    }

    #[test]
    fn torn_write_persists_prefix_then_faults() {
        let d = ssd();
        d.write_at(0, 0, &[9u8; 8]).unwrap();
        d.inject_torn_write(3);
        assert!(matches!(
            d.write_at(d.busy_until(), 0, &[7u8; 8]),
            Err(StorageError::Faulted(_))
        ));
        // The device stays dark until explicitly revived.
        assert!(d.write_at(d.busy_until(), 0, &[1]).is_err());
        d.clear_write_fault();
        // Exactly the first 3 bytes of the torn write landed.
        assert_eq!(d.read_at(0, 0, 8).unwrap().0, vec![7, 7, 7, 9, 9, 9, 9, 9]);
    }

    #[test]
    fn snapshot_is_isolated_and_prefix_cuts() {
        let d = ssd();
        d.write_at(0, 0, b"hello world").unwrap();
        let snap = d.snapshot(SimClock::new()).unwrap();
        let cut = d.snapshot_prefix(SimClock::new(), 5).unwrap();
        // Writes after the snapshot are invisible to it.
        d.write_at(d.busy_until(), 0, b"HELLO").unwrap();
        assert_eq!(snap.read_at(0, 0, 11).unwrap().0, b"hello world");
        assert_eq!(cut.len(), 5);
        assert_eq!(cut.read_at(0, 0, 5).unwrap().0, b"hello");
        assert!(cut.read_at(0, 0, 6).is_err(), "cut must end at the prefix");
        // Snapshot stats start clean.
        assert_eq!(snap.stats().bytes_written, 0);
    }

    #[test]
    fn wear_counters_accumulate_on_ssd() {
        let d = ssd();
        for i in 0..8u64 {
            d.write_at(0, i * 4096, &[0u8; 4096]).unwrap();
        }
        let s = d.stats();
        assert!(s.touched_blocks >= 1);
        assert!(s.bytes_written == 8 * 4096);
    }

    #[test]
    fn prime_head_makes_first_write_sequential() {
        let d = ssd();
        d.prime_head_position(4096);
        d.write_at(0, 4096, &[0u8; 4096]).unwrap();
        d.write_at(d.busy_until(), 8192, &[0u8; 4096]).unwrap();
        let s = d.stats();
        assert_eq!(s.random_writes, 0, "{s:?}");
        assert_eq!(s.sequential_ops, 2);
    }

    #[test]
    fn prime_if_unset_never_clobbers_existing_head() {
        let d = ssd();
        d.prime_head_position_if_unset(0);
        d.write_at(0, 0, &[0u8; 4096]).unwrap();
        // A second actor "constructing" on the shared device must not
        // rewrite the head position (4096 after the write above).
        d.prime_head_position_if_unset(1 << 20);
        d.write_at(d.busy_until(), 4096, &[0u8; 4096]).unwrap();
        let s = d.stats();
        assert_eq!(s.random_writes, 0, "{s:?}");
    }

    #[test]
    fn invalidate_head_forces_random() {
        let d = hdd();
        let chunk = vec![0u8; 4096];
        d.write_at(0, 0, &chunk).unwrap();
        d.reset_stats();
        d.invalidate_head_position();
        d.write_at(d.busy_until(), 4096, &chunk).unwrap();
        assert_eq!(d.stats().random_ops, 1);
    }
}
