//! Device timing profiles.
//!
//! A [`DeviceProfile`] converts a single access — kind (read/write),
//! length, and whether it continues the previous access (sequential) —
//! into a duration in virtual nanoseconds. The presets are calibrated to
//! the hardware of the paper's §4.1 experimental setup:
//!
//! * [`DeviceProfile::hdd_barracuda`] — 200 GB 7200 rpm Seagate Barracuda:
//!   77 MB/s sequential read/write, ~8.5 ms average seek, ~4.17 ms average
//!   rotational delay (half a revolution at 7200 rpm). A random 4 KB access
//!   therefore costs ≈12.7 ms, i.e. ≈78 IOPS, matching the paper's measured
//!   68 random writes/s (Figure 12) to first order.
//! * [`DeviceProfile::ssd_x25e`] — Intel X25-E: 250 MB/s sequential read,
//!   170 MB/s sequential write, ≈26 µs random-read setup (the paper cites
//!   "over 35,000 4KB random reads per second" under native command
//!   queuing), and an erase/wear-leveling penalty on *random* writes —
//!   the reason MaSM's design goal 2 ("no random SSD writes") matters.

use crate::clock::Ns;

/// Kind of device access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read bytes from the device.
    Read,
    /// Write bytes to the device.
    Write,
}

/// Distance-dependent seek model for rotating media:
/// `seek(d) = min + span · sqrt(d / device_span) + rotational`.
///
/// The square-root law is the classic disk-arm model; with two uniform
/// random positions `E[sqrt(|X−Y|)] ≈ 0.532`, so the defaults reproduce
/// the Barracuda's ~8.5 ms average seek while making *short* seeks (an
/// elevator-sorted update batch, say) several times cheaper than full
/// random strokes — the effect behind the paper's §2.2 observation that
/// mixing workloads costs 1.6× beyond the sum of the parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekModel {
    /// Minimum (track-to-track) seek in ns.
    pub min: Ns,
    /// Full-stroke seek minus the minimum, in ns.
    pub span: Ns,
    /// Average rotational delay in ns (half a revolution).
    pub rotational: Ns,
}

/// Timing model of one storage device.
///
/// `duration(kind, len, sequential)` =
/// `setup(kind, sequential) + len / bandwidth(kind)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name (used in reports).
    pub name: &'static str,
    /// Sequential read bandwidth in bytes per second.
    pub seq_read_bw: f64,
    /// Sequential write bandwidth in bytes per second.
    pub seq_write_bw: f64,
    /// Fixed cost of a non-sequential read (seek + rotation for HDDs,
    /// channel setup for SSDs), in ns.
    pub rand_read_setup: Ns,
    /// Fixed cost of a non-sequential write, in ns. For SSDs this includes
    /// the amortized erase / wear-leveling penalty of random writes.
    pub rand_write_setup: Ns,
    /// Fixed per-operation overhead even when sequential (command issue,
    /// controller), in ns.
    pub seq_setup: Ns,
    /// Extra *latency* of a random operation beyond its device
    /// occupancy, in ns. SSDs reach their random-read IOPS only under
    /// native command queuing: a single queued 4 KB read occupies the
    /// device ~28 µs (35 k IOPS) but completes ~85 µs after issue. The
    /// extra latency delays the caller's completion without blocking
    /// other requests — dependent (queue-depth-1) read chains feel it in
    /// full, deep pipelines hide it.
    pub rand_extra_latency: Ns,
    /// Distance-dependent seek model (rotating media). When set, the
    /// random-access setup of an op is computed from the seek distance
    /// instead of the flat `rand_*_setup` averages.
    pub seek_model: Option<SeekModel>,
    /// Number of concurrent sequential *write* streams the device can
    /// keep open (NCQ / multi-channel flash). `0` models a single
    /// physical head: sequentiality is judged against the one most
    /// recent access, so interleaved streams destroy each other — the
    /// HDD interference effect of the paper's §2.2. A positive value
    /// makes the device track that many open write-stream tails (plus
    /// `4×` as many read tails): an access is sequential when it
    /// continues *its own* stream, which is how flash devices behave —
    /// the random-write erase penalty comes from scattered writes, not
    /// from interleaving independent append streams.
    pub queue_streams: usize,
    /// Erase-block size in bytes used for wear accounting (SSDs). Zero
    /// disables wear tracking (HDDs).
    pub erase_block: u64,
    /// Write endurance per cell (program/erase cycles) for lifetime
    /// estimates; the paper uses 10^5 for enterprise SLC flash.
    pub endurance_cycles: u64,
}

impl DeviceProfile {
    /// The paper's main-data disk: 200 GB 7200 rpm SATA Barracuda.
    pub fn hdd_barracuda() -> Self {
        DeviceProfile {
            name: "hdd-barracuda-7200",
            seq_read_bw: 77.0e6,
            seq_write_bw: 77.0e6,
            // 8.5 ms average seek + 4.17 ms average rotational delay.
            rand_read_setup: 12_670_000,
            rand_write_setup: 12_670_000,
            seq_setup: 50_000,     // 50 µs command overhead
            rand_extra_latency: 0, // the seek model is already latency
            // min 0.8 ms, full stroke ~15.3 ms, rotation 4.17 ms:
            // averages to the 12.67 ms flat model over random distances.
            seek_model: Some(SeekModel {
                min: 800_000,
                span: 14_500_000,
                rotational: 4_170_000,
            }),
            queue_streams: 0,
            erase_block: 0,
            endurance_cycles: u64::MAX,
        }
    }

    /// The paper's update-cache SSD: Intel X25-E (SLC).
    pub fn ssd_x25e() -> Self {
        DeviceProfile {
            name: "ssd-intel-x25e",
            seq_read_bw: 250.0e6,
            seq_write_bw: 170.0e6,
            // ~35k 4KB random reads/s => ~28.5 µs per op; 4KB transfer at
            // 250 MB/s is 16.4 µs, so setup ≈ 12 µs.
            rand_read_setup: 12_000,
            // Random writes trigger erase and wear-leveling; uFLIP-style
            // measurements put sustained random 4KB writes around
            // ~2-3k IOPS on this class of device.
            rand_write_setup: 350_000,
            seq_setup: 5_000,
            // QD1 4 KB random read latency ~85 µs vs ~28 µs occupancy.
            rand_extra_latency: 55_000,
            seek_model: None,
            // The X25-E advertises NCQ depth 32; eight concurrent
            // sequential write streams is conservative for its
            // ten-channel controller.
            queue_streams: 8,
            erase_block: 256 * 1024,
            endurance_cycles: 100_000,
        }
    }

    /// Duration of an access of `len` bytes, using the *average* seek
    /// cost for non-sequential accesses.
    ///
    /// `sequential` means the access starts exactly where the previous
    /// access to the device ended (same kind of head/channel continuation).
    pub fn duration(&self, kind: AccessKind, len: u64, sequential: bool) -> Ns {
        // E[sqrt(|X-Y|)] for uniform X, Y is ~0.532.
        self.duration_at_distance(kind, len, sequential, 0.532f64.powi(2))
    }

    /// Duration of an access whose seek distance is `dist_frac` of the
    /// device span (only meaningful with a [`SeekModel`]; other devices
    /// ignore the distance).
    pub fn duration_at_distance(
        &self,
        kind: AccessKind,
        len: u64,
        sequential: bool,
        dist_frac: f64,
    ) -> Ns {
        let (bw, setup) = match (kind, sequential) {
            (AccessKind::Read, true) => (self.seq_read_bw, self.seq_setup),
            (AccessKind::Read, false) => (self.seq_read_bw, self.rand_read_setup),
            (AccessKind::Write, true) => (self.seq_write_bw, self.seq_setup),
            (AccessKind::Write, false) => (self.seq_write_bw, self.rand_write_setup),
        };
        let setup = match (&self.seek_model, sequential) {
            (Some(m), false) => {
                m.min + (m.span as f64 * dist_frac.clamp(0.0, 1.0).sqrt()) as Ns + m.rotational
            }
            _ => setup,
        };
        let transfer = (len as f64) / bw * 1e9;
        setup + transfer as Ns
    }

    /// Total bytes that can be written over the device's lifetime given a
    /// capacity, assuming perfect wear leveling.
    pub fn lifetime_write_bytes(&self, capacity: u64) -> u128 {
        (capacity as u128) * (self.endurance_cycles as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MILLIS;
    use crate::MIB;

    #[test]
    fn hdd_sequential_read_tracks_bandwidth() {
        let p = DeviceProfile::hdd_barracuda();
        // 77 MB at 77 MB/s should take ~1 s.
        let d = p.duration(AccessKind::Read, 77_000_000, true);
        assert!((d as f64 - 1e9).abs() < 1e9 * 0.01, "got {d}");
    }

    #[test]
    fn hdd_random_4k_is_about_12_7_ms() {
        let p = DeviceProfile::hdd_barracuda();
        let d = p.duration(AccessKind::Read, 4096, false);
        assert!(d > 12 * MILLIS && d < 14 * MILLIS, "got {d}");
    }

    #[test]
    fn hdd_random_iops_matches_paper_ballpark() {
        // Paper Figure 12 measures 68 sustained random 4KB writes/s.
        let p = DeviceProfile::hdd_barracuda();
        let d = p.duration(AccessKind::Write, 4096, false);
        let iops = 1e9 / d as f64;
        assert!((60.0..100.0).contains(&iops), "got {iops}");
    }

    #[test]
    fn ssd_random_read_iops_in_tens_of_thousands() {
        let p = DeviceProfile::ssd_x25e();
        let d = p.duration(AccessKind::Read, 4096, false);
        let iops = 1e9 / d as f64;
        assert!(iops > 25_000.0, "got {iops}");
    }

    #[test]
    fn ssd_reads_faster_than_hdd_reads() {
        let ssd = DeviceProfile::ssd_x25e();
        let hdd = DeviceProfile::hdd_barracuda();
        for &len in &[4096u64, 64 * 1024, MIB] {
            for &seq in &[true, false] {
                assert!(
                    ssd.duration(AccessKind::Read, len, seq)
                        < hdd.duration(AccessKind::Read, len, seq)
                );
            }
        }
    }

    #[test]
    fn ssd_random_write_much_slower_than_sequential() {
        let p = DeviceProfile::ssd_x25e();
        let rand = p.duration(AccessKind::Write, 4096, false);
        let seq = p.duration(AccessKind::Write, 4096, true);
        assert!(rand > 5 * seq, "rand={rand} seq={seq}");
    }

    #[test]
    fn lifetime_writes_match_paper_example() {
        // §3.7: a 32 GB X25-E can support 3.2 PB of writes.
        let p = DeviceProfile::ssd_x25e();
        let total = p.lifetime_write_bytes(32 * crate::GIB);
        let pb = total as f64 / 1e15;
        assert!((3.0..4.0).contains(&pb), "got {pb} PB");
    }

    #[test]
    fn duration_scales_linearly_in_len() {
        let p = DeviceProfile::ssd_x25e();
        let d1 = p.duration(AccessKind::Read, MIB, true);
        let d2 = p.duration(AccessKind::Read, 2 * MIB, true);
        let fixed = p.seq_setup;
        assert!((d2 - fixed) > (d1 - fixed) * 19 / 10);
    }
}
