//! # masm-storage — simulated storage substrate for the MaSM reproduction
//!
//! The MaSM paper (Athanassoulis et al., SIGMOD 2011) evaluates on a real
//! SATA disk (Seagate Barracuda, 77 MB/s sequential) and a real SSD
//! (Intel X25-E, 250 MB/s sequential read / 170 MB/s sequential write,
//! tens of thousands of 4 KB random reads per second). Its results are
//! *I/O-shape* results: sequential vs. random accesses, disk vs. SSD
//! bandwidth, and the overlap of asynchronous I/O across devices.
//!
//! This crate substitutes the hardware with a **byte-accurate storage layer
//! plus a calibrated device timing model**:
//!
//! * [`backend`] — real byte storage ([`MemBackend`], [`FileBackend`]); data
//!   written is data read back, so all correctness properties are testable.
//! * [`device`] — [`DeviceProfile`]s turning an access (kind, offset,
//!   length, sequentiality) into a duration in virtual nanoseconds, with
//!   presets matching the paper's hardware constants.
//! * [`clock`] — [`SimClock`], a shared virtual timeline.
//! * [`sim`] — [`SimDevice`], which binds a backend to a profile, keeps a
//!   busy-until horizon (so concurrent request streams to one device
//!   serialize and disturb each other's sequentiality — the exact
//!   interference effect the paper measures), and records [`IoStats`]
//!   including SSD wear counters.
//! * [`sched`] — [`IoSession`], a per-actor time cursor with synchronous
//!   and asynchronous (ticket-based) operations, modeling `libaio`-style
//!   overlap of disk and SSD accesses.
//!
//! All timing is virtual: experiments are deterministic and run in
//! milliseconds of wall-clock time while reproducing the relative
//! performance the paper reports.

pub mod backend;
pub mod clock;
pub mod device;
pub mod error;
pub mod lockcheck;
pub mod sched;
pub mod sim;
pub mod stats;

pub use backend::{FileBackend, MemBackend, StorageBackend};
pub use clock::{Ns, SimClock};
pub use device::{AccessKind, DeviceProfile};
pub use error::{StorageError, StorageResult};
pub use lockcheck::{tracked_locks_held, LockToken, TrackedGuard, TrackedMutex};
pub use sched::{IoSession, IoTicket, SessionHandle};
pub use sim::SimDevice;
pub use stats::{
    CacheStats, CacheStatsSnapshot, CompressionReport, IoStats, IoStatsSnapshot, MergeReport,
    WearStats,
};

/// Number of bytes in one kibibyte.
pub const KIB: u64 = 1024;
/// Number of bytes in one mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;
