//! A shared virtual timeline.
//!
//! All experiment timing in this reproduction is *simulated*: devices and
//! actors agree on a monotonically non-decreasing virtual time expressed in
//! nanoseconds. The clock itself is trivially cheap — it is an atomic
//! high-water mark advanced by whoever observed the latest completion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Virtual nanoseconds.
pub type Ns = u64;

/// One millisecond in virtual nanoseconds.
pub const MILLIS: Ns = 1_000_000;
/// One microsecond in virtual nanoseconds.
pub const MICROS: Ns = 1_000;
/// One second in virtual nanoseconds.
pub const SECS: Ns = 1_000_000_000;

/// A shared virtual clock.
///
/// The clock records the furthest point in virtual time that any actor or
/// device has reached. Actors keep their own cursors (see
/// [`crate::sched::IoSession`]) and publish progress here, so that global
/// measurements ("how long did the whole experiment take") are simply
/// [`SimClock::now`] deltas.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    inner: Arc<AtomicU64>,
}

impl SimClock {
    /// Create a clock starting at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current high-water mark of virtual time.
    pub fn now(&self) -> Ns {
        self.inner.load(Ordering::Acquire)
    }

    /// Advance the high-water mark to at least `t`.
    ///
    /// Returns the post-update value. Never moves backwards.
    pub fn advance_to(&self, t: Ns) -> Ns {
        let mut cur = self.inner.load(Ordering::Relaxed);
        loop {
            if t <= cur {
                return cur;
            }
            match self
                .inner
                .compare_exchange_weak(cur, t, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advance the high-water mark by `delta` and return the new time.
    pub fn advance_by(&self, delta: Ns) -> Ns {
        self.inner.fetch_add(delta, Ordering::AcqRel) + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = SimClock::new();
        assert_eq!(c.advance_to(100), 100);
        assert_eq!(c.advance_to(50), 100, "must not move backwards");
        assert_eq!(c.now(), 100);
        assert_eq!(c.advance_to(200), 200);
    }

    #[test]
    fn advance_by_accumulates() {
        let c = SimClock::new();
        c.advance_by(10);
        c.advance_by(15);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_to(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn concurrent_advances_keep_max() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let c = c.clone();
                s.spawn(move || {
                    for j in 0..1000u64 {
                        c.advance_to(i * 1000 + j);
                    }
                });
            }
        });
        assert_eq!(c.now(), 7999);
    }
}
