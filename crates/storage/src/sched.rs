//! Per-actor I/O sessions modeling asynchronous-I/O overlap.
//!
//! The paper's prototype uses `libaio` to overlap disk and SSD accesses
//! (§4.1): while a range scan streams 1 MB reads off the disk, the
//! corresponding reads of cached updates proceed on the SSD, and the scan
//! only stalls if the SSD side falls behind. An [`IoSession`] reproduces
//! this: it is a cursor in virtual time owned by one actor (a query, an
//! updater, a migration thread). Synchronous operations advance the cursor
//! to the completion time; asynchronous operations are *issued* at the
//! cursor and produce an [`IoTicket`] that is awaited later, advancing the
//! cursor only to `max(now, completion)` — the overlap.

use crate::clock::{Ns, SimClock};
use crate::error::StorageResult;
use crate::sim::SimDevice;

/// An in-flight asynchronous operation.
///
/// The data is already materialized (the simulation moves bytes eagerly);
/// only the *time* of availability is deferred.
#[derive(Debug)]
pub struct IoTicket {
    data: Option<Vec<u8>>,
    completion: Ns,
}

impl IoTicket {
    /// Virtual completion time of this operation.
    pub fn completion(&self) -> Ns {
        self.completion
    }
}

/// A per-actor virtual-time cursor issuing device operations.
#[derive(Debug, Clone)]
pub struct IoSession {
    clock: SimClock,
    now: Ns,
}

impl IoSession {
    /// Start a session at the clock's current time.
    pub fn new(clock: SimClock) -> Self {
        let now = clock.now();
        IoSession { clock, now }
    }

    /// Start a session at an explicit virtual time.
    pub fn at(clock: SimClock, now: Ns) -> Self {
        IoSession { clock, now }
    }

    /// The actor's current virtual time.
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Elapsed virtual time since `start`.
    pub fn elapsed_since(&self, start: Ns) -> Ns {
        self.now.saturating_sub(start)
    }

    /// Model CPU work: advances the cursor without touching any device.
    pub fn cpu(&mut self, ns: Ns) {
        self.now += ns;
        self.clock.advance_to(self.now);
    }

    /// Synchronous read: the cursor advances to the completion time.
    pub fn read(&mut self, dev: &SimDevice, offset: u64, len: u64) -> StorageResult<Vec<u8>> {
        let (data, end) = dev.read_at(self.now, offset, len)?;
        self.now = end;
        Ok(data)
    }

    /// Synchronous write: the cursor advances to the completion time.
    pub fn write(&mut self, dev: &SimDevice, offset: u64, data: &[u8]) -> StorageResult<()> {
        let end = dev.write_at(self.now, offset, data)?;
        self.now = end;
        Ok(())
    }

    /// Asynchronous read: issued at the cursor, which does **not** advance.
    pub fn read_async(&self, dev: &SimDevice, offset: u64, len: u64) -> StorageResult<IoTicket> {
        let (data, end) = dev.read_at(self.now, offset, len)?;
        Ok(IoTicket {
            data: Some(data),
            completion: end,
        })
    }

    /// Asynchronous write: issued at the cursor, which does **not** advance.
    pub fn write_async(
        &self,
        dev: &SimDevice,
        offset: u64,
        data: &[u8],
    ) -> StorageResult<IoTicket> {
        let end = dev.write_at(self.now, offset, data)?;
        Ok(IoTicket {
            data: None,
            completion: end,
        })
    }

    /// Await a ticket: the cursor advances to `max(now, completion)`, i.e.
    /// time already spent elsewhere overlaps with this operation.
    pub fn wait(&mut self, ticket: IoTicket) -> Vec<u8> {
        self.now = self.now.max(ticket.completion);
        self.clock.advance_to(self.now);
        ticket.data.unwrap_or_default()
    }

    /// Await only the *time* of a ticket, discarding data.
    pub fn wait_done(&mut self, ticket: &IoTicket) {
        self.now = self.now.max(ticket.completion);
        self.clock.advance_to(self.now);
    }

    /// Synchronize the cursor forward to the global clock (e.g. after
    /// blocking on another actor).
    pub fn sync_to_clock(&mut self) {
        self.now = self.now.max(self.clock.now());
    }

    /// Move the cursor to at least `t` (used when joining another actor's
    /// completion).
    pub fn join_at(&mut self, t: Ns) {
        self.now = self.now.max(t);
        self.clock.advance_to(self.now);
    }
}

/// A cloneable handle to a session shared by the operators of one query
/// plan (Volcano-style trees pull from several children that all charge
/// time to the same actor).
#[derive(Debug, Clone)]
pub struct SessionHandle {
    inner: std::sync::Arc<parking_lot::Mutex<IoSession>>,
}

impl SessionHandle {
    /// Wrap a session.
    pub fn new(session: IoSession) -> Self {
        SessionHandle {
            inner: std::sync::Arc::new(parking_lot::Mutex::new(session)),
        }
    }

    /// Start a fresh session on `clock` and wrap it.
    pub fn fresh(clock: SimClock) -> Self {
        Self::new(IoSession::new(clock))
    }

    /// Current virtual time of the underlying session.
    pub fn now(&self) -> Ns {
        self.inner.lock().now()
    }

    /// Run `f` with exclusive access to the session.
    pub fn with<R>(&self, f: impl FnOnce(&mut IoSession) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Synchronous read through the shared session.
    pub fn read(&self, dev: &SimDevice, offset: u64, len: u64) -> StorageResult<Vec<u8>> {
        self.inner.lock().read(dev, offset, len)
    }

    /// Synchronous write through the shared session.
    pub fn write(&self, dev: &SimDevice, offset: u64, data: &[u8]) -> StorageResult<()> {
        self.inner.lock().write(dev, offset, data)
    }

    /// Asynchronous read issued at the shared session's cursor.
    pub fn read_async(&self, dev: &SimDevice, offset: u64, len: u64) -> StorageResult<IoTicket> {
        self.inner.lock().read_async(dev, offset, len)
    }

    /// Await a ticket on the shared session.
    pub fn wait(&self, ticket: IoTicket) -> Vec<u8> {
        self.inner.lock().wait(ticket)
    }

    /// Model CPU work on the shared session.
    pub fn cpu(&self, ns: Ns) {
        self.inner.lock().cpu(ns)
    }

    /// Move the session cursor forward to at least `t`.
    pub fn join_at(&self, t: Ns) {
        self.inner.lock().join_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::MIB;

    fn setup() -> (SimClock, SimDevice, SimDevice) {
        let clock = SimClock::new();
        let hdd = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        (clock, hdd, ssd)
    }

    #[test]
    fn sync_read_advances_cursor() {
        let (clock, hdd, _) = setup();
        hdd.write_at(0, 0, &vec![7u8; 4096]).unwrap();
        let mut s = IoSession::at(clock, hdd.busy_until());
        let before = s.now();
        let data = s.read(&hdd, 0, 4096).unwrap();
        assert_eq!(data.len(), 4096);
        assert!(s.now() > before);
    }

    #[test]
    fn async_overlap_takes_max_of_devices() {
        let (clock, hdd, ssd) = setup();
        let big = vec![0u8; (4 * MIB) as usize];
        hdd.write_at(0, 0, &big).unwrap();
        ssd.write_at(0, 0, &big).unwrap();
        let start = clock.now().max(hdd.busy_until()).max(ssd.busy_until());

        // Overlapped: issue SSD read async, do HDD read sync, then wait.
        let mut s = IoSession::at(clock.clone(), start);
        let ticket = s.read_async(&ssd, 0, 4 * MIB).unwrap();
        s.read(&hdd, 0, 4 * MIB).unwrap();
        s.wait(ticket);
        let overlapped = s.elapsed_since(start);

        // The HDD is the slower device; overlap must cost ~the HDD time.
        let hdd_only = DeviceProfile::hdd_barracuda().duration(
            crate::device::AccessKind::Read,
            4 * MIB,
            false,
        );
        assert!(
            overlapped < hdd_only + hdd_only / 5,
            "overlapped={overlapped} hdd_only={hdd_only}"
        );

        // Serial on one device would be strictly larger than either alone.
        let ssd_only =
            DeviceProfile::ssd_x25e().duration(crate::device::AccessKind::Read, 4 * MIB, false);
        assert!(overlapped < hdd_only + ssd_only);
    }

    #[test]
    fn cpu_time_advances_clock() {
        let (clock, _, _) = setup();
        let mut s = IoSession::new(clock.clone());
        s.cpu(1_000_000);
        assert_eq!(s.now(), 1_000_000);
        assert_eq!(clock.now(), 1_000_000);
    }

    #[test]
    fn wait_done_preserves_order() {
        let (clock, _, ssd) = setup();
        ssd.write_at(0, 0, &vec![0u8; 128 * 1024]).unwrap();
        let mut s = IoSession::at(clock, ssd.busy_until());
        // Two *random* reads: completions are ordered by issue order.
        let t1 = s.read_async(&ssd, 0, 4096).unwrap();
        let t2 = s.read_async(&ssd, 65536, 4096).unwrap();
        assert!(t2.completion() > t1.completion());
        s.wait_done(&t2);
        assert_eq!(s.now(), t2.completion());
        // Waiting on the earlier ticket afterwards is a no-op in time.
        let now = s.now();
        s.wait_done(&t1);
        assert_eq!(s.now(), now);
    }

    #[test]
    fn join_at_moves_forward_only() {
        let (clock, _, _) = setup();
        let mut s = IoSession::at(clock, 100);
        s.join_at(50);
        assert_eq!(s.now(), 100);
        s.join_at(500);
        assert_eq!(s.now(), 500);
    }

    #[test]
    fn pipelined_scan_is_device_bound() {
        // Issuing the next read while "processing" the current one should
        // make total time ≈ device busy time, not device + cpu.
        let (clock, hdd, _) = setup();
        let chunk = vec![0u8; MIB as usize];
        for i in 0..8u64 {
            hdd.write_at(0, i * MIB, &chunk).unwrap();
        }
        hdd.reset_stats();
        let start = hdd.busy_until();
        let mut s = IoSession::at(clock, start);
        let mut pending = s.read_async(&hdd, 0, MIB).unwrap();
        for i in 1..8u64 {
            let next = s.read_async(&hdd, i * MIB, MIB).unwrap();
            s.wait(pending);
            s.cpu(100_000); // 0.1ms CPU per MB — far less than 13ms I/O
            pending = next;
        }
        s.wait(pending);
        let elapsed = s.elapsed_since(start);
        let busy = hdd.stats().busy_ns;
        assert!(
            elapsed <= busy + 8 * 100_000 + 1_000_000,
            "elapsed={elapsed} busy={busy}"
        );
    }
}
