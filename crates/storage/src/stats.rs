//! Per-device I/O statistics, SSD wear accounting, and shared cache
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable statistics accumulated by a [`crate::sim::SimDevice`].
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Read/write operations that continued the previous access
    /// (no seek / setup penalty).
    pub sequential_ops: u64,
    /// Operations that paid the random-access setup cost.
    pub random_ops: u64,
    /// Random *write* operations specifically (MaSM design goal 2 is that
    /// this stays zero for the update-cache SSD).
    pub random_writes: u64,
    /// Total virtual nanoseconds the device was busy.
    pub busy_ns: u64,
    /// Writes per erase block, for wear/endurance estimates.
    pub wear: HashMap<u64, u64>,
}

impl IoStats {
    /// Record one access.
    pub(crate) fn record(
        &mut self,
        kind: crate::device::AccessKind,
        len: u64,
        sequential: bool,
        duration: u64,
        offset: u64,
        erase_block: u64,
    ) {
        match kind {
            crate::device::AccessKind::Read => {
                self.read_ops += 1;
                self.bytes_read += len;
            }
            crate::device::AccessKind::Write => {
                self.write_ops += 1;
                self.bytes_written += len;
                if let Some(first) = offset.checked_div(erase_block) {
                    let last = (offset + len.max(1) - 1) / erase_block;
                    for blk in first..=last {
                        *self.wear.entry(blk).or_insert(0) += 1;
                    }
                }
                if !sequential {
                    self.random_writes += 1;
                }
            }
        }
        if sequential {
            self.sequential_ops += 1;
        } else {
            self.random_ops += 1;
        }
        self.busy_ns += duration;
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops,
            write_ops: self.write_ops,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            sequential_ops: self.sequential_ops,
            random_ops: self.random_ops,
            random_writes: self.random_writes,
            busy_ns: self.busy_ns,
            max_block_wear: self.wear.values().copied().max().unwrap_or(0),
            touched_blocks: self.wear.len() as u64,
        }
    }
}

/// Copyable summary of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Sequential operations.
    pub sequential_ops: u64,
    /// Random operations.
    pub random_ops: u64,
    /// Random write operations.
    pub random_writes: u64,
    /// Total busy time in virtual ns.
    pub busy_ns: u64,
    /// Highest write count over any single erase block.
    pub max_block_wear: u64,
    /// Number of distinct erase blocks ever written.
    pub touched_blocks: u64,
}

impl IoStatsSnapshot {
    /// Total operations of both kinds.
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Average write amplification relative to `logical_bytes` of intent.
    pub fn write_amplification(&self, logical_bytes: u64) -> f64 {
        if logical_bytes == 0 {
            return 0.0;
        }
        self.bytes_written as f64 / logical_bytes as f64
    }

    /// Difference between two snapshots (self - earlier).
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            sequential_ops: self.sequential_ops - earlier.sequential_ops,
            random_ops: self.random_ops - earlier.random_ops,
            random_writes: self.random_writes - earlier.random_writes,
            busy_ns: self.busy_ns - earlier.busy_ns,
            max_block_wear: self.max_block_wear,
            touched_blocks: self.touched_blocks,
        }
    }
}

/// Shared counters for a read cache sitting above a device (e.g. the
/// block cache of `masm-blockrun`). Lives here so benchmarks can report
/// cache effectiveness next to the device [`IoStats`] they already
/// collect.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Record a lookup served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup that had to go to the device.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry added to the cache.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry evicted to make room.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copyable summary for reporting.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            data_bytes: 0,
            meta_bytes: 0,
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Copyable summary of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted.
    pub evictions: u64,
    /// Resident bytes of evictable data entries (decoded blocks).
    pub data_bytes: u64,
    /// Pinned metadata bytes (zone maps, bloom filters) accounted to
    /// the cache but never evicted; kept separate so a one-shot sweep's
    /// pressure on the data population is visible on its own.
    pub meta_bytes: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Difference between two snapshots (self - earlier). The resident
    /// byte gauges are carried over from `self` — they are levels, not
    /// counters.
    pub fn delta(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            data_bytes: self.data_bytes,
            meta_bytes: self.meta_bytes,
        }
    }
}

/// Outcome of one planned run merge (compaction or 2-pass merge): how
/// much of the work was *moved* (whole blocks relinked verbatim, CRC
/// checked but never decoded) versus *merged* (decoded and folded
/// through the k-way merge). Lives here, next to [`IoStats`], so
/// benchmarks report merge efficiency alongside device I/O.
///
/// The headline property: on fully disjoint inputs `bytes_decoded == 0`
/// — compaction cost is proportional to overlap, not input size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Input runs consumed by the merge.
    pub inputs: usize,
    /// Merge fan-in actually observed (inputs contributing blocks);
    /// also the prefetch depth the executor keeps in flight.
    pub fan_in: usize,
    /// Data blocks relinked verbatim, without decoding.
    pub blocks_moved: u64,
    /// Data blocks decoded and fed through the k-way merge.
    pub blocks_merged: u64,
    /// Encoded bytes of the moved blocks.
    pub bytes_moved: u64,
    /// Encoded bytes that had to be decoded (the overlap cost).
    pub bytes_decoded: u64,
    /// Entries written to the output run.
    pub entries_out: u64,
}

impl MergeReport {
    /// Fold another report into this one (for cumulative engine
    /// statistics across many merges).
    pub fn absorb(&mut self, other: &MergeReport) {
        self.inputs += other.inputs;
        self.fan_in = self.fan_in.max(other.fan_in);
        self.blocks_moved += other.blocks_moved;
        self.blocks_merged += other.blocks_merged;
        self.bytes_moved += other.bytes_moved;
        self.bytes_decoded += other.bytes_decoded;
        self.entries_out += other.entries_out;
    }

    /// Fraction of processed bytes that avoided decoding (1.0 = pure
    /// move, 0.0 = full decode; 0.0 when nothing was processed).
    pub fn move_ratio(&self) -> f64 {
        let total = self.bytes_moved + self.bytes_decoded;
        if total == 0 {
            return 0.0;
        }
        self.bytes_moved as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccessKind;

    #[test]
    fn record_read_and_write() {
        let mut s = IoStats::default();
        s.record(AccessKind::Read, 4096, true, 100, 0, 0);
        s.record(AccessKind::Write, 8192, false, 200, 4096, 0);
        let snap = s.snapshot();
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.bytes_written, 8192);
        assert_eq!(snap.sequential_ops, 1);
        assert_eq!(snap.random_ops, 1);
        assert_eq!(snap.random_writes, 1);
        assert_eq!(snap.busy_ns, 300);
    }

    #[test]
    fn wear_tracks_erase_blocks() {
        let mut s = IoStats::default();
        let blk = 256 * 1024;
        // Two writes to the same block, one spanning two blocks.
        s.record(AccessKind::Write, 4096, true, 1, 0, blk);
        s.record(AccessKind::Write, 4096, true, 1, 4096, blk);
        s.record(AccessKind::Write, blk, true, 1, blk - 100, blk);
        let snap = s.snapshot();
        // Block 0 written by all three ops (the span starts inside it);
        // block 1 only by the spanning op.
        assert_eq!(snap.touched_blocks, 2);
        assert_eq!(snap.max_block_wear, 3);
    }

    #[test]
    fn delta_subtracts() {
        let mut s = IoStats::default();
        s.record(AccessKind::Read, 10, true, 5, 0, 0);
        let a = s.snapshot();
        s.record(AccessKind::Read, 30, true, 5, 0, 0);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 1);
        assert_eq!(d.bytes_read, 30);
    }

    #[test]
    fn cache_stats_roundtrip() {
        let s = CacheStats::default();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.insertions, 1);
        assert_eq!(snap.evictions, 1);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let later = {
            s.record_miss();
            s.snapshot()
        };
        assert_eq!(later.delta(&snap).misses, 1);
        s.reset();
        assert_eq!(s.snapshot(), CacheStatsSnapshot::default());
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn merge_report_absorb_and_ratio() {
        let mut total = MergeReport::default();
        assert_eq!(total.move_ratio(), 0.0);
        total.absorb(&MergeReport {
            inputs: 2,
            fan_in: 2,
            blocks_moved: 3,
            blocks_merged: 1,
            bytes_moved: 300,
            bytes_decoded: 100,
            entries_out: 40,
        });
        total.absorb(&MergeReport {
            inputs: 3,
            fan_in: 3,
            blocks_moved: 1,
            blocks_merged: 0,
            bytes_moved: 100,
            bytes_decoded: 0,
            entries_out: 10,
        });
        assert_eq!(total.inputs, 5);
        assert_eq!(total.fan_in, 3);
        assert_eq!(total.blocks_moved, 4);
        assert_eq!(total.entries_out, 50);
        assert!((total.move_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_ratio() {
        let mut s = IoStats::default();
        s.record(AccessKind::Write, 2000, true, 1, 0, 0);
        s.record(AccessKind::Write, 2000, true, 1, 2000, 0);
        assert!((s.snapshot().write_amplification(1000) - 4.0).abs() < 1e-9);
        assert_eq!(s.snapshot().write_amplification(0), 0.0);
    }
}
