//! Per-device I/O statistics, SSD wear accounting, and shared cache
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable statistics accumulated by a [`crate::sim::SimDevice`].
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    /// Number of read operations (unit: ops).
    pub read_ops: u64,
    /// Number of write operations (unit: ops).
    pub write_ops: u64,
    /// Bytes read (unit: bytes).
    pub bytes_read: u64,
    /// Bytes written (unit: bytes).
    pub bytes_written: u64,
    /// Read/write operations that continued the previous access
    /// (no seek / setup penalty; unit: ops).
    pub sequential_ops: u64,
    /// Operations that paid the random-access setup cost (unit: ops).
    pub random_ops: u64,
    /// Random *write* operations specifically (MaSM design goal 2 is that
    /// this stays zero for the update-cache SSD; unit: ops).
    pub random_writes: u64,
    /// Total virtual nanoseconds the device was busy (unit: virtual-ns).
    pub busy_ns: u64,
    /// Deepest submission queue observed: number of requests in flight
    /// (still occupying the device) at any single submission instant,
    /// including the new request (unit: ops). 1 = strictly serial
    /// callers; >1 means some actor overlapped its I/O.
    pub max_queue_depth: u64,
    /// Σ of the observed queue depth over all operations (unit: ops);
    /// divide by `total_ops` for the mean depth.
    pub queue_depth_sum: u64,
    /// Writes per erase block, for wear/endurance estimates. Private:
    /// readers use the O(1) [`IoStats::wear_stats`] summary, maintained
    /// incrementally below, instead of walking this map on every stats
    /// read.
    wear: HashMap<u64, u64>,
    /// Running Σ of per-block write counts (unit: ops).
    wear_sum: u64,
    /// Running Σ of squared per-block write counts (for the coefficient
    /// of variation, without touching the map at read time).
    wear_sq_sum: u64,
    /// Highest write count over any single erase block (unit: ops).
    wear_max: u64,
}

impl IoStats {
    /// Record one access.
    pub(crate) fn record(
        &mut self,
        kind: crate::device::AccessKind,
        len: u64,
        sequential: bool,
        duration: u64,
        offset: u64,
        erase_block: u64,
    ) {
        match kind {
            crate::device::AccessKind::Read => {
                self.read_ops += 1;
                self.bytes_read += len;
            }
            crate::device::AccessKind::Write => {
                self.write_ops += 1;
                self.bytes_written += len;
                if let Some(first) = offset.checked_div(erase_block) {
                    let last = (offset + len.max(1) - 1) / erase_block;
                    for blk in first..=last {
                        let w = self.wear.entry(blk).or_insert(0);
                        *w += 1;
                        // Keep the O(1) summary in lock step: one block
                        // going w-1 → w adds 1 to Σw and (2w-1) to Σw².
                        self.wear_sum += 1;
                        self.wear_sq_sum += 2 * *w - 1;
                        self.wear_max = self.wear_max.max(*w);
                    }
                }
                if !sequential {
                    self.random_writes += 1;
                }
            }
        }
        if sequential {
            self.sequential_ops += 1;
        } else {
            self.random_ops += 1;
        }
        self.busy_ns += duration;
    }

    /// Record the submission-queue depth observed by one access.
    pub(crate) fn record_queue_depth(&mut self, depth: u64) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
        self.queue_depth_sum += depth;
    }

    /// Immutable snapshot for reporting. O(1): the wear fields come
    /// from the running summary, not a map walk.
    #[must_use]
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops,
            write_ops: self.write_ops,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            sequential_ops: self.sequential_ops,
            random_ops: self.random_ops,
            random_writes: self.random_writes,
            busy_ns: self.busy_ns,
            max_queue_depth: self.max_queue_depth,
            queue_depth_sum: self.queue_depth_sum,
            max_block_wear: self.wear_max,
            touched_blocks: self.wear.len() as u64,
        }
    }

    /// O(1) wear/endurance summary, computed from the incrementally
    /// maintained aggregates — the raw per-block histogram is never
    /// cloned or iterated on the stats read path.
    #[must_use]
    pub fn wear_stats(&self) -> WearStats {
        let n = self.wear.len() as u64;
        if n == 0 {
            return WearStats::default();
        }
        let mean = self.wear_sum as f64 / n as f64;
        // Var = E[w²] − E[w]²; guard tiny negatives from f64 rounding.
        let var = (self.wear_sq_sum as f64 / n as f64 - mean * mean).max(0.0);
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        WearStats {
            max_writes_per_block: self.wear_max,
            mean_writes_per_block: mean,
            blocks_touched: n,
            cv,
        }
    }
}

/// O(1) summary of SSD erase-block wear, derived from running
/// aggregates in [`IoStats`] (never from cloning the raw per-block
/// map). A low [`WearStats::cv`] means writes are spread evenly —
/// MaSM's sequential materialize/migrate pattern should keep it near
/// zero, while in-place update schemes hammer hot blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Highest write count over any single erase block (unit: ops).
    pub max_writes_per_block: u64,
    /// Mean write count over the touched blocks (unit: ops).
    pub mean_writes_per_block: f64,
    /// Distinct erase blocks ever written (unit: ops).
    pub blocks_touched: u64,
    /// Coefficient of variation (σ/µ) of per-block write counts;
    /// dimensionless, 0 = perfectly even wear.
    pub cv: f64,
}

impl WearStats {
    /// Combine the wear summaries of two *disjoint* block populations
    /// (per-shard SSDs). Exact, via the method of moments: each side's
    /// `(mean, cv)` reconstructs `E[w]` and `E[w²]`, which are weighted
    /// by block count and recombined — the same numbers a single
    /// device covering both populations would report.
    #[must_use]
    pub fn merge(&self, other: &WearStats) -> WearStats {
        let n = self.blocks_touched + other.blocks_touched;
        if n == 0 {
            return WearStats::default();
        }
        let (n1, n2) = (self.blocks_touched as f64, other.blocks_touched as f64);
        let mean = (n1 * self.mean_writes_per_block + n2 * other.mean_writes_per_block) / n as f64;
        let sq = |s: &WearStats| {
            let m = s.mean_writes_per_block;
            (s.cv * m).powi(2) + m * m
        };
        let e2 = (n1 * sq(self) + n2 * sq(other)) / n as f64;
        let var = (e2 - mean * mean).max(0.0);
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        WearStats {
            max_writes_per_block: self.max_writes_per_block.max(other.max_writes_per_block),
            mean_writes_per_block: mean,
            blocks_touched: n,
            cv,
        }
    }
}

/// Copyable summary of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Sequential operations.
    pub sequential_ops: u64,
    /// Random operations.
    pub random_ops: u64,
    /// Random write operations.
    pub random_writes: u64,
    /// Total busy time in virtual ns.
    pub busy_ns: u64,
    /// Deepest submission queue observed (requests in flight at one
    /// submission instant, including the new one).
    pub max_queue_depth: u64,
    /// Σ of the observed queue depth over all operations.
    pub queue_depth_sum: u64,
    /// Highest write count over any single erase block.
    pub max_block_wear: u64,
    /// Number of distinct erase blocks ever written.
    pub touched_blocks: u64,
}

impl IoStatsSnapshot {
    /// Total operations of both kinds (unit: ops).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Mean submission-queue depth over all operations (0 when idle;
    /// 1.0 = strictly serial callers, >1 = overlapped I/O).
    #[must_use]
    pub fn mean_queue_depth(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            return 0.0;
        }
        self.queue_depth_sum as f64 / total as f64
    }

    /// Average write amplification relative to `logical_bytes` of intent.
    #[must_use]
    pub fn write_amplification(&self, logical_bytes: u64) -> f64 {
        if logical_bytes == 0 {
            return 0.0;
        }
        self.bytes_written as f64 / logical_bytes as f64
    }

    /// Difference between two snapshots (self - earlier). The wear
    /// fields are carried from `self` — they are levels, not counters.
    #[must_use]
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            sequential_ops: self.sequential_ops - earlier.sequential_ops,
            random_ops: self.random_ops - earlier.random_ops,
            random_writes: self.random_writes - earlier.random_writes,
            busy_ns: self.busy_ns - earlier.busy_ns,
            max_queue_depth: self.max_queue_depth,
            queue_depth_sum: self.queue_depth_sum - earlier.queue_depth_sum,
            max_block_wear: self.max_block_wear,
            touched_blocks: self.touched_blocks,
        }
    }

    /// Combine snapshots of two *disjoint* devices (one shard's SSD
    /// each): counters add; the high-water marks take the larger value;
    /// `touched_blocks` adds because the devices share no erase blocks.
    /// Associative and commutative.
    #[must_use]
    pub fn merge(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_ops: self.read_ops + other.read_ops,
            write_ops: self.write_ops + other.write_ops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            sequential_ops: self.sequential_ops + other.sequential_ops,
            random_ops: self.random_ops + other.random_ops,
            random_writes: self.random_writes + other.random_writes,
            busy_ns: self.busy_ns + other.busy_ns,
            max_queue_depth: self.max_queue_depth.max(other.max_queue_depth),
            queue_depth_sum: self.queue_depth_sum + other.queue_depth_sum,
            max_block_wear: self.max_block_wear.max(other.max_block_wear),
            touched_blocks: self.touched_blocks + other.touched_blocks,
        }
    }
}

/// Shared counters for a read cache sitting above a device (e.g. the
/// block cache of `masm-blockrun`). Lives here so benchmarks can report
/// cache effectiveness next to the device [`IoStats`] they already
/// collect.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    rejected: AtomicU64,
    tier2_hits: AtomicU64,
    tier2_insertions: AtomicU64,
    tier2_evictions: AtomicU64,
}

impl CacheStats {
    /// Record a lookup served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup that had to go to the device.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry added to the cache.
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry evicted to make room.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a probation → protected segment promotion (SLRU).
    pub fn record_promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a protected → probation segment demotion (SLRU).
    pub fn record_demotion(&self) {
        self.demotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an oversized block refused admission.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a lookup served from the compressed victim tier (one
    /// codec decode, zero device reads).
    pub fn record_tier2_hit(&self) {
        self.tier2_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a tier-1 victim demoted into the compressed victim tier.
    pub fn record_tier2_insertion(&self) {
        self.tier2_insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an entry aged out of the compressed victim tier.
    pub fn record_tier2_eviction(&self) {
        self.tier2_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copyable summary for reporting.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            tier2_hits: self.tier2_hits.load(Ordering::Relaxed),
            tier2_insertions: self.tier2_insertions.load(Ordering::Relaxed),
            tier2_evictions: self.tier2_evictions.load(Ordering::Relaxed),
            data_bytes: 0,
            probation_bytes: 0,
            protected_bytes: 0,
            meta_bytes: 0,
            disk_bytes: 0,
            tier2_bytes: 0,
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.promotions.store(0, Ordering::Relaxed);
        self.demotions.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.tier2_hits.store(0, Ordering::Relaxed);
        self.tier2_insertions.store(0, Ordering::Relaxed);
        self.tier2_evictions.store(0, Ordering::Relaxed);
    }
}

/// Copyable summary of [`CacheStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Lookups served from tier 1 (decoded blocks).
    pub hits: u64,
    /// Lookups that went to the device.
    pub misses: u64,
    /// Entries inserted into tier 1.
    pub insertions: u64,
    /// Entries evicted from tier 1.
    pub evictions: u64,
    /// Probation → protected promotions (a block's second reference
    /// under the SLRU policy).
    pub promotions: u64,
    /// Protected → probation demotions (the protected segment ran over
    /// its fraction of capacity).
    pub demotions: u64,
    /// Oversized blocks refused admission (larger than a whole shard).
    pub rejected: u64,
    /// Lookups served from tier 2 — the compressed victim tier — at the
    /// cost of one codec decode and **zero** device reads. Each hit
    /// promotes the block back into tier 1, so this doubles as the
    /// decode-on-promote counter.
    pub tier2_hits: u64,
    /// Tier-1 victims whose stored (post-codec) bytes were demoted into
    /// tier 2 instead of being dropped.
    pub tier2_insertions: u64,
    /// Entries aged out of tier 2.
    pub tier2_evictions: u64,
    /// Resident bytes charged to tier 1 — decoded data blocks plus,
    /// when the victim tier is enabled, their retained stored copies
    /// (always `probation_bytes + protected_bytes`).
    pub data_bytes: u64,
    /// Bytes charged to the probation segment (decoded blocks plus any
    /// retained stored copies, like `data_bytes`).
    pub probation_bytes: u64,
    /// Bytes charged to the protected segment (decoded blocks plus any
    /// retained stored copies, like `data_bytes`).
    pub protected_bytes: u64,
    /// Pinned metadata bytes (zone maps, bloom filters) accounted to
    /// the cache but never evicted; kept separate so a one-shot sweep's
    /// pressure on the data population is visible on its own.
    pub meta_bytes: u64,
    /// On-disk (post-codec, compressed) bytes of the resident tier-1
    /// blocks. `data_bytes` is what the cache *spends* in memory;
    /// `disk_bytes` is what the same blocks cost on the SSD — the gap
    /// is the codec's memory amplification.
    pub disk_bytes: u64,
    /// Stored (post-codec) bytes resident in tier 2 — the victim tier
    /// charges compressed size, which is how it multiplies effective
    /// capacity by the codec's compression ratio.
    pub tier2_bytes: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of lookups served without a device read — from either
    /// tier (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            return 0.0;
        }
        self.no_device_hits() as f64 / total as f64
    }

    /// Total lookups against the cache, however they were served:
    /// tier-1 hits + tier-2 hits + misses (unit: ops).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.tier2_hits + self.misses
    }

    /// Blocks served without touching the device: tier-1 hits plus
    /// tier-2 (decode-only) hits (unit: ops).
    #[must_use]
    pub fn no_device_hits(&self) -> u64 {
        self.hits + self.tier2_hits
    }

    /// Difference between two snapshots (self - earlier). The resident
    /// byte gauges are carried over from `self` — they are levels, not
    /// counters.
    #[must_use]
    pub fn delta(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            insertions: self.insertions - earlier.insertions,
            evictions: self.evictions - earlier.evictions,
            promotions: self.promotions - earlier.promotions,
            demotions: self.demotions - earlier.demotions,
            rejected: self.rejected - earlier.rejected,
            tier2_hits: self.tier2_hits - earlier.tier2_hits,
            tier2_insertions: self.tier2_insertions - earlier.tier2_insertions,
            tier2_evictions: self.tier2_evictions - earlier.tier2_evictions,
            data_bytes: self.data_bytes,
            probation_bytes: self.probation_bytes,
            protected_bytes: self.protected_bytes,
            meta_bytes: self.meta_bytes,
            disk_bytes: self.disk_bytes,
            tier2_bytes: self.tier2_bytes,
        }
    }

    /// Combine snapshots of two *independent* caches (one shard's block
    /// cache each): every field adds — the counters count disjoint
    /// event streams and the byte gauges are disjoint resident sets, so
    /// their sum is the machine-wide cache footprint. Associative and
    /// commutative.
    #[must_use]
    pub fn merge(&self, other: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            promotions: self.promotions + other.promotions,
            demotions: self.demotions + other.demotions,
            rejected: self.rejected + other.rejected,
            tier2_hits: self.tier2_hits + other.tier2_hits,
            tier2_insertions: self.tier2_insertions + other.tier2_insertions,
            tier2_evictions: self.tier2_evictions + other.tier2_evictions,
            data_bytes: self.data_bytes + other.data_bytes,
            probation_bytes: self.probation_bytes + other.probation_bytes,
            protected_bytes: self.protected_bytes + other.protected_bytes,
            meta_bytes: self.meta_bytes + other.meta_bytes,
            disk_bytes: self.disk_bytes + other.disk_bytes,
            tier2_bytes: self.tier2_bytes + other.tier2_bytes,
        }
    }
}

/// Per-run (and cumulative) compression accounting for codec-bearing
/// block runs: raw (decoded, flat) versus stored (on-disk, post-codec)
/// data-block bytes, plus how many blocks each codec won. Lives here,
/// next to [`IoStats`] and [`CacheStatsSnapshot`], so benchmarks report
/// the CPU-vs-I/O compression trade alongside device statistics. The
/// codec-count fields name the stable codec ids of `masm-codec`
/// (0 = identity, 1 = delta, 2 = lz); this crate stays below the codec
/// crate in the dependency order, so the mapping is by convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionReport {
    /// Runs accounted.
    pub runs: u64,
    /// Data blocks accounted.
    pub blocks: u64,
    /// Raw (flat, pre-codec) bytes of those blocks.
    pub raw_bytes: u64,
    /// Stored (on-disk, post-codec) bytes of those blocks.
    pub stored_bytes: u64,
    /// Blocks stored uncompressed (codec id 0).
    pub blocks_identity: u64,
    /// Blocks stored delta+varint-coded (codec id 1).
    pub blocks_delta: u64,
    /// Blocks stored LZ-coded (codec id 2).
    pub blocks_lz: u64,
    /// Trial encodes the adaptive selector actually ran (writer-side
    /// CPU; zero for runs recovered from disk, whose writers are gone).
    pub codec_trials: u64,
    /// Trial encodes the sample-based selector *avoided* relative to
    /// the trial-everything-per-block baseline — the selector's CPU
    /// saving, reported by `fig13_cpu_cost`.
    pub codec_trials_saved: u64,
    /// LZ trials skipped because the byte-entropy probe classified the
    /// payload as incompressible (a subset of `codec_trials_saved`).
    pub lz_probes_skipped: u64,
}

impl CompressionReport {
    /// Fold another report into this one (cumulative engine statistics
    /// across every run built).
    pub fn absorb(&mut self, other: &CompressionReport) {
        self.runs += other.runs;
        self.blocks += other.blocks;
        self.raw_bytes += other.raw_bytes;
        self.stored_bytes += other.stored_bytes;
        self.blocks_identity += other.blocks_identity;
        self.blocks_delta += other.blocks_delta;
        self.blocks_lz += other.blocks_lz;
        self.codec_trials += other.codec_trials;
        self.codec_trials_saved += other.codec_trials_saved;
        self.lz_probes_skipped += other.lz_probes_skipped;
    }

    /// Stored/raw byte ratio (1.0 = no compression, smaller is better;
    /// 1.0 when nothing was accounted).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.stored_bytes as f64 / self.raw_bytes as f64
    }

    /// Fraction of raw bytes the codecs saved (`1 − ratio`, floored at
    /// zero for pathological growth).
    #[must_use]
    pub fn savings(&self) -> f64 {
        (1.0 - self.ratio()).max(0.0)
    }

    /// Difference between two cumulative reports (self - earlier): what
    /// was compressed in the interval.
    #[must_use]
    pub fn delta(&self, earlier: &CompressionReport) -> CompressionReport {
        CompressionReport {
            runs: self.runs - earlier.runs,
            blocks: self.blocks - earlier.blocks,
            raw_bytes: self.raw_bytes - earlier.raw_bytes,
            stored_bytes: self.stored_bytes - earlier.stored_bytes,
            blocks_identity: self.blocks_identity - earlier.blocks_identity,
            blocks_delta: self.blocks_delta - earlier.blocks_delta,
            blocks_lz: self.blocks_lz - earlier.blocks_lz,
            codec_trials: self.codec_trials - earlier.codec_trials,
            codec_trials_saved: self.codec_trials_saved - earlier.codec_trials_saved,
            lz_probes_skipped: self.lz_probes_skipped - earlier.lz_probes_skipped,
        }
    }
}

/// Outcome of one planned run merge (compaction or 2-pass merge): how
/// much of the work was *moved* (whole blocks relinked verbatim, CRC
/// checked but never decoded) versus *merged* (decoded and folded
/// through the k-way merge). Lives here, next to [`IoStats`], so
/// benchmarks report merge efficiency alongside device I/O.
///
/// The headline property: on fully disjoint inputs `bytes_decoded == 0`
/// — compaction cost is proportional to overlap, not input size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Input runs consumed by the merge.
    pub inputs: usize,
    /// Merge fan-in actually observed (inputs contributing blocks);
    /// also the prefetch depth the executor keeps in flight.
    pub fan_in: usize,
    /// Data blocks relinked verbatim, without decoding.
    pub blocks_moved: u64,
    /// Data blocks decoded and fed through the k-way merge.
    pub blocks_merged: u64,
    /// Encoded bytes of the moved blocks.
    pub bytes_moved: u64,
    /// Encoded bytes that had to be decoded (the overlap cost).
    pub bytes_decoded: u64,
    /// Entries written to the output run.
    pub entries_out: u64,
    /// Peak number of update records resident in the merge pipeline at
    /// once: the k-way heads, the pending fold record, and the output
    /// builder's open block. Streaming compaction (§3.3) bounds this by
    /// `fan_in + block_entries`, independent of `entries_out`; a
    /// materializing merge would make it `entries_out`.
    pub peak_merge_entries: u64,
}

impl MergeReport {
    /// Fold another report into this one (for cumulative engine
    /// statistics across many merges).
    pub fn absorb(&mut self, other: &MergeReport) {
        self.inputs += other.inputs;
        self.fan_in = self.fan_in.max(other.fan_in);
        self.blocks_moved += other.blocks_moved;
        self.blocks_merged += other.blocks_merged;
        self.bytes_moved += other.bytes_moved;
        self.bytes_decoded += other.bytes_decoded;
        self.entries_out += other.entries_out;
        self.peak_merge_entries = self.peak_merge_entries.max(other.peak_merge_entries);
    }

    /// Fraction of processed bytes that avoided decoding (1.0 = pure
    /// move, 0.0 = full decode; 0.0 when nothing was processed).
    #[must_use]
    pub fn move_ratio(&self) -> f64 {
        let total = self.bytes_moved + self.bytes_decoded;
        if total == 0 {
            return 0.0;
        }
        self.bytes_moved as f64 / total as f64
    }

    /// Difference between two cumulative reports (self - earlier): the
    /// merge work done in the interval. `fan_in` is carried from `self`
    /// — it is a high-water mark, not a counter.
    #[must_use]
    pub fn delta(&self, earlier: &MergeReport) -> MergeReport {
        MergeReport {
            inputs: self.inputs - earlier.inputs,
            fan_in: self.fan_in,
            blocks_moved: self.blocks_moved - earlier.blocks_moved,
            blocks_merged: self.blocks_merged - earlier.blocks_merged,
            bytes_moved: self.bytes_moved - earlier.bytes_moved,
            bytes_decoded: self.bytes_decoded - earlier.bytes_decoded,
            entries_out: self.entries_out - earlier.entries_out,
            // Like fan_in: a high-water mark, carried from `self`.
            peak_merge_entries: self.peak_merge_entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::AccessKind;

    #[test]
    fn record_read_and_write() {
        let mut s = IoStats::default();
        s.record(AccessKind::Read, 4096, true, 100, 0, 0);
        s.record(AccessKind::Write, 8192, false, 200, 4096, 0);
        let snap = s.snapshot();
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.bytes_read, 4096);
        assert_eq!(snap.bytes_written, 8192);
        assert_eq!(snap.sequential_ops, 1);
        assert_eq!(snap.random_ops, 1);
        assert_eq!(snap.random_writes, 1);
        assert_eq!(snap.busy_ns, 300);
    }

    #[test]
    fn wear_tracks_erase_blocks() {
        let mut s = IoStats::default();
        let blk = 256 * 1024;
        // Two writes to the same block, one spanning two blocks.
        s.record(AccessKind::Write, 4096, true, 1, 0, blk);
        s.record(AccessKind::Write, 4096, true, 1, 4096, blk);
        s.record(AccessKind::Write, blk, true, 1, blk - 100, blk);
        let snap = s.snapshot();
        // Block 0 written by all three ops (the span starts inside it);
        // block 1 only by the spanning op.
        assert_eq!(snap.touched_blocks, 2);
        assert_eq!(snap.max_block_wear, 3);
    }

    #[test]
    fn wear_stats_match_raw_histogram() {
        let mut s = IoStats::default();
        assert_eq!(s.wear_stats(), WearStats::default(), "idle is all-zero");
        let blk = 4096;
        // Counts per block: {0: 3, 1: 1} → mean 2, σ 1, cv 0.5.
        for _ in 0..3 {
            s.record(AccessKind::Write, 100, true, 1, 0, blk);
        }
        s.record(AccessKind::Write, 100, true, 1, blk, blk);
        let w = s.wear_stats();
        assert_eq!(w.max_writes_per_block, 3);
        assert_eq!(w.blocks_touched, 2);
        assert!((w.mean_writes_per_block - 2.0).abs() < 1e-9);
        assert!((w.cv - 0.5).abs() < 1e-9);
        // The snapshot's wear fields come from the same aggregates.
        let snap = s.snapshot();
        assert_eq!(snap.max_block_wear, 3);
        assert_eq!(snap.touched_blocks, 2);
    }

    #[test]
    fn even_wear_has_zero_cv() {
        let mut s = IoStats::default();
        let blk = 4096;
        for i in 0..8u64 {
            s.record(AccessKind::Write, 100, true, 1, i * blk, blk);
        }
        let w = s.wear_stats();
        assert_eq!(w.max_writes_per_block, 1);
        assert_eq!(w.blocks_touched, 8);
        assert!(w.cv.abs() < 1e-9, "perfectly even wear");
    }

    #[test]
    fn delta_subtracts() {
        let mut s = IoStats::default();
        s.record(AccessKind::Read, 10, true, 5, 0, 0);
        let a = s.snapshot();
        s.record(AccessKind::Read, 30, true, 5, 0, 0);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 1);
        assert_eq!(d.bytes_read, 30);
    }

    #[test]
    fn cache_stats_roundtrip() {
        let s = CacheStats::default();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        s.record_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.insertions, 1);
        assert_eq!(snap.evictions, 1);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let later = {
            s.record_miss();
            s.snapshot()
        };
        assert_eq!(later.delta(&snap).misses, 1);
        s.reset();
        assert_eq!(s.snapshot(), CacheStatsSnapshot::default());
        assert_eq!(CacheStatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn compression_report_absorb_ratio_and_savings() {
        let mut total = CompressionReport::default();
        assert_eq!(total.ratio(), 1.0, "idle report is neutral");
        assert_eq!(total.savings(), 0.0);
        total.absorb(&CompressionReport {
            runs: 1,
            blocks: 4,
            raw_bytes: 1000,
            stored_bytes: 600,
            blocks_identity: 1,
            blocks_delta: 2,
            blocks_lz: 1,
            codec_trials: 4,
            codec_trials_saved: 4,
            lz_probes_skipped: 1,
        });
        total.absorb(&CompressionReport {
            runs: 1,
            blocks: 2,
            raw_bytes: 1000,
            stored_bytes: 400,
            blocks_lz: 2,
            ..CompressionReport::default()
        });
        assert_eq!(total.runs, 2);
        assert_eq!(total.blocks, 6);
        assert_eq!(total.blocks_lz, 3);
        assert_eq!(total.codec_trials, 4);
        assert_eq!(total.codec_trials_saved, 4);
        assert_eq!(total.lz_probes_skipped, 1);
        assert!((total.ratio() - 0.5).abs() < 1e-9);
        assert!((total.savings() - 0.5).abs() < 1e-9);
        let grown = CompressionReport {
            raw_bytes: 100,
            stored_bytes: 120,
            ..CompressionReport::default()
        };
        assert_eq!(grown.savings(), 0.0, "growth floors at zero savings");
    }

    #[test]
    fn merge_report_absorb_and_ratio() {
        let mut total = MergeReport::default();
        assert_eq!(total.move_ratio(), 0.0);
        total.absorb(&MergeReport {
            inputs: 2,
            fan_in: 2,
            blocks_moved: 3,
            blocks_merged: 1,
            bytes_moved: 300,
            bytes_decoded: 100,
            entries_out: 40,
            peak_merge_entries: 7,
        });
        total.absorb(&MergeReport {
            inputs: 3,
            fan_in: 3,
            blocks_moved: 1,
            blocks_merged: 0,
            bytes_moved: 100,
            bytes_decoded: 0,
            entries_out: 10,
            peak_merge_entries: 3,
        });
        assert_eq!(total.inputs, 5);
        assert_eq!(total.fan_in, 3);
        assert_eq!(total.blocks_moved, 4);
        assert_eq!(total.entries_out, 50);
        assert!((total.move_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn write_amplification_ratio() {
        let mut s = IoStats::default();
        s.record(AccessKind::Write, 2000, true, 1, 0, 0);
        s.record(AccessKind::Write, 2000, true, 1, 2000, 0);
        assert!((s.snapshot().write_amplification(1000) - 4.0).abs() < 1e-9);
        assert_eq!(s.snapshot().write_amplification(0), 0.0);
    }
}
