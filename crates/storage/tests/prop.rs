//! Property-based tests for the storage substrate: the simulation must
//! never corrupt data and its virtual timing must obey basic physics.

use proptest::prelude::*;

use masm_storage::{DeviceProfile, IoSession, SimClock, SimDevice};

fn write_op() -> impl Strategy<Value = (u64, Vec<u8>)> {
    (
        0u64..64 * 1024,
        proptest::collection::vec(any::<u8>(), 1..512),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// A device is exactly a byte array with timing: after any write
    /// sequence, reads return what the last write to each byte stored.
    #[test]
    fn writes_then_reads_match_model(ops in proptest::collection::vec(write_op(), 1..40)) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock);
        let mut model = vec![0u8; 96 * 1024];
        let mut t = 0;
        for (off, data) in &ops {
            t = dev.write_at(t, *off, data).unwrap();
            let end = *off as usize + data.len();
            if end > model.len() {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
        }
        let len = dev.len();
        let (got, _) = dev.read_at(t, 0, len).unwrap();
        prop_assert_eq!(&got[..], &model[..len as usize]);
    }

    /// Completions are monotone in submission time, and a device never
    /// finishes an op before it was submitted.
    #[test]
    fn timing_is_physical(ops in proptest::collection::vec(write_op(), 1..40)) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock);
        let mut t = 0u64;
        for (off, data) in &ops {
            let end = dev.write_at(t, *off, data).unwrap();
            prop_assert!(end > t, "completion must be after submission");
            t = end;
        }
    }

    /// Overlapped two-device work takes at least as long as the slower
    /// device alone and no longer than the serial sum.
    #[test]
    fn overlap_is_bounded(lens in proptest::collection::vec(1024u64..256*1024, 1..10)) {
        let clock = SimClock::new();
        let hdd = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let total: u64 = lens.iter().sum();
        hdd.write_at(0, 0, &vec![0u8; total as usize]).unwrap();
        ssd.write_at(0, 0, &vec![0u8; total as usize]).unwrap();
        let start = hdd.busy_until().max(ssd.busy_until());
        hdd.reset_stats();
        ssd.reset_stats();

        let mut session = IoSession::at(clock, start);
        let mut off = 0u64;
        for len in &lens {
            let ticket = session.read_async(&ssd, off, *len).unwrap();
            session.read(&hdd, off, *len).unwrap();
            session.wait(ticket);
            off += len;
        }
        let elapsed = session.elapsed_since(start);
        let hdd_busy = hdd.stats().busy_ns;
        let ssd_busy = ssd.stats().busy_ns;
        prop_assert!(elapsed >= hdd_busy.max(ssd_busy));
        // Allow the QD1 latency tail of the final SSD wait.
        prop_assert!(
            elapsed <= hdd_busy + ssd_busy + 100_000,
            "elapsed {} exceeds serial sum {} + tail",
            elapsed,
            hdd_busy + ssd_busy
        );
    }

    /// Sequential continuation is strictly cheaper than a random access
    /// of the same size on a disk.
    #[test]
    fn sequential_beats_random(len in 512u64..64*1024) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock);
        let data = vec![0u8; len as usize];
        let t1 = dev.write_at(0, 0, &data).unwrap();
        // Sequential continuation.
        let t2 = dev.write_at(t1, len, &data).unwrap();
        // Random jump far away.
        let t3 = dev.write_at(t2, 10 * 1024 * 1024, &data).unwrap();
        let seq = t2 - t1;
        let rand = t3 - t2;
        prop_assert!(rand > seq * 2, "rand {} seq {}", rand, seq);
    }
}
