//! Property tests for the codec crate in isolation: `decode ∘ encode`
//! is the identity for every codec over random flat entry blocks (and,
//! for the byte codecs, over arbitrary byte strings), and the adaptive
//! selector's winner always round-trips under its recorded id.

use proptest::prelude::*;

use masm_codec::{codec_for, encode_with, Codec, CodecChoice, Delta, Identity, Lz};

/// Build a flat entry block (the layout in the crate docs) from raw
/// `(key, ts, value)` triples, key-sorted.
fn flat_block(mut raw: Vec<(u64, u64, Vec<u8>)>) -> Vec<u8> {
    raw.sort_by_key(|e| (e.0, e.1));
    let mut out = Vec::new();
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    for (key, ts, value) in raw {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&ts.to_le_bytes());
        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
        out.extend_from_slice(&value);
    }
    out
}

fn entry_batches() -> impl Strategy<Value = Vec<(u64, u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..48),
        ),
        0..120,
    )
}

proptest! {
    /// Every codec round-trips every flat block built from random entry
    /// batches, within its stated worst-case bound.
    #[test]
    fn every_codec_roundtrips_flat_blocks(raw in entry_batches()) {
        let flat = flat_block(raw);
        for codec in [&Identity as &dyn Codec, &Delta, &Lz] {
            let enc = codec.encode(&flat).unwrap();
            prop_assert!(enc.len() <= codec.max_compressed_len(flat.len()));
            prop_assert_eq!(
                codec.decode(&enc, flat.len()).unwrap(),
                flat.clone(),
                "{} round-trip",
                codec.name()
            );
        }
    }

    /// The byte codecs (identity, lz) accept *arbitrary* bytes, not
    /// just flat blocks, and still round-trip.
    #[test]
    fn byte_codecs_roundtrip_arbitrary_bytes(raw in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for codec in [&Identity as &dyn Codec, &Lz] {
            let enc = codec.encode(&raw).unwrap();
            prop_assert!(enc.len() <= codec.max_compressed_len(raw.len()));
            prop_assert_eq!(codec.decode(&enc, raw.len()).unwrap(), raw.clone());
        }
    }

    /// Adaptive selection never grows a block past identity, and its
    /// winner decodes under the recorded id.
    #[test]
    fn adaptive_winner_roundtrips(raw in entry_batches()) {
        let flat = flat_block(raw);
        let (id, enc) = encode_with(CodecChoice::Adaptive, &flat);
        prop_assert!(enc.len() <= flat.len());
        let codec = codec_for(id).unwrap();
        prop_assert_eq!(codec.decode(&enc, flat.len()).unwrap(), flat);
    }

    /// LZ decode never panics on arbitrary (mostly malformed) streams —
    /// it errors or round-trips, and on success honors `raw_len`.
    #[test]
    fn lz_decode_is_total_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        raw_len in 0usize..1024,
    ) {
        if let Ok(out) = Lz.decode(&garbage, raw_len) {
            prop_assert_eq!(out.len(), raw_len);
        }
    }

    /// Delta decode never panics on arbitrary streams either.
    #[test]
    fn delta_decode_is_total_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        raw_len in 0usize..1024,
    ) {
        if let Ok(out) = Delta.decode(&garbage, raw_len) {
            prop_assert_eq!(out.len(), raw_len);
        }
    }
}
