//! # masm-codec — pluggable per-block compression codecs
//!
//! MaSM caches updates on the SSD precisely because flash capacity is
//! scarce relative to the warehouse; compressing the cached runs
//! multiplies the effective update cache and cuts merge-read bandwidth.
//! This crate provides the codec stage the block-run format
//! (`masm-blockrun`) applies to every data block before it reaches the
//! device:
//!
//! * [`Identity`] — store the raw bytes unchanged (id 0).
//! * [`Delta`] — the delta+varint entry encoding the block format used
//!   before this stage existed, extracted into a byte codec: it parses
//!   the *flat* block layout (see below) and re-encodes keys as varint
//!   deltas against the previous key (id 1).
//! * [`Lz`] — an LZ-style byte codec (greedy hash-chain match finder,
//!   LZ4-like token stream), dependency-free and deterministic (id 2).
//! * [`CodecChoice::Adaptive`] — not a codec but a *selector*:
//!   [`encode_with`] trial-encodes the block with every codec and keeps
//!   the smallest output, recording the winning codec id per block.
//!
//! The **flat block layout** all codecs operate on is the uncompressed
//! representation of one data block:
//!
//! ```text
//! ┌────────────┬───────────────────────────────────────────────┐
//! │ count: u32 │ entry × count                                 │
//! ├────────────┴───────────────────────────────────────────────┤
//! │ entry := key: u64 LE │ ts: u64 LE │ len: u32 LE │ value…   │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! Codec ids are part of the on-disk format: once written they must
//! never be reassigned. [`codec_for`] resolves an id back to its codec;
//! an unknown id is a typed error at the call site, never a panic —
//! forward compatibility for runs written by newer builds.

pub mod delta;
pub mod lz;
pub mod varint;

use std::fmt;

pub use delta::Delta;
pub use lz::Lz;

/// Codec id of [`Identity`] (raw bytes stored unchanged).
pub const IDENTITY: u8 = 0;
/// Codec id of [`Delta`] (delta+varint re-encoding of the flat layout).
pub const DELTA: u8 = 1;
/// Codec id of [`Lz`] (LZ-style byte compression).
pub const LZ: u8 = 2;
/// Footer marker for adaptive selection. Never appears as a per-block
/// codec id — each block records the codec that actually won.
pub const ADAPTIVE: u8 = 3;

/// Errors from encoding or decoding a block through a codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input bytes violate the codec's format.
    Malformed(&'static str),
    /// Decoding produced a different byte count than the recorded raw
    /// length — truncation or corruption that slipped past the caller.
    LengthMismatch {
        /// Raw length recorded in the block's metadata.
        expected: usize,
        /// Length the decoder actually produced.
        got: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed(what) => write!(f, "malformed codec input: {what}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "decoded length {got} != recorded raw length {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias.
pub type CodecResult<T> = Result<T, CodecError>;

/// One per-block compression codec.
///
/// `decode ∘ encode` must be the identity on every input `encode`
/// accepts. Codecs are stateless and shared (`&'static dyn Codec` via
/// [`codec_for`]).
pub trait Codec: Send + Sync {
    /// Stable on-disk id of this codec.
    fn id(&self) -> u8;
    /// Human-readable name (benchmark labels).
    fn name(&self) -> &'static str;
    /// Compress `raw` (a flat block). Fails only when the codec needs
    /// structure the input lacks (e.g. [`Delta`] on a non-flat block).
    fn encode(&self, raw: &[u8]) -> CodecResult<Vec<u8>>;
    /// Decompress `encoded`, validating the output against `raw_len`
    /// (the raw length recorded in the block's zone-map entry).
    fn decode(&self, encoded: &[u8], raw_len: usize) -> CodecResult<Vec<u8>>;
    /// Worst-case encoded size for a `raw_len`-byte input — the bound a
    /// caller can use to pre-size output buffers.
    fn max_compressed_len(&self, raw_len: usize) -> usize;
}

/// The identity codec: bytes pass through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Codec for Identity {
    fn id(&self) -> u8 {
        IDENTITY
    }

    fn name(&self) -> &'static str {
        "identity"
    }

    fn encode(&self, raw: &[u8]) -> CodecResult<Vec<u8>> {
        Ok(raw.to_vec())
    }

    fn decode(&self, encoded: &[u8], raw_len: usize) -> CodecResult<Vec<u8>> {
        if encoded.len() != raw_len {
            return Err(CodecError::LengthMismatch {
                expected: raw_len,
                got: encoded.len(),
            });
        }
        Ok(encoded.to_vec())
    }

    fn max_compressed_len(&self, raw_len: usize) -> usize {
        raw_len
    }
}

/// Resolve an on-disk codec id. `None` for unknown ids — callers turn
/// that into their own typed error (the block-run reader's
/// `UnknownCodec`), never a panic.
pub fn codec_for(id: u8) -> Option<&'static dyn Codec> {
    match id {
        IDENTITY => Some(&Identity),
        DELTA => Some(&Delta),
        LZ => Some(&Lz),
        _ => None,
    }
}

/// The codec policy a run writer is configured with. Fixed choices
/// always use that codec; [`CodecChoice::Adaptive`] trial-encodes each
/// block and keeps the smallest output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CodecChoice {
    /// No compression beyond the flat layout.
    Identity,
    /// Delta+varint entry encoding (the pre-codec block format).
    #[default]
    Delta,
    /// LZ-style byte compression.
    Lz,
    /// Per-block winner of an identity/delta/lz trial encode.
    Adaptive,
}

impl CodecChoice {
    /// Every choice, in id order (benchmark sweeps).
    pub const ALL: [CodecChoice; 4] = [
        CodecChoice::Identity,
        CodecChoice::Delta,
        CodecChoice::Lz,
        CodecChoice::Adaptive,
    ];

    /// Stable on-disk encoding (run footers record the writer's choice).
    pub fn as_id(self) -> u8 {
        match self {
            CodecChoice::Identity => IDENTITY,
            CodecChoice::Delta => DELTA,
            CodecChoice::Lz => LZ,
            CodecChoice::Adaptive => ADAPTIVE,
        }
    }

    /// Inverse of [`CodecChoice::as_id`]; `None` for unknown ids.
    pub fn from_id(id: u8) -> Option<CodecChoice> {
        match id {
            IDENTITY => Some(CodecChoice::Identity),
            DELTA => Some(CodecChoice::Delta),
            LZ => Some(CodecChoice::Lz),
            ADAPTIVE => Some(CodecChoice::Adaptive),
            _ => None,
        }
    }

    /// Benchmark/report label.
    pub fn name(self) -> &'static str {
        match self {
            CodecChoice::Identity => "identity",
            CodecChoice::Delta => "delta",
            CodecChoice::Lz => "lz",
            CodecChoice::Adaptive => "adaptive",
        }
    }
}

/// Encode one flat block under `choice`; returns the id of the codec
/// actually used and its output.
///
/// Fixed choices use their codec unconditionally (so a benchmark row
/// labelled `lz` really measures LZ, even when it loses). A fixed codec
/// that *fails* on the input (e.g. [`Delta`] handed bytes that are not
/// a flat block) falls back to identity — safe, because the block
/// records the id that was actually stored. `Adaptive` keeps the
/// smallest of the three outputs, prefering the cheaper-to-decode codec
/// on ties.
pub fn encode_with(choice: CodecChoice, raw: &[u8]) -> (u8, Vec<u8>) {
    match choice {
        CodecChoice::Identity => (IDENTITY, raw.to_vec()),
        CodecChoice::Delta => match Delta.encode(raw) {
            Ok(enc) => (DELTA, enc),
            Err(_) => (IDENTITY, raw.to_vec()),
        },
        CodecChoice::Lz => match Lz.encode(raw) {
            Ok(enc) => (LZ, enc),
            Err(_) => (IDENTITY, raw.to_vec()),
        },
        CodecChoice::Adaptive => best_trial(raw, true).unwrap_or_else(|| (IDENTITY, raw.to_vec())),
    }
}

/// The best-of trial encode shared by [`encode_with`]'s `Adaptive` arm
/// and the sample blocks of [`AdaptiveSelector`]: try delta (and LZ
/// unless `try_lz` is false), keeping the smallest output strictly
/// below the identity baseline. `None` means identity wins — the
/// identity copy is only materialized if no codec beats it.
fn best_trial(raw: &[u8], try_lz: bool) -> Option<(u8, Vec<u8>)> {
    let mut best: Option<(u8, Vec<u8>)> = None;
    for codec in [&Delta as &dyn Codec, &Lz as &dyn Codec] {
        if codec.id() == LZ && !try_lz {
            continue;
        }
        if let Ok(enc) = codec.encode(raw) {
            let best_len = best.as_ref().map_or(raw.len(), |(_, b)| b.len());
            if enc.len() < best_len {
                best = Some((codec.id(), enc));
            }
        }
    }
    best
}

/// Shannon entropy of the byte distribution, in bits per byte, from a
/// strided sample of at most ~1 KB — the cheap probe the sample-based
/// selector uses to skip LZ trials on incompressible payloads. 0.0 for
/// empty input; 8.0 is incompressible noise.
pub fn entropy_bits_per_byte(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let stride = (bytes.len() / 1024).max(1);
    let mut hist = [0u32; 256];
    let mut n = 0u64;
    let mut i = 0;
    while i < bytes.len() {
        hist[bytes[i] as usize] += 1;
        n += 1;
        i += stride;
    }
    let n = n as f64;
    let mut h = 0.0;
    for c in hist {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// Byte-entropy threshold above which the selector's probe classifies a
/// block as incompressible and skips the LZ trial. LZ needs repeats; a
/// near-uniform byte histogram (≥ 7.2 of the possible 8 bits) means the
/// trial would almost surely lose to the delta candidate or identity.
pub const LZ_ENTROPY_SKIP_BITS: f64 = 7.2;

/// How often the sample-based selector re-runs a full trial encode
/// under [`CodecChoice::Adaptive`]: once per this many blocks (the
/// first block of every window decides for the rest).
pub const DEFAULT_SAMPLE_EVERY: usize = 16;

/// Writer-side CPU accounting of an [`AdaptiveSelector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectorStats {
    /// Codec encodes actually executed (trials on sample blocks plus
    /// the one targeted encode per reuse block).
    pub trial_encodes: u64,
    /// Encodes avoided relative to the trial-everything-per-block
    /// baseline (two trials — delta and LZ — per block).
    pub trials_saved: u64,
    /// LZ trials skipped because the entropy probe classified the block
    /// as incompressible (a subset of `trials_saved`).
    pub lz_skipped: u64,
}

/// Sample-based per-run codec selection: decide from the first block of
/// every [`DEFAULT_SAMPLE_EVERY`]-block window, reuse the winner for
/// the rest.
///
/// The naive [`CodecChoice::Adaptive`] policy ([`encode_with`])
/// trial-encodes *every* codec on *every* block — 3× the encode CPU of
/// a fixed choice. Run payloads are homogeneous in practice, so this
/// selector trial-encodes only the first block of each window (with a
/// byte-entropy probe that skips the LZ trial outright on
/// incompressible payloads — [`LZ_ENTROPY_SKIP_BITS`]) and re-encodes
/// the following blocks with the cached winner alone. Correctness
/// guard: a reuse block whose winner output fails or comes out at least
/// as large as the raw bytes falls back to identity, so the per-block
/// "never loses to identity" invariant survives sampling.
///
/// Fixed (non-adaptive) choices pass straight through to
/// [`encode_with`] and record no statistics.
#[derive(Debug)]
pub struct AdaptiveSelector {
    choice: CodecChoice,
    sample_every: usize,
    seen: usize,
    winner: u8,
    stats: SelectorStats,
}

impl AdaptiveSelector {
    /// A selector for `choice` with the default sampling window.
    pub fn new(choice: CodecChoice) -> Self {
        AdaptiveSelector {
            choice,
            sample_every: DEFAULT_SAMPLE_EVERY,
            seen: 0,
            winner: IDENTITY,
            stats: SelectorStats::default(),
        }
    }

    /// Override the sampling window (1 = full per-block trials, i.e.
    /// the naive adaptive behavior with the entropy probe added).
    pub fn with_sample_every(mut self, n: usize) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// Writer-side CPU accounting so far.
    pub fn stats(&self) -> SelectorStats {
        self.stats
    }

    /// Encode one flat block; returns the id of the codec actually used
    /// and its output, exactly like [`encode_with`].
    pub fn encode_block(&mut self, raw: &[u8]) -> (u8, Vec<u8>) {
        if self.choice != CodecChoice::Adaptive {
            return encode_with(self.choice, raw);
        }
        let sample = self.seen.is_multiple_of(self.sample_every);
        self.seen += 1;
        if sample {
            // Full selection, minus LZ when the probe says noise.
            let try_lz = entropy_bits_per_byte(raw) < LZ_ENTROPY_SKIP_BITS;
            if try_lz {
                self.stats.trial_encodes += 2;
            } else {
                self.stats.trial_encodes += 1;
                self.stats.lz_skipped += 1;
                self.stats.trials_saved += 1;
            }
            let (id, out) = best_trial(raw, try_lz).unwrap_or_else(|| (IDENTITY, raw.to_vec()));
            self.winner = id;
            (id, out)
        } else if self.winner == IDENTITY {
            // Cached winner is "don't bother": zero encodes this block.
            self.stats.trials_saved += 2;
            (IDENTITY, raw.to_vec())
        } else {
            // One targeted encode with the cached winner instead of two
            // trials; identity fallback keeps the never-grows guarantee.
            self.stats.trial_encodes += 1;
            self.stats.trials_saved += 1;
            let codec = codec_for(self.winner).expect("winner is a known codec");
            match codec.encode(raw) {
                Ok(enc) if enc.len() < raw.len() => (self.winner, enc),
                _ => (IDENTITY, raw.to_vec()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_resolvable() {
        assert_eq!(codec_for(IDENTITY).unwrap().id(), IDENTITY);
        assert_eq!(codec_for(DELTA).unwrap().id(), DELTA);
        assert_eq!(codec_for(LZ).unwrap().id(), LZ);
        assert!(codec_for(ADAPTIVE).is_none(), "adaptive is not a codec");
        assert!(codec_for(0xAA).is_none());
        for c in CodecChoice::ALL {
            assert_eq!(CodecChoice::from_id(c.as_id()), Some(c));
        }
        assert_eq!(CodecChoice::from_id(200), None);
    }

    #[test]
    fn identity_roundtrip_and_length_check() {
        let raw = b"hello block".to_vec();
        let enc = Identity.encode(&raw).unwrap();
        assert_eq!(enc, raw);
        assert_eq!(Identity.decode(&enc, raw.len()).unwrap(), raw);
        assert!(matches!(
            Identity.decode(&enc, raw.len() + 1),
            Err(CodecError::LengthMismatch { .. })
        ));
        assert_eq!(Identity.max_compressed_len(100), 100);
    }

    #[test]
    fn adaptive_picks_smallest() {
        // A highly repetitive byte string: LZ must beat identity, and
        // the winner round-trips under its recorded id.
        let raw: Vec<u8> = b"abcdefgh".repeat(100);
        let (id, enc) = encode_with(CodecChoice::Adaptive, &raw);
        assert!(enc.len() < raw.len(), "{} >= {}", enc.len(), raw.len());
        let codec = codec_for(id).unwrap();
        assert_eq!(codec.decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn adaptive_never_loses_to_identity() {
        // Incompressible pseudo-random bytes: adaptive must fall back
        // to identity rather than store a grown output.
        let mut x = 0x9E3779B97F4A7C15u64;
        let raw: Vec<u8> = (0..512)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let (id, enc) = encode_with(CodecChoice::Adaptive, &raw);
        assert!(enc.len() <= raw.len());
        let codec = codec_for(id).unwrap();
        assert_eq!(codec.decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn fixed_choice_falls_back_to_identity_on_malformed_input() {
        // Bytes that are not a flat block: Delta cannot parse them, so
        // the stored block must be identity-coded (and say so).
        let raw = vec![0xFFu8; 3];
        let (id, enc) = encode_with(CodecChoice::Delta, &raw);
        assert_eq!(id, IDENTITY);
        assert_eq!(enc, raw);
    }

    fn noise(len: usize) -> Vec<u8> {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn entropy_probe_separates_noise_from_structure() {
        assert_eq!(entropy_bits_per_byte(&[]), 0.0);
        assert!(entropy_bits_per_byte(&[7u8; 4096]) < 0.1, "constant bytes");
        let structured: Vec<u8> = b"abcd".repeat(512);
        assert!(entropy_bits_per_byte(&structured) < 3.0);
        assert!(
            entropy_bits_per_byte(&noise(4096)) > LZ_ENTROPY_SKIP_BITS,
            "xorshift noise reads as incompressible"
        );
    }

    #[test]
    fn sampled_selector_reuses_winner_and_saves_trials() {
        let raw: Vec<u8> = b"abcdefgh".repeat(100);
        let mut sel = AdaptiveSelector::new(CodecChoice::Adaptive).with_sample_every(8);
        for i in 0..16 {
            let (id, enc) = sel.encode_block(&raw);
            assert!(enc.len() < raw.len(), "block {i} compressed");
            let back = codec_for(id).unwrap().decode(&enc, raw.len()).unwrap();
            assert_eq!(back, raw, "block {i} round-trips under recorded id");
        }
        let s = sel.stats();
        // Two sample blocks ran (up to) two trials; fourteen reuse
        // blocks ran one targeted encode each.
        assert!(s.trial_encodes <= 2 * 2 + 14);
        assert_eq!(
            s.trial_encodes + s.trials_saved,
            2 * 16,
            "every block accounts for the 2-trial baseline"
        );
        assert!(
            s.trials_saved >= 14,
            "sampling saved at least one per reuse"
        );
    }

    #[test]
    fn sampled_selector_skips_lz_on_noise_and_never_grows() {
        let raw = noise(2048);
        let mut sel = AdaptiveSelector::new(CodecChoice::Adaptive).with_sample_every(4);
        for _ in 0..8 {
            let (id, enc) = sel.encode_block(&raw);
            assert!(enc.len() <= raw.len(), "never grows");
            let back = codec_for(id).unwrap().decode(&enc, raw.len()).unwrap();
            assert_eq!(back, raw);
        }
        let s = sel.stats();
        assert!(s.lz_skipped >= 2, "probe skipped LZ on both sample blocks");
        assert!(s.trials_saved >= s.lz_skipped);
    }

    #[test]
    fn fixed_choice_selector_matches_encode_with_and_counts_nothing() {
        let raw: Vec<u8> = b"abcdefgh".repeat(64);
        for choice in [CodecChoice::Identity, CodecChoice::Delta, CodecChoice::Lz] {
            let mut sel = AdaptiveSelector::new(choice);
            let (id, enc) = sel.encode_block(&raw);
            assert_eq!((id, enc), encode_with(choice, &raw));
            assert_eq!(sel.stats(), SelectorStats::default());
        }
    }

    #[test]
    fn codec_error_display() {
        assert!(CodecError::Malformed("x").to_string().contains("x"));
        assert!(CodecError::LengthMismatch {
            expected: 3,
            got: 4
        }
        .to_string()
        .contains("3"));
    }
}
