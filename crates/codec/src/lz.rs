//! An LZ-style byte codec: greedy hash-chain match finder, LZ4-like
//! token stream. Dependency-free, deterministic, and offline-safe (no
//! allocation beyond the output and two bounded index tables).
//!
//! ## Encoded stream
//!
//! A sequence of *(literals, match)* pairs, LZ4-style:
//!
//! ```text
//! token: u8 ─ high nibble = literal count  (15 ⇒ +255-continued bytes)
//!             low  nibble = match len − 4  (15 ⇒ +255-continued bytes)
//! literal bytes…
//! offset: u16 LE (1‥65535, distance back into the output)
//! match-length continuation bytes…
//! ```
//!
//! The final pair carries literals only: the stream simply ends after
//! them (no offset follows). Matches may overlap their own output
//! (offset < length), which is how run-length-style repetition
//! compresses; the decoder copies byte-by-byte to honor that.
//!
//! ## Match finder
//!
//! Greedy with a hash-chain history: 4-byte prefixes hash into a table
//! of most-recent positions; chains link earlier occurrences. The chain
//! walk is depth-limited, so encoding is O(n · depth) worst case. Blocks
//! are ≤ 64 KB in practice, comfortably inside the u16 offset window.

use crate::{Codec, CodecError, CodecResult, LZ};

const MIN_MATCH: usize = 4;
const MAX_OFFSET: usize = u16::MAX as usize;
/// Chain positions examined per match attempt.
const CHAIN_DEPTH: usize = 32;
/// Sentinel for "no position" in the hash/chain tables.
const NIL: u32 = u32::MAX;

fn hash4(bytes: &[u8]) -> u32 {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    v.wrapping_mul(2_654_435_761)
}

/// 255-continued length extension (LZ4's scheme).
fn put_len_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

fn get_len_ext(buf: &[u8], pos: &mut usize) -> CodecResult<usize> {
    let mut total = 0usize;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or(CodecError::Malformed("length extension truncated"))?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: usize, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    debug_assert!((1..=MAX_OFFSET).contains(&offset));
    let ml = match_len - MIN_MATCH;
    let token = ((literals.len().min(15) as u8) << 4) | ml.min(15) as u8;
    out.push(token);
    if literals.len() >= 15 {
        put_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if ml >= 15 {
        put_len_ext(out, ml - 15);
    }
}

fn emit_final_literals(out: &mut Vec<u8>, literals: &[u8]) {
    if literals.is_empty() {
        return;
    }
    out.push((literals.len().min(15) as u8) << 4);
    if literals.len() >= 15 {
        put_len_ext(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
}

/// The LZ codec; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lz;

impl Codec for Lz {
    fn id(&self) -> u8 {
        LZ
    }

    fn name(&self) -> &'static str {
        "lz"
    }

    /// Total: every byte string encodes (worst case, all literals).
    fn encode(&self, raw: &[u8]) -> CodecResult<Vec<u8>> {
        let n = raw.len();
        let mut out = Vec::with_capacity(n / 2 + 16);
        if n < MIN_MATCH {
            emit_final_literals(&mut out, raw);
            return Ok(out);
        }
        // Size the hash table to the input: small blocks get small
        // tables (encode is called once per ≤64 KB block, so per-call
        // table setup must stay proportional).
        let hash_bits = (usize::BITS - n.next_power_of_two().leading_zeros() - 1).clamp(8, 15);
        let hash_shift = 32 - hash_bits;
        let mut head = vec![NIL; 1usize << hash_bits];
        let mut chain = vec![NIL; n];

        let insert = |head: &mut Vec<u32>, chain: &mut Vec<u32>, pos: usize| {
            let h = (hash4(&raw[pos..]) >> hash_shift) as usize;
            chain[pos] = head[h];
            head[h] = pos as u32;
        };

        let mut anchor = 0usize;
        let mut i = 0usize;
        while i + MIN_MATCH <= n {
            // Walk the chain for the longest match ending before `i`.
            let h = (hash4(&raw[i..]) >> hash_shift) as usize;
            let mut cand = head[h];
            let mut best_len = 0usize;
            let mut best_off = 0usize;
            let mut depth = 0usize;
            while cand != NIL && depth < CHAIN_DEPTH {
                let c = cand as usize;
                if i - c > MAX_OFFSET {
                    break; // older positions are even farther away
                }
                let mut l = 0usize;
                while i + l < n && raw[c + l] == raw[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - c;
                }
                cand = chain[c];
                depth += 1;
            }

            if best_len >= MIN_MATCH {
                emit_sequence(&mut out, &raw[anchor..i], best_off, best_len);
                let end = i + best_len;
                // Index the covered positions so later matches can
                // reference them.
                while i < end && i + MIN_MATCH <= n {
                    insert(&mut head, &mut chain, i);
                    i += 1;
                }
                i = end;
                anchor = end;
            } else {
                insert(&mut head, &mut chain, i);
                i += 1;
            }
        }
        emit_final_literals(&mut out, &raw[anchor..]);
        Ok(out)
    }

    fn decode(&self, encoded: &[u8], raw_len: usize) -> CodecResult<Vec<u8>> {
        let mut out = Vec::with_capacity(raw_len);
        let mut pos = 0usize;
        while pos < encoded.len() {
            let token = encoded[pos];
            pos += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                lit_len += get_len_ext(encoded, &mut pos)?;
            }
            if encoded.len() < pos + lit_len {
                return Err(CodecError::Malformed("literals truncated"));
            }
            out.extend_from_slice(&encoded[pos..pos + lit_len]);
            pos += lit_len;
            if pos == encoded.len() {
                break; // final sequence: literals only
            }
            if encoded.len() < pos + 2 {
                return Err(CodecError::Malformed("match offset truncated"));
            }
            let offset =
                u16::from_le_bytes(encoded[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            pos += 2;
            if offset == 0 || offset > out.len() {
                return Err(CodecError::Malformed("match offset out of range"));
            }
            let mut match_len = (token & 0x0F) as usize;
            if match_len == 15 {
                match_len += get_len_ext(encoded, &mut pos)?;
            }
            match_len += MIN_MATCH;
            if out.len() + match_len > raw_len {
                // Bound output memory on malformed input before copying.
                return Err(CodecError::LengthMismatch {
                    expected: raw_len,
                    got: out.len() + match_len,
                });
            }
            // Byte-by-byte: matches may overlap their own output.
            let start = out.len() - offset;
            for k in 0..match_len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() != raw_len {
            return Err(CodecError::LengthMismatch {
                expected: raw_len,
                got: out.len(),
            });
        }
        Ok(out)
    }

    /// Worst case, all literals: one token per 15+255·k literals plus
    /// the bytes themselves.
    fn max_compressed_len(&self, raw_len: usize) -> usize {
        raw_len + raw_len / 255 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(raw: &[u8]) -> Vec<u8> {
        let enc = Lz.encode(raw).unwrap();
        assert!(
            enc.len() <= Lz.max_compressed_len(raw.len()),
            "{} > bound {}",
            enc.len(),
            Lz.max_compressed_len(raw.len())
        );
        assert_eq!(Lz.decode(&enc, raw.len()).unwrap(), raw, "roundtrip");
        enc
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(roundtrip(&[]).is_empty());
        roundtrip(&[1]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[0; 4]);
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let raw = b"abcdefgh".repeat(512);
        let enc = roundtrip(&raw);
        assert!(
            enc.len() * 10 < raw.len(),
            "{} vs {}: periodic data should crush",
            enc.len(),
            raw.len()
        );
    }

    #[test]
    fn overlapping_match_rle() {
        // A run of one byte forces offset-1 overlapping matches.
        let raw = vec![7u8; 10_000];
        let enc = roundtrip(&raw);
        assert!(enc.len() < 64, "{} bytes for a pure run", enc.len());
    }

    #[test]
    fn incompressible_input_grows_bounded() {
        let mut x = 88172645463325252u64;
        let raw: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let enc = roundtrip(&raw);
        assert!(enc.len() <= Lz.max_compressed_len(raw.len()));
    }

    #[test]
    fn long_literal_and_match_extensions() {
        // >15 literals then a >15+4 match exercise both extension paths.
        let mut raw: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let tail: Vec<u8> = raw[..64].to_vec();
        raw.extend_from_slice(&tail);
        roundtrip(&raw);
    }

    #[test]
    fn structured_block_like_input() {
        // Something shaped like a flat entry block: small keys, mostly
        // zero payloads — the codec's production diet.
        let mut raw = Vec::new();
        raw.extend_from_slice(&(64u32).to_le_bytes());
        for i in 0u64..64 {
            raw.extend_from_slice(&(i * 2).to_le_bytes());
            raw.extend_from_slice(&(i + 1).to_le_bytes());
            raw.extend_from_slice(&(92u32).to_le_bytes());
            let mut payload = vec![0u8; 92];
            payload[0] = i as u8;
            raw.extend_from_slice(&payload);
        }
        let enc = roundtrip(&raw);
        assert!(
            enc.len() * 3 < raw.len(),
            "{} vs {}: zero-heavy blocks must shrink >3x",
            enc.len(),
            raw.len()
        );
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        let raw = b"the quick brown fox jumps over the quick brown dog".to_vec();
        let enc = Lz.encode(&raw).unwrap();
        // Truncations at every prefix must error, never panic.
        for cut in 0..enc.len() {
            assert!(Lz.decode(&enc[..cut], raw.len()).is_err(), "cut={cut}");
        }
        // Wrong raw_len.
        assert!(Lz.decode(&enc, raw.len() + 1).is_err());
        assert!(Lz.decode(&enc, raw.len().saturating_sub(1)).is_err());
        // Zero / out-of-range offset.
        let bad = vec![0x04u8, 0, 0]; // match of 8 at offset 0 with no history
        assert!(Lz.decode(&bad, 8).is_err());
    }
}
