//! LEB128 varints — the integer encoding shared by the [`crate::delta`]
//! codec and the block-run metadata regions (bloom filter headers).
//! Extracted from `masm-blockrun::block` when the delta encoding became
//! a codec.

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode a LEB128 varint from the front of `buf`; returns the value and
/// bytes consumed.
pub fn get_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let low = (b & 0x7F) as u64;
        if shift == 63 && low > 1 {
            return None; // overflow past 64 bits
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Encoded size of `v` as a varint.
pub fn varint_len(v: u64) -> usize {
    ((64 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            let (back, used) = get_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert!(get_varint(&[0x80]).is_none(), "truncated varint");
        assert!(
            get_varint(&[0xFF; 11]).is_none(),
            "varint longer than 64 bits"
        );
    }
}
