//! The delta+varint codec — the block format's original entry encoding,
//! extracted into a byte codec.
//!
//! Keys in a block are sorted, so consecutive key deltas are small and a
//! varint encodes each in 1–2 bytes where the flat layout spends 8; a
//! delete entry shrinks from 21 bytes flat to typically 3–5. The codec
//! transforms between the flat layout (see the crate docs) and:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┐
//! │ count: u32 │ entry × count                                │
//! ├────────────┴──────────────────────────────────────────────┤
//! │ entry := varint(key − prev_key) varint(ts)                │
//! │          varint(len(value)) value…                        │
//! └───────────────────────────────────────────────────────────┘
//! ```
//!
//! This is byte-for-byte the pre-codec on-disk block format, so the
//! compression measured against it is an honest before/after.

use crate::varint::{get_varint, put_varint};
use crate::{Codec, CodecError, CodecResult, DELTA};

/// Flat-layout bytes per entry before its variable-length value.
const FLAT_ENTRY_HEADER: usize = 8 + 8 + 4;

/// The delta+varint codec; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Delta;

impl Codec for Delta {
    fn id(&self) -> u8 {
        DELTA
    }

    fn name(&self) -> &'static str {
        "delta"
    }

    /// Flat block → delta block. Fails when `raw` is not a well-formed
    /// flat block with non-decreasing keys.
    fn encode(&self, raw: &[u8]) -> CodecResult<Vec<u8>> {
        if raw.len() < 4 {
            return Err(CodecError::Malformed("flat block shorter than its count"));
        }
        let count = u32::from_le_bytes(raw[0..4].try_into().expect("4 bytes")) as usize;
        let mut out = Vec::with_capacity(4 + raw.len() / 2);
        out.extend_from_slice(&raw[0..4]);
        let mut pos = 4usize;
        let mut prev_key = 0u64;
        for _ in 0..count {
            if raw.len() < pos + FLAT_ENTRY_HEADER {
                return Err(CodecError::Malformed("flat entry header truncated"));
            }
            let key = u64::from_le_bytes(raw[pos..pos + 8].try_into().expect("8 bytes"));
            let ts = u64::from_le_bytes(raw[pos + 8..pos + 16].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(raw[pos + 16..pos + 20].try_into().expect("4 bytes"));
            pos += FLAT_ENTRY_HEADER;
            let len = len as usize;
            if raw.len() < pos + len {
                return Err(CodecError::Malformed("flat entry value truncated"));
            }
            if key < prev_key {
                return Err(CodecError::Malformed("flat block keys not sorted"));
            }
            put_varint(&mut out, key - prev_key);
            put_varint(&mut out, ts);
            put_varint(&mut out, len as u64);
            out.extend_from_slice(&raw[pos..pos + len]);
            pos += len;
            prev_key = key;
        }
        if pos != raw.len() {
            return Err(CodecError::Malformed("flat block trailing bytes"));
        }
        Ok(out)
    }

    /// Delta block → flat block, validated against `raw_len`.
    fn decode(&self, encoded: &[u8], raw_len: usize) -> CodecResult<Vec<u8>> {
        if encoded.len() < 4 {
            return Err(CodecError::Malformed("delta block shorter than its count"));
        }
        let count = u32::from_le_bytes(encoded[0..4].try_into().expect("4 bytes")) as usize;
        let mut out = Vec::with_capacity(raw_len);
        out.extend_from_slice(&encoded[0..4]);
        let mut pos = 4usize;
        let mut prev_key = 0u64;
        for _ in 0..count {
            let (delta, used) =
                get_varint(&encoded[pos..]).ok_or(CodecError::Malformed("key delta varint"))?;
            pos += used;
            let (ts, used) =
                get_varint(&encoded[pos..]).ok_or(CodecError::Malformed("ts varint"))?;
            pos += used;
            let (len, used) =
                get_varint(&encoded[pos..]).ok_or(CodecError::Malformed("value length varint"))?;
            pos += used;
            let len_usize = len as usize;
            if len > u32::MAX as u64 || encoded.len() < pos + len_usize {
                return Err(CodecError::Malformed("value truncated"));
            }
            let key = prev_key
                .checked_add(delta)
                .ok_or(CodecError::Malformed("key delta overflow"))?;
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&ts.to_le_bytes());
            out.extend_from_slice(&(len as u32).to_le_bytes());
            out.extend_from_slice(&encoded[pos..pos + len_usize]);
            pos += len_usize;
            prev_key = key;
            if out.len() > raw_len {
                return Err(CodecError::LengthMismatch {
                    expected: raw_len,
                    got: out.len(),
                });
            }
        }
        if pos != encoded.len() {
            return Err(CodecError::Malformed("delta block trailing bytes"));
        }
        if out.len() != raw_len {
            return Err(CodecError::LengthMismatch {
                expected: raw_len,
                got: out.len(),
            });
        }
        Ok(out)
    }

    /// Worst case: a varint key delta (≤10 B), timestamp (≤10 B), and
    /// length (≤5 B) replace the 20 flat header bytes — at most 5 extra
    /// bytes per entry, and every flat entry is at least 20 bytes.
    fn max_compressed_len(&self, raw_len: usize) -> usize {
        raw_len + raw_len / 4 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a flat block inline (mirrors the layout in the crate docs).
    fn flat(entries: &[(u64, u64, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (key, ts, value) in entries {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&ts.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        out
    }

    #[test]
    fn roundtrip_and_shrinks_sorted_small_deltas() {
        let entries: Vec<(u64, u64, Vec<u8>)> =
            (0..500).map(|i| (i * 2, i + 1, vec![i as u8; 4])).collect();
        let raw = flat(
            &entries
                .iter()
                .map(|(k, t, v)| (*k, *t, v.as_slice()))
                .collect::<Vec<_>>(),
        );
        let enc = Delta.encode(&raw).unwrap();
        assert!(
            enc.len() * 2 < raw.len(),
            "delta should at least halve dense runs: {} vs {}",
            enc.len(),
            raw.len()
        );
        assert!(enc.len() <= Delta.max_compressed_len(raw.len()));
        assert_eq!(Delta.decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn empty_block_roundtrip() {
        let raw = flat(&[]);
        let enc = Delta.encode(&raw).unwrap();
        assert_eq!(Delta.decode(&enc, raw.len()).unwrap(), raw);
    }

    #[test]
    fn matches_legacy_block_format_byte_for_byte() {
        // The pre-codec format for (key=3,ts=7,value=[9,9]) after key 1:
        // varint(2) varint(7) varint(2) 9 9.
        let raw = flat(&[(1, 5, &[]), (3, 7, &[9, 9])]);
        let enc = Delta.encode(&raw).unwrap();
        assert_eq!(enc, vec![2, 0, 0, 0, 1, 5, 0, 2, 7, 2, 9, 9]);
    }

    #[test]
    fn rejects_unsorted_and_truncated_input() {
        let raw = flat(&[(10, 1, &[]), (5, 2, &[])]);
        assert!(matches!(
            Delta.encode(&raw),
            Err(CodecError::Malformed("flat block keys not sorted"))
        ));
        let good = flat(&[(1, 1, &[7; 8])]);
        for cut in [0, 3, 10, good.len() - 1] {
            assert!(Delta.encode(&good[..cut]).is_err(), "cut={cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Delta.encode(&trailing).is_err());
    }

    #[test]
    fn decode_rejects_corruption_and_wrong_raw_len() {
        let raw = flat(&[(1, 1, &[1, 2, 3]), (4, 2, &[4])]);
        let enc = Delta.encode(&raw).unwrap();
        assert!(Delta.decode(&enc, raw.len() + 1).is_err());
        assert!(Delta.decode(&enc[..enc.len() - 1], raw.len()).is_err());
        let mut bad = enc.clone();
        bad[0] = 0xFF; // count explodes past the payload
        assert!(Delta.decode(&bad, raw.len()).is_err());
    }
}
