//! Multi-tenant key generation: composite `(tenant_id, local_key)` keys
//! packed into one `u64`, with zipfian tenant skew.
//!
//! A SaaS-style warehouse interleaves many tenants' updates in one
//! table, with keyspace locality *per tenant*: tenant `t`'s rows live in
//! the contiguous block `[t << TENANT_SHIFT, (t+1) << TENANT_SHIFT)`.
//! That layout is exactly what key-range sharding exploits — a sampled
//! [`masm_core::ShardRouter`] learns split points between tenant blocks
//! and hot tenants spread across shards in proportion to their sample
//! mass — and exactly what stresses it: a zipfian tenant distribution
//! concentrates load, which the `shard_imbalance` gauge quantifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use masm_pagestore::Key;

use crate::zipf::Zipf;

/// Bits reserved for the per-tenant local key: tenant id occupies the
/// high `64 - TENANT_SHIFT` bits, so tenants sort contiguously.
pub const TENANT_SHIFT: u32 = 40;

/// Pack a `(tenant, local)` pair into one routable key. `local` must
/// fit in [`TENANT_SHIFT`] bits.
#[must_use]
pub fn compose_key(tenant: u64, local: u64) -> Key {
    debug_assert!(
        local < (1u64 << TENANT_SHIFT),
        "local key overflows tenant block"
    );
    (tenant << TENANT_SHIFT) | local
}

/// Split a composite key back into `(tenant, local)`.
#[must_use]
pub fn split_key(key: Key) -> (u64, u64) {
    (key >> TENANT_SHIFT, key & ((1u64 << TENANT_SHIFT) - 1))
}

/// An endless stream of composite keys: tenants drawn Zipf(θ) (tenant 0
/// hottest), local keys uniform within each tenant's space.
#[derive(Debug, Clone)]
pub struct MultiTenantKeyGen {
    tenants: Zipf,
    keys_per_tenant: u64,
    rng: StdRng,
}

impl MultiTenantKeyGen {
    /// `tenants` tenants with `keys_per_tenant` local keys each, tenant
    /// popularity Zipf(`theta`), deterministic under `seed`.
    #[must_use]
    pub fn new(tenants: u64, keys_per_tenant: u64, theta: f64, seed: u64) -> Self {
        assert!(tenants > 0 && keys_per_tenant > 0);
        assert!(
            keys_per_tenant <= (1u64 << TENANT_SHIFT),
            "keys_per_tenant overflows the tenant block"
        );
        MultiTenantKeyGen {
            tenants: Zipf::new(tenants, theta),
            keys_per_tenant,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw the next composite key.
    pub fn next_key(&mut self) -> Key {
        let tenant = self.tenants.sample(&mut self.rng) - 1;
        let local = self.rng.gen_range(0..self.keys_per_tenant);
        compose_key(tenant, local)
    }

    /// A reproducible sample of `n` keys for router training, drawn
    /// from a *forked* stream so consuming it does not perturb the
    /// generator itself.
    #[must_use]
    pub fn sample_keys(&self, n: usize) -> Vec<Key> {
        let mut fork = self.clone();
        (0..n).map(|_| fork.next_key()).collect()
    }
}

impl Iterator for MultiTenantKeyGen {
    type Item = Key;

    fn next(&mut self) -> Option<Key> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_split_roundtrip() {
        for (t, l) in [(0, 0), (1, 1), (63, (1 << TENANT_SHIFT) - 1), (1 << 20, 42)] {
            assert_eq!(split_key(compose_key(t, l)), (t, l));
        }
        // Tenant blocks are contiguous and ordered.
        assert!(compose_key(2, (1 << TENANT_SHIFT) - 1) < compose_key(3, 0));
    }

    #[test]
    fn generator_is_deterministic_and_skewed() {
        let a: Vec<Key> = MultiTenantKeyGen::new(64, 1 << 16, 0.8, 7)
            .take(5000)
            .collect();
        let b: Vec<Key> = MultiTenantKeyGen::new(64, 1 << 16, 0.8, 7)
            .take(5000)
            .collect();
        assert_eq!(a, b);
        // Zipf(0.8): the head tenants dominate (Gray's sampler makes
        // ranks 1 and 2 near-equiprobable, so compare head vs tail).
        let mut counts = vec![0usize; 64];
        for &k in &a {
            counts[split_key(k).0 as usize] += 1;
        }
        assert!(counts[0] > a.len() / 10, "{counts:?}");
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[32..].iter().sum();
        // Per-tenant mass: the 4 head tenants each carry ≥ 8× what a
        // tail tenant does.
        assert!(
            head * 32 > 8 * 4 * tail,
            "head {head} vs tail {tail}: {counts:?}"
        );
        // Every key stays inside its tenant's local space.
        assert!(a.iter().all(|&k| split_key(k).1 < (1 << 16)));
    }

    #[test]
    fn sample_does_not_advance_the_stream() {
        let mut g = MultiTenantKeyGen::new(8, 1024, 0.5, 11);
        let sample = g.sample_keys(100);
        assert_eq!(sample, g.sample_keys(100), "sampling is idempotent");
        let first = g.next_key();
        assert_eq!(first, sample[0], "stream starts where the fork did");
    }
}
