//! The §4.1 synthetic workload.
//!
//! "We generate a 100GB table with 100-byte sized records … The table is
//! initially populated with even-numbered primary keys so that
//! odd-numbered keys can be used to generate insertions. We generate
//! updates randomly uniformly distributed across the entire table, with
//! update types (insertion, deletion, or field modification) selected
//! randomly." Sizes here are a scale knob; normalized results are
//! scale-free (see DESIGN.md).

use masm_core::update::{FieldPatch, UpdateOp};
use masm_pagestore::{Key, Record, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Generator description of the synthetic base table.
#[derive(Debug, Clone)]
pub struct SyntheticTable {
    /// Number of records.
    pub records: u64,
    /// The fixed-width schema (payload layout).
    pub schema: Schema,
}

impl SyntheticTable {
    /// A table of `records` 100-byte records (8 B key + 92 B payload).
    pub fn new(records: u64) -> Self {
        SyntheticTable {
            records,
            schema: Schema::synthetic_100b(),
        }
    }

    /// A table sized to approximately `bytes` of record data.
    pub fn with_bytes(bytes: u64) -> Self {
        Self::new(bytes / 100)
    }

    /// Record `i` (key `2i`, so odd keys stay free for inserts).
    pub fn record(&self, i: u64) -> Record {
        let mut payload = self.schema.empty_payload();
        self.schema
            .set_u32(&mut payload, 0, (i % u32::MAX as u64) as u32);
        Record::new(i * 2, payload)
    }

    /// All records in key order (bulk-load input).
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        (0..self.records).map(|i| self.record(i))
    }

    /// Largest populated key.
    pub fn max_key(&self) -> Key {
        (self.records - 1) * 2
    }
}

/// Update kinds in the random mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Insert a fresh odd-keyed record.
    Insert,
    /// Delete an existing even-keyed record.
    Delete,
    /// Modify a field of an existing even-keyed record.
    Modify,
}

/// Fractions of each update kind (must sum to 1).
#[derive(Debug, Clone, Copy)]
pub struct UpdateMix {
    /// Fraction of insertions.
    pub insert: f64,
    /// Fraction of deletions.
    pub delete: f64,
    /// Fraction of field modifications.
    pub modify: f64,
}

impl Default for UpdateMix {
    fn default() -> Self {
        UpdateMix {
            insert: 1.0 / 3.0,
            delete: 1.0 / 3.0,
            modify: 1.0 / 3.0,
        }
    }
}

impl UpdateMix {
    /// Only insertions (the "write-once read-many" DW special case).
    pub fn inserts_only() -> Self {
        UpdateMix {
            insert: 1.0,
            delete: 0.0,
            modify: 0.0,
        }
    }
}

/// Key distribution for the update stream.
#[derive(Debug, Clone)]
enum KeyDist {
    Uniform,
    Zipf(Zipf),
}

/// A deterministic (seeded) stream of well-formed updates over a
/// [`SyntheticTable`].
pub struct UpdateStreamGen {
    table: SyntheticTable,
    mix: UpdateMix,
    dist: KeyDist,
    rng: StdRng,
    generated: u64,
}

impl UpdateStreamGen {
    /// Uniformly distributed updates (the paper's default).
    pub fn uniform(table: SyntheticTable, mix: UpdateMix, seed: u64) -> Self {
        UpdateStreamGen {
            table,
            mix,
            dist: KeyDist::Uniform,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// Zipf-skewed updates (for the §3.5 skew handling experiments).
    pub fn zipf(table: SyntheticTable, mix: UpdateMix, theta: f64, seed: u64) -> Self {
        let n = table.records;
        UpdateStreamGen {
            table,
            mix,
            dist: KeyDist::Zipf(Zipf::new(n, theta)),
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    fn pick_slot(&mut self) -> u64 {
        match &self.dist {
            KeyDist::Uniform => self.rng.gen_range(0..self.table.records),
            KeyDist::Zipf(z) => z.sample(&mut self.rng) - 1,
        }
    }

    /// Number of updates generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The table this stream updates.
    pub fn table(&self) -> &SyntheticTable {
        &self.table
    }

    /// Generate the next `(key, op)` pair.
    pub fn next_update(&mut self) -> (Key, UpdateOp) {
        let slot = self.pick_slot();
        let r: f64 = self.rng.gen();
        let schema = &self.table.schema;
        self.generated += 1;
        if r < self.mix.insert {
            // Odd key adjacent to the chosen slot.
            let key = slot * 2 + 1;
            let mut payload = schema.empty_payload();
            schema.set_u32(&mut payload, 0, self.rng.gen());
            (key, UpdateOp::Insert(payload))
        } else if r < self.mix.insert + self.mix.delete {
            (slot * 2, UpdateOp::Delete)
        } else {
            let patch = FieldPatch {
                field: 0,
                value: self.rng.gen::<u32>().to_le_bytes().to_vec(),
            };
            (slot * 2, UpdateOp::Modify(vec![patch]))
        }
    }
}

impl Iterator for UpdateStreamGen {
    type Item = (Key, UpdateOp);

    fn next(&mut self) -> Option<(Key, UpdateOp)> {
        Some(self.next_update())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_records_are_even_keyed_and_sized() {
        let t = SyntheticTable::new(100);
        let recs: Vec<Record> = t.records().collect();
        assert_eq!(recs.len(), 100);
        assert!(recs.iter().all(|r| r.key % 2 == 0));
        assert!(recs.iter().all(|r| r.payload.len() + 8 == 100));
        assert_eq!(t.max_key(), 198);
    }

    #[test]
    fn with_bytes_scales() {
        let t = SyntheticTable::with_bytes(10_000);
        assert_eq!(t.records, 100);
    }

    #[test]
    fn uniform_stream_respects_mix() {
        let t = SyntheticTable::new(1000);
        let gen = UpdateStreamGen::uniform(t, UpdateMix::default(), 1);
        let mut counts = [0u64; 3];
        for (key, op) in gen.take(30_000) {
            match op {
                UpdateOp::Insert(_) => {
                    counts[0] += 1;
                    assert_eq!(key % 2, 1, "inserts use odd keys");
                }
                UpdateOp::Delete => {
                    counts[1] += 1;
                    assert_eq!(key % 2, 0);
                }
                UpdateOp::Modify(_) => {
                    counts[2] += 1;
                    assert_eq!(key % 2, 0);
                }
                UpdateOp::Replace(_) => panic!("generator never emits replace"),
            }
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "mix unbalanced: {counts:?}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let t = SyntheticTable::new(100);
        let a: Vec<Key> = UpdateStreamGen::uniform(t.clone(), UpdateMix::default(), 9)
            .take(50)
            .map(|(k, _)| k)
            .collect();
        let b: Vec<Key> = UpdateStreamGen::uniform(t, UpdateMix::default(), 9)
            .take(50)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_stream_hits_hot_keys_more() {
        let t = SyntheticTable::new(10_000);
        let gen = UpdateStreamGen::zipf(t, UpdateMix::inserts_only(), 0.99, 3);
        let mut hot = 0u64;
        let mut total = 0u64;
        for (key, _) in gen.take(20_000) {
            total += 1;
            if key < 200 {
                hot += 1;
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.2,
            "hot fraction {}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn inserts_only_mix() {
        let t = SyntheticTable::new(100);
        let gen = UpdateStreamGen::uniform(t, UpdateMix::inserts_only(), 5);
        assert!(gen
            .take(100)
            .all(|(_, op)| matches!(op, UpdateOp::Insert(_))));
    }
}
