//! Zipf-distributed key sampling (YCSB-style, Gray et al.).
//!
//! Rank `k` (1-based) is drawn with probability proportional to
//! `1/k^θ`. Used for the skewed-update experiments around §3.5
//! ("Handling Skews in Incoming Updates").

use rand::Rng;

/// A Zipf(θ) sampler over `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Build a sampler over `1..=n` with skew `theta` in `(0, 1)`.
    /// θ → 0 approaches uniform; θ ≈ 0.99 is the YCSB default hot-spot.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for small n; integral approximation for large n.
        if n <= 10_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // ∫_{10000}^{n} x^-θ dx
            let tail = ((n as f64).powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Sample a rank in `1..=n` (rank 1 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 1;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 2;
        }
        let k = ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.clamp(1, self.n)
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Unused-field silencer with meaning: ζ(2,θ), exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: u64, samples: usize) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0u64; n as usize + 1];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            h[k as usize] += 1;
        }
        h
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let h = histogram(0.99, 1000, 100_000);
        let top10: u64 = h[1..=10].iter().sum();
        assert!(
            top10 as f64 > 0.3 * 100_000.0,
            "top-10 ranks got {top10} of 100k"
        );
    }

    #[test]
    fn low_theta_is_flatter() {
        let skewed = histogram(0.99, 1000, 100_000);
        let flat = histogram(0.01, 1000, 100_000);
        assert!(
            flat[1] < skewed[1] / 2,
            "flat {} skewed {}",
            flat[1],
            skewed[1]
        );
    }

    #[test]
    fn large_n_does_not_overflow_or_stall() {
        let z = Zipf::new(1 << 30, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=1 << 30).contains(&k));
        }
        assert!(z.zeta2() > 1.0);
    }
}
