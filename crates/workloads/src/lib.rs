//! # masm-workloads — workload generators for the MaSM reproduction
//!
//! * [`synthetic`] — the §4.1 synthetic setup: a table of 100-byte
//!   records populated with even-numbered keys (odd keys are reserved
//!   for insertions), plus a stream of well-formed updates with randomly
//!   selected types, uniformly or Zipf distributed over the key space.
//! * [`zipf`] — a Zipf(θ) key sampler for the skew experiments of §3.5.
//! * [`tpch`] — a TPC-H-*like* replay workload. The paper replays
//!   `blktrace` I/O traces of 20 TPC-H queries (SF 30) captured on a
//!   commercial row store; those traces reduce to multi-table range
//!   scans over a schema dominated by `lineitem` and `orders` (>80% of
//!   bytes). We regenerate equivalent range-scan traces from scaled
//!   tables with the same size proportions and query shapes — the
//!   substitution preserves the I/O interference behaviour the
//!   experiment measures (see DESIGN.md).

pub mod synthetic;
pub mod tenant;
pub mod tpch;
pub mod zipf;

pub use synthetic::{SyntheticTable, UpdateKind, UpdateMix, UpdateStreamGen};
pub use tenant::{compose_key, split_key, MultiTenantKeyGen, TENANT_SHIFT};
pub use tpch::{QueryProfile, TpchTables, TPCH_QUERIES};
pub use zipf::Zipf;
