//! A TPC-H-like replay workload (§4.3).
//!
//! The paper records `blktrace` I/O traces of 20 TPC-H queries (SF 30,
//! queries 17 and 20 excluded — they did not finish) on a commercial row
//! store, and replays the *disk traces* against its prototype: "all the
//! 20 TPC-H queries perform (multiple) table range scans". We therefore
//! regenerate the same thing the traces encode — multi-table range-scan
//! sequences — from scaled tables with TPC-H's size proportions
//! (`lineitem` + `orders` hold >80% of the bytes). The per-query scan
//! profiles below are *synthetic approximations* of which tables each
//! query touches and how much of them it reads; they are not the real
//! traces (we cannot run the commercial DBMS), but they preserve what
//! the experiment measures: long sequential multi-scan queries whose
//! disk access patterns online updates may disturb.
//!
//! Updates follow §4.3: "we generate updates to be randomly distributed
//! across the lineitem and orders tables … an orders record and its
//! associated lineitem records are inserted or deleted together."

use std::sync::Arc;

use masm_core::update::UpdateOp;
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{SessionHandle, SimDevice, StorageResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The TPC-H tables we materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table {
    /// The fact table (~70% of bytes).
    Lineitem,
    /// Orders (~17%).
    Orders,
    /// Customer (~6%).
    Customer,
    /// Part (~5%).
    Part,
    /// Supplier (~2%).
    Supplier,
}

/// One range scan of a replayed query: a fraction of one table.
#[derive(Debug, Clone, Copy)]
pub struct ScanStep {
    /// Table scanned.
    pub table: Table,
    /// Start of the scanned key range as a fraction of the table.
    pub begin_frac: f64,
    /// End of the scanned key range as a fraction of the table.
    pub end_frac: f64,
}

const fn step(table: Table, begin_frac: f64, end_frac: f64) -> ScanStep {
    ScanStep {
        table,
        begin_frac,
        end_frac,
    }
}

/// A replayable query: a name and its scan steps.
#[derive(Debug, Clone, Copy)]
pub struct QueryProfile {
    /// Query name (e.g. "q1").
    pub name: &'static str,
    /// The range scans the query performs, in order.
    pub steps: &'static [ScanStep],
}

use Table::*;

/// The 20 replayable TPC-H queries (17 and 20 excluded, as in §4.1).
pub const TPCH_QUERIES: &[QueryProfile] = &[
    QueryProfile {
        name: "q1",
        steps: &[step(Lineitem, 0.0, 0.95)],
    },
    QueryProfile {
        name: "q2",
        steps: &[step(Part, 0.0, 0.3), step(Supplier, 0.0, 1.0)],
    },
    QueryProfile {
        name: "q3",
        steps: &[
            step(Customer, 0.0, 0.3),
            step(Orders, 0.0, 0.5),
            step(Lineitem, 0.0, 0.55),
        ],
    },
    QueryProfile {
        name: "q4",
        steps: &[step(Orders, 0.0, 1.0), step(Lineitem, 0.2, 0.5)],
    },
    QueryProfile {
        name: "q5",
        steps: &[
            step(Customer, 0.0, 0.6),
            step(Orders, 0.1, 0.6),
            step(Lineitem, 0.1, 0.6),
            step(Supplier, 0.0, 1.0),
        ],
    },
    QueryProfile {
        name: "q6",
        steps: &[step(Lineitem, 0.0, 1.0)],
    },
    QueryProfile {
        name: "q7",
        steps: &[step(Lineitem, 0.2, 0.7), step(Orders, 0.3, 0.7)],
    },
    QueryProfile {
        name: "q8",
        steps: &[
            step(Part, 0.0, 0.2),
            step(Lineitem, 0.3, 0.7),
            step(Orders, 0.2, 0.5),
        ],
    },
    QueryProfile {
        name: "q9",
        steps: &[
            step(Part, 0.0, 0.5),
            step(Lineitem, 0.0, 1.0),
            step(Orders, 0.0, 0.5),
        ],
    },
    QueryProfile {
        name: "q10",
        steps: &[
            step(Customer, 0.0, 1.0),
            step(Orders, 0.3, 0.7),
            step(Lineitem, 0.3, 0.6),
        ],
    },
    QueryProfile {
        name: "q11",
        steps: &[step(Supplier, 0.0, 1.0), step(Part, 0.4, 0.7)],
    },
    QueryProfile {
        name: "q12",
        steps: &[step(Orders, 0.0, 0.6), step(Lineitem, 0.2, 0.6)],
    },
    QueryProfile {
        name: "q13",
        steps: &[step(Customer, 0.0, 1.0), step(Orders, 0.0, 1.0)],
    },
    QueryProfile {
        name: "q14",
        steps: &[step(Lineitem, 0.4, 0.7), step(Part, 0.0, 0.4)],
    },
    QueryProfile {
        name: "q15",
        steps: &[step(Lineitem, 0.2, 0.7), step(Supplier, 0.0, 1.0)],
    },
    QueryProfile {
        name: "q16",
        steps: &[step(Part, 0.0, 0.6), step(Supplier, 0.0, 0.3)],
    },
    QueryProfile {
        name: "q18",
        steps: &[
            step(Customer, 0.0, 0.4),
            step(Orders, 0.0, 1.0),
            step(Lineitem, 0.0, 1.0),
        ],
    },
    QueryProfile {
        name: "q19",
        steps: &[step(Lineitem, 0.3, 0.7), step(Part, 0.0, 0.3)],
    },
    QueryProfile {
        name: "q21",
        steps: &[
            step(Supplier, 0.0, 0.5),
            step(Lineitem, 0.0, 1.0),
            step(Orders, 0.2, 0.8),
        ],
    },
    QueryProfile {
        name: "q22",
        steps: &[step(Customer, 0.0, 0.5), step(Orders, 0.0, 0.3)],
    },
];

/// The scaled TPC-H-like tables, all on one disk device (so queries and
/// updates interfere exactly as they would on the paper's single SATA
/// disk).
pub struct TpchTables {
    /// lineitem (the fact table).
    pub lineitem: Arc<TableHeap>,
    /// orders.
    pub orders: Arc<TableHeap>,
    /// customer.
    pub customer: Arc<TableHeap>,
    /// part.
    pub part: Arc<TableHeap>,
    /// supplier.
    pub supplier: Arc<TableHeap>,
    /// The shared 100-byte record schema.
    pub schema: Schema,
}

impl TpchTables {
    /// Build tables totalling ≈`total_bytes` of record data on `disk`,
    /// in TPC-H's byte proportions.
    pub fn build(
        disk: &SimDevice,
        session: &SessionHandle,
        total_bytes: u64,
    ) -> StorageResult<TpchTables> {
        let schema = Schema::synthetic_100b();
        let proportions: [(Table, f64); 5] = [
            (Lineitem, 0.70),
            (Orders, 0.17),
            (Customer, 0.06),
            (Part, 0.05),
            (Supplier, 0.02),
        ];
        let mut heaps = Vec::new();
        for (_, frac) in proportions {
            let records = ((total_bytes as f64 * frac) / 100.0) as u64;
            let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
            let schema = schema.clone();
            heap.bulk_load(
                session,
                (0..records.max(10)).map(move |i| {
                    let mut payload = schema.empty_payload();
                    schema.set_u32(&mut payload, 0, (i % u32::MAX as u64) as u32);
                    Record::new(i * 2, payload)
                }),
                1.0,
            )?;
            heaps.push(heap);
        }
        let mut it = heaps.into_iter();
        Ok(TpchTables {
            lineitem: it.next().expect("5 heaps"),
            orders: it.next().expect("5 heaps"),
            customer: it.next().expect("5 heaps"),
            part: it.next().expect("5 heaps"),
            supplier: it.next().expect("5 heaps"),
            schema,
        })
    }

    /// Heap of a table.
    pub fn heap(&self, t: Table) -> &Arc<TableHeap> {
        match t {
            Lineitem => &self.lineitem,
            Orders => &self.orders,
            Customer => &self.customer,
            Part => &self.part,
            Supplier => &self.supplier,
        }
    }

    /// Translate a scan step into a concrete key range on its table.
    pub fn key_range(&self, s: &ScanStep) -> (Key, Key) {
        let heap = self.heap(s.table);
        let records = heap.record_count().max(1);
        let max_key = records * 2;
        let begin = (s.begin_frac * max_key as f64) as Key;
        let end = (s.end_frac * max_key as f64) as Key;
        (begin, end.max(begin))
    }

    /// Replay one query directly against the heaps (the no-updates and
    /// in-place configurations); returns records scanned.
    pub fn replay_query(&self, session: &SessionHandle, q: &QueryProfile) -> u64 {
        let mut n = 0u64;
        for s in q.steps {
            let (b, e) = self.key_range(s);
            n += self.heap(s.table).scan_range(session.clone(), b, e).count() as u64;
        }
        n
    }
}

/// One correlated TPC-H update: an orders row and its lineitems inserted
/// or deleted together.
#[derive(Debug, Clone)]
pub struct TpchUpdate {
    /// The table each sub-update applies to.
    pub ops: Vec<(Table, Key, UpdateOp)>,
}

/// Generator of correlated orders+lineitem updates, uniformly
/// distributed across both tables.
pub struct TpchUpdateGen {
    orders_slots: u64,
    lineitem_slots: u64,
    schema: Schema,
    rng: StdRng,
}

impl TpchUpdateGen {
    /// Build a generator for `tables` with a deterministic `seed`.
    pub fn new(tables: &TpchTables, seed: u64) -> Self {
        TpchUpdateGen {
            orders_slots: tables.orders.record_count().max(1),
            lineitem_slots: tables.lineitem.record_count().max(1),
            schema: tables.schema.clone(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next correlated update group.
    pub fn next_group(&mut self) -> TpchUpdate {
        let insert: bool = self.rng.gen();
        let order_slot = self.rng.gen_range(0..self.orders_slots);
        let n_items = self.rng.gen_range(1..=4u64);
        let mut ops = Vec::with_capacity(1 + n_items as usize);
        if insert {
            let mut payload = self.schema.empty_payload();
            self.schema.set_u32(&mut payload, 0, self.rng.gen());
            ops.push((Orders, order_slot * 2 + 1, UpdateOp::Insert(payload)));
            for _ in 0..n_items {
                let li_slot = self.rng.gen_range(0..self.lineitem_slots);
                let mut payload = self.schema.empty_payload();
                self.schema.set_u32(&mut payload, 0, self.rng.gen());
                ops.push((Lineitem, li_slot * 2 + 1, UpdateOp::Insert(payload)));
            }
        } else {
            ops.push((Orders, order_slot * 2, UpdateOp::Delete));
            for _ in 0..n_items {
                let li_slot = self.rng.gen_range(0..self.lineitem_slots);
                ops.push((Lineitem, li_slot * 2, UpdateOp::Delete));
            }
        }
        TpchUpdate { ops }
    }
}

impl Iterator for TpchUpdateGen {
    type Item = TpchUpdate;

    fn next(&mut self) -> Option<TpchUpdate> {
        Some(self.next_group())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_storage::{DeviceProfile, SimClock};

    fn setup(bytes: u64) -> (TpchTables, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let tables = TpchTables::build(&disk, &session, bytes).unwrap();
        (tables, session)
    }

    #[test]
    fn proportions_roughly_hold() {
        let (t, _) = setup(10_000_000); // 10 MB of records
        let li = t.lineitem.data_bytes() as f64;
        let total = [Lineitem, Orders, Customer, Part, Supplier]
            .iter()
            .map(|&x| t.heap(x).data_bytes() as f64)
            .sum::<f64>();
        let frac = li / total;
        assert!((0.6..0.8).contains(&frac), "lineitem fraction {frac}");
        // lineitem + orders dominate (>80%, §4.3).
        let dom = (li + t.orders.data_bytes() as f64) / total;
        assert!(dom > 0.8, "lineitem+orders fraction {dom}");
    }

    #[test]
    fn all_twenty_queries_replay() {
        let (t, s) = setup(2_000_000);
        assert_eq!(TPCH_QUERIES.len(), 20);
        for q in TPCH_QUERIES {
            let n = t.replay_query(&s, q);
            assert!(n > 0, "{} scanned nothing", q.name);
        }
    }

    #[test]
    fn key_ranges_are_within_tables() {
        let (t, _) = setup(1_000_000);
        for q in TPCH_QUERIES {
            for s in q.steps {
                let (b, e) = t.key_range(s);
                assert!(b <= e);
                assert!(e <= t.heap(s.table).record_count() * 2 + 2);
            }
        }
    }

    #[test]
    fn update_groups_are_correlated_and_deterministic() {
        let (t, _) = setup(1_000_000);
        let mut g1 = TpchUpdateGen::new(&t, 7);
        let mut g2 = TpchUpdateGen::new(&t, 7);
        for _ in 0..50 {
            let a = g1.next_group();
            let b = g2.next_group();
            assert_eq!(a.ops.len(), b.ops.len());
            assert_eq!(a.ops[0].0, Orders, "group leads with an orders op");
            assert!(a.ops.len() >= 2 && a.ops.len() <= 5);
            assert!(a.ops[1..].iter().all(|(t, _, _)| *t == Lineitem));
            // Insert groups are all-insert; delete groups all-delete.
            let is_insert = matches!(a.ops[0].2, UpdateOp::Insert(_));
            for (_, key, op) in &a.ops {
                match op {
                    UpdateOp::Insert(_) => {
                        assert!(is_insert);
                        assert_eq!(key % 2, 1);
                    }
                    UpdateOp::Delete => {
                        assert!(!is_insert);
                        assert_eq!(key % 2, 0);
                    }
                    _ => panic!("unexpected op"),
                }
            }
        }
    }
}
