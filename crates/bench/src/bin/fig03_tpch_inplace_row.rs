//! Figure 3: TPC-H queries with concurrent random in-place updates on a
//! row store.
//!
//! Paper result: queries slow down 1.5–4.1× (2.2× on average), and the
//! slowdown exceeds "query alone + the same updates applied offline" by
//! 1.6× on average — the *interference* between the sequential scans and
//! the random updates, not just the second workload, is what hurts.

use masm_bench::tpch_replay::{TpchEnv, TpchInPlaceUpdater};
use masm_bench::*;
use masm_storage::MIB;
use masm_workloads::tpch::TPCH_QUERIES;

fn main() {
    let mb = scale_mb();
    let total_bytes = mb * MIB;

    let mut rows = Vec::new();
    let mut sum_with = 0f64;
    let mut sum_sum = 0f64;
    for q in TPCH_QUERIES {
        // Fresh environment per query so in-place mutations don't leak.
        let env = TpchEnv::new(total_bytes);
        let no_updates = env.time_query(q, 1.0);

        let env2 = TpchEnv::new(total_bytes);
        let mut updater = TpchInPlaceUpdater::new(&env2, 9);
        let with_updates = env2.time_query_with(q, 1.0, &mut |now| updater.catch_up(now));
        let issued = updater.issued;

        // Same number of updates, applied alone (offline).
        let env3 = TpchEnv::new(total_bytes);
        let mut offline = TpchInPlaceUpdater::new(&env3, 9);
        let updates_alone = offline.apply_exactly(issued);

        let with_ratio = with_updates as f64 / no_updates as f64;
        let sum_ratio = (no_updates + updates_alone) as f64 / no_updates as f64;
        sum_with += with_ratio;
        sum_sum += sum_ratio;
        rows.push(vec![
            q.name.to_string(),
            format!("{:.3}", secs(no_updates)),
            format!("{with_ratio:.2}x"),
            format!("{sum_ratio:.2}x"),
        ]);
    }
    let n = TPCH_QUERIES.len() as f64;
    print_table(
        &format!("Figure 3 — TPC-H replay with in-place updates, row store ({mb} MiB of tables)"),
        &[
            "query",
            "no-updates (s)",
            "w/ updates",
            "query-only + update-only",
        ],
        &rows,
    );
    println!(
        "\naverages: w/ updates {:.2}x, query+updates-offline {:.2}x (interference factor {:.2}x)\n\
         paper shape: 1.5-4.1x w/ updates (avg 2.2x); interference alone ~1.6x.",
        sum_with / n,
        sum_sum / n,
        sum_with / sum_sum
    );
}
