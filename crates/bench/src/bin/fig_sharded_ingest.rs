//! Sharded ingest scaling: concurrent update lanes against 1, 2, and 4
//! key-range shards.
//!
//! The paper's single MaSM instance serializes all update traffic
//! through one SSD region and one redo log. Key-range sharding
//! ([`masm_core::ShardedEngine`]) gives each contiguous key range its
//! own engine — own update buffer, own flash region, own WAL queue —
//! behind one router, so concurrent ingest lanes stop queueing behind
//! each other's I/O. The total flash budget is held constant across
//! shard counts (shards divide it, per `MasmConfig::shard_config`), so
//! the sweep isolates the parallelism: same updates, same bytes, same
//! devices-per-byte, different queue fan-out.
//!
//! Workload: 4 OS-thread lanes, each serving its own block of 16
//! tenants (the SaaS deployment shape: one API server per tenant
//! group), drawing zipfian-skewed keys within the block
//! ([`masm_workloads::tenant::MultiTenantKeyGen`], θ = 0.6). The
//! router splits the keyspace exactly at tenant-block boundaries
//! ([`SplitPolicy::Explicit`]), so each lane's traffic flows to "its"
//! shard — writer keyspace locality is precisely the regime key-range
//! sharding converts into parallelism. Throughput is measured in
//! virtual time (updates per virtual second) at the moment the last
//! lane finishes; background workers flush sealed buffers throughout.
//!
//! Every lane's I/O session is pinned to the same virtual start
//! instant. Thread-spawn staggering happens in *real* time; letting a
//! late lane inherit the global clock (which the earlier lanes have
//! already driven forward) would hand it a phantom head start and
//! charge the sweep for scheduler noise instead of device queueing.
//!
//! Output: a summary table plus one `ROW:{json}` line per shard count
//! with the throughput, speedup over the unsharded run, per-shard
//! random-write counts, and the `shard_imbalance` gauge. The binary
//! asserts 4 shards ingest at least 1.8x the single-shard rate and that
//! `random_writes == 0` in every shard of every run — the acceptance
//! checks CI smoke-runs at `MASM_BENCH_MB=8`.
//!
//! With `MASM_TRACE_OUT=<path>` the 4-shard run is flight-recorded:
//! the exported Chrome trace is self-validated (every shard's process
//! track carries at least one complete `job.flush` span), written to
//! `<path>`, and summarized on a `TRACE:ok` line.

use std::sync::Arc;
use std::thread;

use masm_bench::*;
use masm_core::update::UpdateRecord;
use masm_core::{ShardedEngine, ShardingConfig, SplitPolicy};
use masm_pagestore::{HeapConfig, Schema, TableHeap};
use masm_storage::{DeviceProfile, IoSession, SessionHandle, SimClock, SimDevice, MIB};
use masm_telemetry::json::{parse, JsonObj, JsonValue};
use masm_telemetry::{TraceConfig, Tracer};
use masm_workloads::tenant::MultiTenantKeyGen;

const LANES: u64 = 4;
const TENANTS_PER_LANE: u64 = 16;
const LOCAL_KEYS: u64 = 1 << 16;
const THETA: f64 = 0.6;

/// Lane `lane`'s key stream: a zipfian multi-tenant generator over its
/// own 16-tenant block, shifted into the block's key range.
fn lane_gen(lane: u64) -> impl Iterator<Item = masm_pagestore::Key> {
    let base = (lane * TENANTS_PER_LANE) << masm_workloads::tenant::TENANT_SHIFT;
    MultiTenantKeyGen::new(TENANTS_PER_LANE, LOCAL_KEYS, THETA, 1000 + lane).map(move |k| base + k)
}

struct RunResult {
    shards: usize,
    updates: u64,
    elapsed_ns: u64,
    updates_per_sec: f64,
    random_writes: u64,
    per_shard_random_writes: Vec<u64>,
    imbalance: f64,
    flushes: u64,
}

fn run(mb: u64, shards: usize, tracer: Option<&Arc<Tracer>>) -> RunResult {
    let schema = Schema::synthetic_100b();
    let mut cfg = scaled_masm_config(mb * MIB);
    // The same total flash for every shard count — floored so a 4-way
    // split still leaves each shard ≥ 64 pages at the CI smoke scale.
    cfg.ssd_capacity = cfg.ssd_capacity.max(4 * 64 * 4096);
    cfg.background_workers = 4;
    // MaSM-2M (α = 2): the largest update buffer and query-page budget,
    // i.e. the paper's lowest-maintenance variant — the sweep measures
    // ingest parallelism, not compaction policy.
    cfg.alpha = 2.0;
    // Shard boundaries at tenant-block edges: shard k owns the tenant
    // groups [k·T/N, (k+1)·T/N). This is how an operator shards a
    // multi-tenant keyspace — on the tenant boundaries it already
    // knows. (`SplitPolicy::Sampled` learns splits within one tenant
    // of these from a key sample; the sharded-engine tests exercise
    // that path. The timing sweep pins them exactly so each lane's
    // traffic is fully shard-local.)
    let tenants = LANES * TENANTS_PER_LANE;
    let splits: Vec<masm_pagestore::Key> = (1..shards as u64)
        .map(|k| (k * tenants / shards as u64) << masm_workloads::tenant::TENANT_SHIFT)
        .collect();
    cfg.sharding = ShardingConfig {
        shards,
        split_policy: SplitPolicy::Explicit(splits),
        max_concurrent_migrations: 1,
    };

    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let ssds: Vec<SimDevice> = (0..shards)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let wals: Vec<SimDevice> = (0..shards)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    // Pure-ingest setup: the heap stays empty (Replace acts as an
    // upsert), so the sweep measures the update path alone.
    let engine =
        ShardedEngine::new(heap, ssds, wals, schema.clone(), cfg.clone()).expect("sharded config");
    if let Some(t) = tracer {
        engine.install_tracer(t);
    }

    // Size the stream to ~60% of the flash budget: enough to force many
    // background flushes in every shard, comfortably under the 90%
    // migration trigger.
    let probe = UpdateRecord::new(1, 0, UpdateOp::Replace(schema.empty_payload())).encoded_len();
    let per_lane = (cfg.ssd_capacity * 60 / 100 / probe as u64 / LANES).max(500);

    let start = clock.now();
    let mut lanes = Vec::new();
    for lane in 0..LANES {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let schema = schema.clone();
        lanes.push(thread::spawn(move || {
            // Every lane's virtual cursor starts at the sweep's start
            // instant. `SessionHandle::fresh` would start at the global
            // clock instead, handing later-spawned lanes a phantom
            // head-start equal to however much virtual time the earlier
            // lanes burned while this thread was still being created.
            let session = SessionHandle::new(IoSession::at(clock, start));
            let mut gen = lane_gen(lane);
            for j in 0..per_lane {
                let mut payload = schema.empty_payload();
                schema.set_u32(&mut payload, 0, j as u32);
                let key = gen.next().expect("endless stream");
                loop {
                    match engine.put(&session, key, UpdateOp::Replace(payload.clone())) {
                        Ok(_) => break,
                        // Backpressure: the flash filled before the
                        // workers' flushes caught up.
                        Err(masm_core::MasmError::CacheFull { .. }) => {
                            thread::sleep(std::time::Duration::from_millis(1));
                        }
                        Err(e) => panic!("update failed: {e}"),
                    }
                }
            }
        }));
    }
    for lane in lanes {
        lane.join().expect("ingest lane");
    }
    let elapsed_ns = (clock.now() - start).max(1);
    engine.shutdown();

    let stats = engine.stats();
    let updates = stats.total.ingested_updates;
    assert_eq!(updates, LANES * per_lane, "lost updates");
    RunResult {
        shards,
        updates,
        elapsed_ns,
        updates_per_sec: updates as f64 * 1e9 / elapsed_ns as f64,
        random_writes: stats.total.ssd.random_writes,
        per_shard_random_writes: stats
            .per_shard
            .iter()
            .map(|s| s.ssd.random_writes)
            .collect(),
        imbalance: stats.shard_imbalance,
        flushes: stats.total.workers.flushes,
    }
}

fn main() {
    let mb = scale_mb();
    let trace_out = std::env::var("MASM_TRACE_OUT").ok();
    let tracer = trace_out.as_ref().map(|_| {
        Arc::new(Tracer::new(TraceConfig {
            ring_capacity: 1 << 15,
            ..TraceConfig::default()
        }))
    });
    // Flight-record only the 4-shard sweep point: the trace check below
    // wants one process track per shard of the widest configuration.
    let results: Vec<RunResult> = [1, 2, 4]
        .into_iter()
        .map(|n| run(mb, n, if n == 4 { tracer.as_ref() } else { None }))
        .collect();
    let base = results[0].updates_per_sec;

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                r.updates.to_string(),
                format!("{:.3}", secs(r.elapsed_ns)),
                format!("{:.0}", r.updates_per_sec),
                format!("{:.2}x", r.updates_per_sec / base),
                r.random_writes.to_string(),
                format!("{:.2}", r.imbalance),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Sharded ingest scaling — {LANES} concurrent lanes, zipfian multi-tenant keys \
             (flash budget fixed; table scale {mb} MiB)"
        ),
        &[
            "shards",
            "updates",
            "elapsed (s)",
            "updates/s",
            "speedup",
            "random writes",
            "imbalance",
        ],
        &rows,
    );
    println!(
        "\nshape: one shard serializes all lanes behind a single WAL/flash queue; N shards\n\
         absorb the same stream through N independent queues, so throughput scales until\n\
         tenant skew (imbalance) caps it."
    );
    for r in &results {
        let per_shard = r
            .per_shard_random_writes
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let mut o = JsonObj::new();
        o.u64("shards", r.shards as u64)
            .u64("lanes", LANES)
            .u64("updates", r.updates)
            .u64("elapsed_ns", r.elapsed_ns)
            .f64("updates_per_sec", r.updates_per_sec)
            .f64("speedup", r.updates_per_sec / base)
            .u64("random_writes", r.random_writes)
            .raw("per_shard_random_writes", &format!("[{per_shard}]"))
            .f64("shard_imbalance", r.imbalance)
            .u64("background_flushes", r.flushes);
        println!("ROW:{}", o.finish());
    }

    // Acceptance: sharding preserves design goal 2 in every shard and
    // buys real ingest parallelism.
    for r in &results {
        for (i, &rw) in r.per_shard_random_writes.iter().enumerate() {
            assert_eq!(rw, 0, "design goal 2 violated in shard {i} of {}", r.shards);
        }
        assert_eq!(r.random_writes, 0, "design goal 2 ({} shards)", r.shards);
        assert!(r.flushes > 0, "workers must flush ({} shards)", r.shards);
    }
    let four = results.last().expect("4-shard run");
    assert!(
        four.updates_per_sec >= 1.8 * base,
        "4 shards must ingest >= 1.8x one shard (got {:.2}x)",
        four.updates_per_sec / base
    );
    println!(
        "\nOK: 4 shards ingest {:.2}x the single-shard rate ({:.0} vs {:.0} updates/s), \
         zero random writes everywhere",
        four.updates_per_sec / base,
        four.updates_per_sec,
        base
    );

    if let (Some(path), Some(tracer)) = (trace_out, tracer) {
        let json_text = tracer.export_chrome_trace();
        let doc = parse(&json_text).expect("trace export must be valid JSON");
        let Some(JsonValue::Arr(events)) = doc.get("traceEvents") else {
            panic!("trace export must carry a traceEvents array");
        };
        // Every shard's process track must have flushed in background.
        for shard in 0..4u64 {
            let flushed = events.iter().any(|e| {
                matches!(e.get("ph"), Some(JsonValue::Str(p)) if p == "X")
                    && matches!(e.get("name"), Some(JsonValue::Str(n)) if n == "job.flush")
                    && e.get_u64("pid") == Some(shard)
            });
            assert!(
                flushed,
                "no complete job.flush span on shard {shard}'s track"
            );
        }
        std::fs::write(&path, &json_text).expect("write trace file");
        let ts = tracer.stats();
        println!(
            "TRACE:ok shards=4 events={} emitted={} dropped={} path={path}",
            events.len(),
            ts.emitted,
            ts.dropped
        );
    }
}
