//! §4.2 "HDD as Update Cache": replace the SSD update cache with a
//! second SATA disk.
//!
//! Paper result: 28.8× query slowdown at 1 MB ranges and 4.7× at 10 MB —
//! the disk's terrible random-read latency makes the per-run cache reads
//! dominate small scans. "This shows the significance of MaSM's use of
//! SSDs for the update cache."

use masm_bench::*;
use masm_pagestore::{HeapConfig, TableHeap};
use masm_storage::{DeviceProfile, SimDevice, MIB};
use std::sync::Arc;

fn build(cache_profile: DeviceProfile, mb: u64) -> SyntheticEnv {
    // Assemble an env manually so the cache device profile is ours.
    let machine = Machine::new();
    let cache = SimDevice::in_memory(cache_profile, machine.clock.clone());
    let table = masm_workloads::synthetic::SyntheticTable::with_bytes(mb * MIB);
    let mut cfg = scaled_masm_config(mb * MIB);
    cfg.migration_threshold = 1.0;
    let heap = Arc::new(TableHeap::new(machine.disk.clone(), HeapConfig::default()));
    let engine =
        masm_core::MasmEngine::new(heap, cache, machine.wal.clone(), table.schema.clone(), cfg)
            .unwrap();
    let session = machine.session();
    engine.load_table(&session, table.records(), 1.0).unwrap();
    let table_bytes = mb * MIB;
    SyntheticEnv {
        machine,
        engine,
        table,
        table_bytes,
    }
}

fn avg(ns: Vec<u64>) -> u64 {
    ns.iter().sum::<u64>() / ns.len().max(1) as u64
}

fn main() {
    let mb = scale_mb();
    let baseline = SyntheticEnv::new(mb);

    let ssd_env = build(DeviceProfile::ssd_x25e(), mb);
    ssd_env.fill_cache(0.5, 42);
    let hdd_env = build(DeviceProfile::hdd_barracuda(), mb);
    hdd_env.fill_cache(0.5, 42);

    let mut rows = Vec::new();
    for &size in &[MIB, 10 * MIB] {
        let ranges = baseline.ranges(size, 5);
        let base = avg(ranges
            .iter()
            .map(|&(b, e)| baseline.time_pure_scan(b, e))
            .collect());
        let ssd = avg(ranges
            .iter()
            .map(|&(b, e)| ssd_env.time_masm_scan(b, e))
            .collect());
        let hdd = avg(ranges
            .iter()
            .map(|&(b, e)| hdd_env.time_masm_scan(b, e))
            .collect());
        rows.push(vec![size_label(size), ratio(ssd, base), ratio(hdd, base)]);
    }
    print_table(
        &format!("§4.2 — SSD vs HDD as the update cache (table {mb} MiB, cache 50% full)"),
        &["range", "MaSM w/ SSD cache", "MaSM w/ HDD cache"],
        &rows,
    );
    println!(
        "\npaper shape: HDD cache slows 1 MB scans ~28.8x and 10 MB scans ~4.7x;\n\
         the SSD cache stays within a few percent of the pure scan."
    );
}
