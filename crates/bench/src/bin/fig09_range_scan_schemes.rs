//! Figure 9: impact of online update schemes on range scan performance,
//! varying the range size from one disk page to the whole table.
//!
//! Paper result (100 GB table, 4 GB flash 50% full):
//! * in-place updates: 1.7–3.7× slowdowns, *worse* at small ranges;
//! * IU: 1.1–3.8× slowdowns (random 4 KB SSD reads per cached entry);
//! * MaSM w/ coarse-grain index: ≈1× at ≥100 MB ranges, up to 2.9× at
//!   4 KB ranges (reads one full index cell per run);
//! * MaSM w/ fine-grain index: ≤1.07× everywhere (4% at 4 KB ranges).
//!
//! Scaled: table = `MASM_BENCH_MB` MiB (default 64), cache 4% of the
//! table, 50% full. Times are normalized to the same scan on a clean
//! table.

use masm_bench::*;
use masm_core::IndexGranularity;
use masm_storage::MIB;

fn avg(ns: Vec<u64>) -> u64 {
    ns.iter().sum::<u64>() / ns.len().max(1) as u64
}

fn main() {
    let mb = scale_mb();
    let table_bytes = mb * MIB;
    let sizes: Vec<u64> = vec![
        4 * 1024,
        100 * 1024,
        MIB,
        10 * MIB,
        table_bytes / 2,
        table_bytes,
    ];
    let reps = 5usize;

    // Baseline: clean table, no updates anywhere.
    let baseline = SyntheticEnv::new(mb);

    // MaSM with fine- and coarse-grain run indexes, cache 50% full.
    let masm_fine = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.index_granularity = IndexGranularity::Bytes(1024);
        cfg.migration_threshold = 1.0;
    });
    masm_fine.fill_cache(0.5, 42);
    let masm_coarse = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.index_granularity = IndexGranularity::Bytes(64 * 1024);
        cfg.migration_threshold = 1.0;
    });
    masm_coarse.fill_cache(0.5, 42);

    // IU: same machine shape, cache the same number of updates.
    let iu_env = SyntheticEnv::new(mb);
    let iu = masm_baselines::IuEngine::new(
        std::sync::Arc::clone(iu_env.engine.heap()),
        iu_env.machine.ssd.clone(),
        iu_env.table.schema.clone(),
    );
    {
        let session = iu_env.machine.session();
        let (masm_updates, _) = masm_fine.engine.ingest_stats();
        let mut gen = masm_workloads::synthetic::UpdateStreamGen::uniform(
            iu_env.table.clone(),
            masm_workloads::synthetic::UpdateMix::default(),
            42,
        );
        for ts in 1..=masm_updates {
            let (key, op) = gen.next_update();
            iu.apply_update(&session, key, op, ts).unwrap();
        }
    }

    // In-place: fresh table hammered during the scan.
    let inplace_env = SyntheticEnv::new(mb);

    let mut rows = Vec::new();
    for &size in &sizes {
        let count = if size <= MIB { reps * 2 } else { reps };
        let ranges = baseline.ranges(size, count);
        let base = avg(ranges
            .iter()
            .map(|&(b, e)| baseline.time_pure_scan(b, e))
            .collect());
        let inplace = avg(ranges
            .iter()
            .enumerate()
            .map(|(i, &(b, e))| time_scan_with_inplace_updates(&inplace_env, b, e, 100 + i as u64))
            .collect());
        let iu_t = avg(ranges
            .iter()
            .map(|&(b, e)| {
                let session = iu_env.machine.session();
                let start = session.now();
                let n = iu
                    .begin_scan(session.clone(), b, e, u64::MAX)
                    .unwrap()
                    .count();
                std::hint::black_box(n);
                session.now() - start
            })
            .collect());
        let coarse = avg(ranges
            .iter()
            .map(|&(b, e)| masm_coarse.time_masm_scan(b, e))
            .collect());
        let fine = avg(ranges
            .iter()
            .map(|&(b, e)| masm_fine.time_masm_scan(b, e))
            .collect());
        rows.push(vec![
            size_label(size),
            ratio(inplace, base),
            ratio(iu_t, base),
            ratio(coarse, base),
            ratio(fine, base),
        ]);
    }

    print_table(
        &format!(
            "Figure 9 — range scans with online updates, normalized to no-update scans \
             (table {mb} MiB, cache 50% full)"
        ),
        &["range", "in-place", "IU", "MaSM coarse", "MaSM fine"],
        &rows,
    );
    println!(
        "\npaper shape: in-place 1.7-3.7x (worst at small ranges); IU worst in the middle;\n\
         MaSM coarse ~1x at large ranges, up to ~2.9x at 4KB; MaSM fine <=1.07x everywhere."
    );
}
