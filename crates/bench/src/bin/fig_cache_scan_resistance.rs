//! Cache scan resistance: hot point lookups interleaved with cold full
//! scans larger than the cache, across {lru, slru, slru_tier2} ×
//! {identity, lz}.
//!
//! The paper's headline workload — table range scans over data that is
//! also served point queries — is exactly what a plain LRU block cache
//! handles worst: every cold sweep larger than capacity evicts the
//! entire hot set, so the hot lookups pay device reads forever. The
//! segmented (SLRU) tier-1 policy pins re-referenced blocks in a
//! protected segment that sweeps cannot displace, and the compressed
//! victim tier absorbs the sweep itself when its *stored* bytes fit —
//! with the LZ codec the same byte budget holds ~3× the blocks, so
//! re-sweeps run entirely device-free.
//!
//! Emits one JSON object (line prefixed `JSON:`) with one row per
//! policy × codec, and asserts the two acceptance bounds itself:
//! SLRU ≥ 2× the LRU hot-set hit rate, and tier 2 (lz) serving ≥ 1.5×
//! more blocks without device reads than tier 1 alone. CI smoke-runs
//! this binary at `MASM_BENCH_MB=8`.

use std::sync::Arc;

use masm_bench::{print_table, scale_mb};
use masm_blockrun::{
    point_lookup, write_run, BlockCache, BlockCacheConfig, BlockRunConfig, BlockRunScan,
    CachePolicy, CodecChoice, Entry,
};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice, MIB};
use masm_telemetry::json::{parse, JsonObj};
use masm_telemetry::NdjsonWriter;

/// One measured configuration.
struct Row {
    policy: &'static str,
    codec: CodecChoice,
    hot_hits: u64,
    hot_accesses: u64,
    no_device_blocks: u64,
    device_reads: u64,
    tier2_hits: u64,
    promotions: u64,
    evictions: u64,
    compression_ratio: f64,
}

impl Row {
    fn hot_hit_rate(&self) -> f64 {
        if self.hot_accesses == 0 {
            return 0.0;
        }
        self.hot_hits as f64 / self.hot_accesses as f64
    }
}

const MEASURED_ROUNDS: usize = 3;

fn run_workload(
    policy_label: &'static str,
    policy: CachePolicy,
    tier2: bool,
    codec: CodecChoice,
    raw_bytes: u64,
    ts: &mut NdjsonWriter<Vec<u8>>,
) -> Row {
    let clock = SimClock::new();
    let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let session = SessionHandle::fresh(clock);

    // A compressible table-sized run: constant 64-byte payloads give
    // the LZ codec its ~3x ratio while identity stores raw bytes.
    let entry_bytes = 20 + 64;
    let count = raw_bytes / entry_bytes;
    let entries: Vec<Entry> = (0..count)
        .map(|k| Entry::new(k * 2, k + 1, vec![7u8; 64]))
        .collect();
    let cfg = BlockRunConfig {
        block_bytes: 16 * 1024,
        bloom_bits_per_key: 10,
        codec,
    };
    let meta = Arc::new(write_run(&session, &dev, 0, &cfg, &entries).unwrap());
    let n_blocks = meta.zones.len();
    let comp = meta.compression();

    // Decoded footprint, for sizing: the sweep must exceed tier-1
    // capacity by a wide margin (4x here).
    let decoded_bytes: usize = entries.iter().map(Entry::weight).sum::<usize>() + 64 * n_blocks;
    let t1_cap = decoded_bytes / 4;
    let cache = Arc::new(BlockCache::with_config(BlockCacheConfig {
        shards: 4,
        policy,
        tier2_bytes: if tier2 { t1_cap } else { 0 },
        ..BlockCacheConfig::new(t1_cap)
    }));

    // Hot set: every 10th block's first key — decoded it occupies half
    // the protected segment, so it fits comfortably once promoted.
    let hot_keys: Vec<u64> = meta.zones.iter().step_by(10).map(|z| z.min_key).collect();

    let sweep = |cache: &Arc<BlockCache>| {
        let scan = BlockRunScan::new(
            dev.clone(),
            session.clone(),
            Arc::clone(&meta),
            Some(Arc::clone(cache)),
            1,
            0,
            u64::MAX,
        )
        .with_prefetch_depth(4);
        std::hint::black_box(scan.count());
    };
    let hot_pass = |cache: &Arc<BlockCache>| {
        for &k in &hot_keys {
            let found = point_lookup(&session, &dev, &meta, k, Some((cache, 1))).unwrap();
            std::hint::black_box(found.len());
        }
    };

    // Warmup: two hot passes (admission, then the re-reference that
    // promotes under SLRU), one cold sweep.
    hot_pass(&cache);
    hot_pass(&cache);
    sweep(&cache);

    // Measured rounds: one hot pass interleaved with one cold sweep.
    cache.reset_stats();
    let reads_before = dev.stats().read_ops;
    let mut hot_hits = 0u64;
    let mut hot_accesses = 0u64;
    for round in 0..MEASURED_ROUNDS {
        let before = cache.stats();
        let round_reads = dev.stats().read_ops;
        hot_pass(&cache);
        let after = cache.stats();
        let round_hits = after.no_device_hits() - before.no_device_hits();
        let round_lookups = after.lookups() - before.lookups();
        hot_hits += round_hits;
        hot_accesses += round_lookups;
        sweep(&cache);
        // One NDJSON time-series row per measured round, so the CI
        // smoke output shows whether the hot set stays resident across
        // sweeps or degrades round over round.
        let mut row = JsonObj::new();
        row.str("policy", policy_label)
            .str("codec", codec.name())
            .u64("round", round as u64)
            .u64("hot_hits", round_hits)
            .u64("hot_lookups", round_lookups)
            .u64("device_reads", dev.stats().read_ops - round_reads)
            .u64("tier2_hits", after.tier2_hits - before.tier2_hits);
        ts.row(&row.finish()).unwrap();
    }
    let stats = cache.stats();
    Row {
        policy: policy_label,
        codec,
        hot_hits,
        hot_accesses,
        no_device_blocks: stats.no_device_hits(),
        device_reads: dev.stats().read_ops - reads_before,
        tier2_hits: stats.tier2_hits,
        promotions: stats.promotions,
        evictions: stats.evictions,
        compression_ratio: comp.ratio(),
    }
}

fn main() {
    let mb = scale_mb();
    let raw_bytes = mb * MIB;

    let mut rows = Vec::new();
    let mut ts = NdjsonWriter::new(Vec::new());
    for codec in [CodecChoice::Identity, CodecChoice::Lz] {
        for (label, policy, tier2) in [
            ("lru", CachePolicy::Lru, false),
            ("slru", CachePolicy::Slru, false),
            ("slru_tier2", CachePolicy::Slru, true),
        ] {
            rows.push(run_workload(
                label, policy, tier2, codec, raw_bytes, &mut ts,
            ));
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.to_string(),
                r.codec.name().to_string(),
                format!("{:.3}", r.hot_hit_rate()),
                r.no_device_blocks.to_string(),
                r.device_reads.to_string(),
                r.tier2_hits.to_string(),
                format!("{:.3}", r.compression_ratio),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Cache scan resistance — hot lookups vs cold sweeps > capacity ({mb} MiB run, \
             cache 1/4 of decoded size, {MEASURED_ROUNDS} measured rounds)"
        ),
        &[
            "policy",
            "codec",
            "hot_hit_rate",
            "no_dev_blocks",
            "dev_reads",
            "tier2_hits",
            "stored/raw",
        ],
        &table,
    );

    // Per-round time series, one `TS:` line per measured round; each
    // row is self-checked to parse before printing.
    println!();
    let ts_expected = rows.len() as u64 * MEASURED_ROUNDS as u64;
    assert_eq!(ts.rows(), ts_expected, "one TS row per config x round");
    let buf = String::from_utf8(ts.into_inner().unwrap()).unwrap();
    for line in buf.lines() {
        let row = parse(line).expect("TS row parses as JSON");
        assert!(row.get("hot_lookups").is_some());
        println!("TS:{line}");
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"policy\":\"{}\",\"codec\":\"{}\",\"hot_hit_rate\":{:.4},\
                 \"hot_hits\":{},\"hot_accesses\":{},\"no_device_blocks\":{},\
                 \"device_reads\":{},\"tier2_hits\":{},\"promotions\":{},\
                 \"evictions\":{},\"compression_ratio\":{:.4}}}",
                r.policy,
                r.codec.name(),
                r.hot_hit_rate(),
                r.hot_hits,
                r.hot_accesses,
                r.no_device_blocks,
                r.device_reads,
                r.tier2_hits,
                r.promotions,
                r.evictions,
                r.compression_ratio
            )
        })
        .collect();
    println!(
        "\nJSON:{{\"figure\":\"fig_cache_scan_resistance\",\"table_mb\":{mb},\
         \"rows\":[{}]}}",
        json_rows.join(",")
    );

    // Acceptance bounds — regressions fail the CI smoke run.
    let find = |policy: &str, codec: CodecChoice| {
        rows.iter()
            .find(|r| r.policy == policy && r.codec == codec)
            .expect("row present")
    };
    for codec in [CodecChoice::Identity, CodecChoice::Lz] {
        let lru = find("lru", codec);
        let slru = find("slru", codec);
        assert!(
            slru.hot_hit_rate() >= 2.0 * lru.hot_hit_rate() && slru.hot_hit_rate() > 0.5,
            "{}: slru hot rate {:.3} must be >= 2x lru {:.3} and > 0.5",
            codec.name(),
            slru.hot_hit_rate(),
            lru.hot_hit_rate()
        );
    }
    let t1_only = find("slru", CodecChoice::Lz);
    let t2 = find("slru_tier2", CodecChoice::Lz);
    assert!(
        t2.no_device_blocks as f64 >= 1.5 * t1_only.no_device_blocks as f64,
        "tier 2 (lz) must serve >= 1.5x more blocks without device reads: {} vs {}",
        t2.no_device_blocks,
        t1_only.no_device_blocks
    );
    println!(
        "\nPASS: slru >= 2x lru hot-set hit rate on both codecs; \
         slru+tier2 (lz) served {:.1}x the device-free blocks of tier 1 alone.",
        t2.no_device_blocks as f64 / t1_only.no_device_blocks.max(1) as f64
    );
}
