//! Figure 1: migration overhead of differential updates as a function of
//! the memory buffer size, normalized to the prior state of the art with
//! 16 GB of memory (log-log in the paper; we print the values).
//!
//! Prior approaches cache updates *in memory*: halving migration
//! overhead requires doubling memory. MaSM caches on flash and needs
//! only `αM` memory pages for an `M²`-page cache, so doubling memory
//! cuts migration overhead by 4× (§3.7).

use masm_bench::print_table;
use masm_core::theory::MigrationModel;

fn main() {
    let model = MigrationModel::paper_defaults();
    let reference = model.in_memory_overhead(16.0 * 1024.0 * 1024.0 * 1024.0);

    let mems_mb: Vec<f64> = vec![
        16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0, 16384.0,
    ];
    let mut rows = Vec::new();
    for &mb in &mems_mb {
        let bytes = mb * 1024.0 * 1024.0;
        let prior = model.in_memory_overhead(bytes) / reference;
        let masm = model.masm_overhead(bytes, 1.0) / reference;
        let cache_gb = model.masm_cache_bytes(bytes, 1.0) / 1e9;
        rows.push(vec![
            format!("{mb:.0} MB"),
            format!("{prior:.3}"),
            format!("{masm:.6}"),
            format!("{cache_gb:.1} GB"),
        ]);
    }
    print_table(
        "Figure 1 — migration overhead vs memory (normalized to state-of-the-art @16GB)",
        &[
            "memory",
            "state-of-the-art",
            "MaSM (ours)",
            "MaSM SSD cache",
        ],
        &rows,
    );
    println!(
        "\npaper shape: prior curve halves per memory doubling; MaSM curve quarters.\n\
         §3.7 example: a 32 MB MaSM buffer matches the migration overhead of a 16 GB\n\
         in-memory cache (MaSM cache at 32 MB memory = {:.1} GB).",
        model.masm_cache_bytes(32.0 * 1024.0 * 1024.0, 1.0) / 1e9
    );
}
