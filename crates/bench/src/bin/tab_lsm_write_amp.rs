//! §2.3 analysis (Figure 5(c) discussion): writes per update entry when
//! LSM is applied to IU, analytically and measured on our LSM-IU
//! baseline.
//!
//! Paper numbers for 4 GB flash / 16 MB memory: a 2-level LSM (h = 1)
//! writes each entry ≈128 times; the write-optimal LSM has h = 4 and
//! still writes each entry ≈17 times — "applying LSM on an SSD reduces
//! its lifetime 17 fold (e.g., from 3 years to 2 months)".

use masm_baselines::lsm::{LsmConfig, LsmEngine};
use masm_bench::print_table;
use masm_core::theory::{lsm_optimal_levels, lsm_writes_per_update};
use masm_core::update::UpdateOp;
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use std::sync::Arc;

fn measured_amp(h: u32) -> f64 {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let session = SessionHandle::fresh(clock);
    let schema = Schema::synthetic_100b();
    heap.bulk_load(
        &session,
        (0..1000u64).map(|i| Record::new(i * 2, Record::synthetic(0, 92).payload)),
        1.0,
    )
    .unwrap();
    let mem = 2048usize;
    let flash = mem as u64 * 256; // same flash:memory ratio as the paper
    let engine = LsmEngine::new(heap, ssd, schema, LsmConfig::with_levels(mem, flash, h));
    // Unique keys so duplicate folding cannot shrink levels.
    for i in 0..40_000u64 {
        engine
            .apply_update(&session, i, UpdateOp::Delete, i + 1)
            .unwrap();
    }
    engine.write_amplification()
}

fn main() {
    // Analytic table at the paper's exact setting.
    let flash_pages = 65536u64; // 4 GB / 64 KB
    let mem_pages = 256u64; // 16 MB / 64 KB
    let mut rows = Vec::new();
    for h in 1..=6u32 {
        let analytic = lsm_writes_per_update(flash_pages, mem_pages, h);
        rows.push(vec![format!("h={h}"), format!("{analytic:.1}")]);
    }
    let (h_opt, w_opt) = lsm_optimal_levels(flash_pages, mem_pages);
    print_table(
        "LSM-IU writes per update — analytic (4 GB flash, 16 MB memory, §2.3)",
        &["levels", "writes/update"],
        &rows,
    );
    println!("optimal: h={h_opt} with {w_opt:.1} writes/update (paper: h=4, ≈17)");

    // Measured on the simulated LSM at the same flash:memory ratio.
    let mut rows = Vec::new();
    for h in [1u32, 2, 4] {
        rows.push(vec![format!("h={h}"), format!("{:.1}", measured_amp(h))]);
    }
    print_table(
        "LSM-IU writes per update — measured (scaled, same flash:memory ratio)",
        &["levels", "bytes written / byte ingested"],
        &rows,
    );
    println!(
        "\npaper shape: h=1 ≈ 128 writes/update analytically; deeper trees write less,\n\
         bottoming out ≈17 at h=4 — still an order of magnitude above MaSM's ≤2."
    );
}
