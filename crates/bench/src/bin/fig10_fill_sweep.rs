//! Figure 10: MaSM range scans while varying how full the SSD update
//! cache is (25% / 50% / 75% / 99%), with migration disabled.
//!
//! Paper result: "in all cases, MaSM achieves performance comparable to
//! range scans without updates. At 4KB ranges, MaSM incurs only 3%–7%
//! overheads." The same data read another way: doubling the flash space
//! at constant fill has the same profile.

use masm_bench::*;
use masm_storage::MIB;

fn avg(ns: Vec<u64>) -> u64 {
    ns.iter().sum::<u64>() / ns.len().max(1) as u64
}

fn main() {
    let mb = scale_mb();
    let table_bytes = mb * MIB;
    let sizes: Vec<u64> = vec![
        4 * 1024,
        100 * 1024,
        MIB,
        10 * MIB,
        table_bytes / 2,
        table_bytes,
    ];
    let fills = [0.25, 0.50, 0.75, 0.99];

    let baseline = SyntheticEnv::new(mb);
    let envs: Vec<SyntheticEnv> = fills
        .iter()
        .map(|&f| {
            let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
                cfg.migration_threshold = 1.0; // §4.2: migration disabled
            });
            env.fill_cache(f, 42);
            env
        })
        .collect();

    let mut rows = Vec::new();
    for &size in &sizes {
        let ranges = baseline.ranges(size, 5);
        let base = avg(ranges
            .iter()
            .map(|&(b, e)| baseline.time_pure_scan(b, e))
            .collect());
        let mut row = vec![size_label(size)];
        for env in &envs {
            let t = avg(ranges
                .iter()
                .map(|&(b, e)| env.time_masm_scan(b, e))
                .collect());
            row.push(ratio(t, base));
        }
        rows.push(row);
    }
    print_table(
        &format!(
            "Figure 10 — MaSM scans vs cache fill (table {mb} MiB, fine index, migration off)"
        ),
        &["range", "25% full", "50% full", "75% full", "99% full"],
        &rows,
    );
    println!("\npaper shape: all cells within a few percent of 1.0x (<=1.07x at 4KB).");
}
