//! Ablation study of MaSM's design choices (not a paper figure; DESIGN.md
//! §5 calls these out):
//!
//! 1. **Run index granularity** — the mechanism behind Figure 9's
//!    coarse/fine split, extended with "no index" (whole-run reads) to
//!    show the index is what makes small scans cheap.
//! 2. **Duplicate folding** (§3.5) under skewed updates — how much cache
//!    space and scan work folding saves at materialization time.
//! 3. **The α spectrum** (§3.4) — query overhead stays flat while write
//!    amplification falls as memory doubles.

use masm_bench::*;
use masm_core::IndexGranularity;
use masm_storage::MIB;
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

fn avg(ns: Vec<u64>) -> u64 {
    ns.iter().sum::<u64>() / ns.len().max(1) as u64
}

fn main() {
    let mb = scale_mb().min(32);
    let baseline = SyntheticEnv::new(mb);

    // --- 1. Index granularity ------------------------------------------
    let mut rows = Vec::new();
    for (label, granularity) in [
        ("fine (1 KiB)", IndexGranularity::Bytes(1024)),
        ("coarse (64 KiB)", IndexGranularity::Bytes(64 * 1024)),
        ("none (whole-run)", IndexGranularity::Bytes(u64::MAX / 2)),
    ] {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            cfg.index_granularity = granularity;
            cfg.migration_threshold = 1.0;
        });
        env.fill_cache(0.5, 42);
        let mut row = vec![label.to_string()];
        for &size in &[4 * 1024u64, MIB] {
            let ranges = baseline.ranges(size, 5);
            let base = avg(ranges
                .iter()
                .map(|&(b, e)| baseline.time_pure_scan(b, e))
                .collect());
            let t = avg(ranges
                .iter()
                .map(|&(b, e)| env.time_masm_scan(b, e))
                .collect());
            row.push(ratio(t, base));
        }
        rows.push(row);
    }
    print_table(
        "Ablation 1 — run index granularity (cache 50% full)",
        &["index", "4KB scan", "1MB scan"],
        &rows,
    );

    // --- 2. Duplicate folding under skew --------------------------------
    let mut rows = Vec::new();
    for (label, fold) in [("folding on (§3.5)", true), ("folding off", false)] {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            cfg.merge_duplicates = fold;
            cfg.migration_threshold = 1.0;
        });
        let session = env.machine.session();
        // Very hot key set (1k slots) so duplicates dominate.
        let hot = masm_workloads::synthetic::SyntheticTable::new(1_000);
        let mut gen = UpdateStreamGen::zipf(hot, UpdateMix::default(), 0.99, 9);
        let mut ingested = 0u64;
        for _ in 0..10_000 {
            let (key, op) = gen.next_update();
            match env.engine.apply_update(&session, key, op) {
                Ok(_) => ingested += 1,
                Err(masm_core::MasmError::CacheFull { .. }) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let cached_kb = env.engine.cached_bytes() / 1024;
        let ranges = baseline.ranges(MIB, 5);
        let base = avg(ranges
            .iter()
            .map(|&(b, e)| baseline.time_pure_scan(b, e))
            .collect());
        let t = avg(ranges
            .iter()
            .map(|&(b, e)| env.time_masm_scan(b, e))
            .collect());
        rows.push(vec![
            label.to_string(),
            format!("{ingested}"),
            format!("{cached_kb} KiB"),
            ratio(t, base),
        ]);
    }
    print_table(
        "Ablation 2 — duplicate folding, 10k Zipf(0.99) updates over 1k hot keys",
        &["variant", "ingested", "cached bytes", "1MB scan"],
        &rows,
    );

    // --- 3. The alpha spectrum ------------------------------------------
    let mut rows = Vec::new();
    for alpha in [0.5f64, 1.0, 2.0] {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            cfg.alpha = alpha;
            cfg.migration_threshold = 1.0;
            cfg.merge_duplicates = false;
            cfg.ssd_page_size = 1024;
            cfg.ssd_capacity = 4 * 1024 * 1024;
            cfg.index_granularity = IndexGranularity::Bytes(512);
        });
        env.machine.ssd.reset_stats();
        env.fill_cache(0.5, 42);
        // Force the run-budget merges that cost the extra writes.
        let session = env.machine.session();
        let _ = env.engine.begin_scan(session, 0, 10).unwrap().count();
        let (_, logical) = env.engine.ingest_stats();
        let amp = env.machine.ssd.stats().bytes_written as f64 / logical.max(1) as f64;
        let mem_kb = env.engine.config().total_memory_bytes() / 1024;
        let ranges = baseline.ranges(MIB, 5);
        let base = avg(ranges
            .iter()
            .map(|&(b, e)| baseline.time_pure_scan(b, e))
            .collect());
        let t = avg(ranges
            .iter()
            .map(|&(b, e)| env.time_masm_scan(b, e))
            .collect());
        rows.push(vec![
            format!("α = {alpha}"),
            format!("{mem_kb} KiB"),
            format!("{amp:.2}"),
            ratio(t, base),
        ]);
    }
    print_table(
        "Ablation 3 — MaSM-αM spectrum (memory vs SSD writes vs query overhead)",
        &["variant", "memory", "writes/updateB", "1MB scan"],
        &rows,
    );
    println!(
        "\ntakeaways: the run index is what keeps small scans cheap; folding shrinks\n\
         the cache by the duplicate factor under skew; α trades memory for SSD\n\
         lifetime without touching query overhead."
    );
}
