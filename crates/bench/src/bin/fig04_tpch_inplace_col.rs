//! Figure 4: TPC-H queries with emulated random in-place updates on a
//! column store.
//!
//! The paper's column-store DBMS only supports offline updates, so it
//! replays recorded update I/O traces alongside the queries. Column
//! scans read only the referenced columns — a fraction of each table's
//! bytes — which makes the sequential portion shorter relative to the
//! same random update traffic, and the measured slowdowns slightly
//! worse: 1.2–4.0× (2.6× on average).
//!
//! We emulate the column store by scaling every scan range to 35% of
//! its row-store bytes (a typical referenced-column fraction for TPC-H)
//! while the updates stay identical.

use masm_bench::tpch_replay::{TpchEnv, TpchInPlaceUpdater};
use masm_bench::*;
use masm_storage::MIB;
use masm_workloads::tpch::TPCH_QUERIES;

const COLUMN_FRACTION: f64 = 0.35;

fn main() {
    let mb = scale_mb();
    let total_bytes = mb * MIB;

    let mut rows = Vec::new();
    let mut sum_with = 0f64;
    for q in TPCH_QUERIES {
        let env = TpchEnv::new(total_bytes);
        let no_updates = env.time_query(q, COLUMN_FRACTION);

        let env2 = TpchEnv::new(total_bytes);
        let mut updater = TpchInPlaceUpdater::new(&env2, 13);
        let with_updates =
            env2.time_query_with(q, COLUMN_FRACTION, &mut |now| updater.catch_up(now));

        let ratio = with_updates as f64 / no_updates as f64;
        sum_with += ratio;
        rows.push(vec![
            q.name.to_string(),
            format!("{:.3}", secs(no_updates)),
            format!("{ratio:.2}x"),
        ]);
    }
    print_table(
        &format!(
            "Figure 4 — TPC-H replay with emulated in-place updates, column store \
             ({mb} MiB of tables, {:.0}% column fraction)",
            COLUMN_FRACTION * 100.0
        ),
        &["query", "no-updates (s)", "w/ updates"],
        &rows,
    );
    println!(
        "\naverage: {:.2}x\npaper shape: 1.2-4.0x slowdowns, 2.6x on average — worse than the\n\
         row store because column scans are shorter relative to the same update traffic.",
        sum_with / TPCH_QUERIES.len() as f64
    );
}
