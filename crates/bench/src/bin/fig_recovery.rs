//! Crash recovery under load: pull the plug on a live sharded
//! deployment and measure what comes back.
//!
//! The paper's §3.6 recovery argument is that MaSM only needs to
//! rebuild the small in-memory update buffer from the redo log —
//! materialized runs, the heap, and interrupted migrations all recover
//! from non-volatile state plus idempotent redo. This figure stresses
//! that claim at its hardest point: a 3-shard engine with background
//! workers mid-flight, concurrent ingest lanes, and device snapshots
//! taken at arbitrary moments ("the power cable") — including one crash
//! point whose WAL is additionally cut mid-record to force a torn tail.
//!
//! For every crash point the binary recovers via
//! [`masm_core::ShardedEngine::recover`] and verifies the recovery
//! contract:
//!
//! * **zero lost acknowledged updates** — every `put` that returned
//!   before the snapshot began is present in a post-recovery scan,
//! * **zero random SSD writes** — recovery re-primes the sequential
//!   write heads, so migration redo and fresh post-recovery ingest on
//!   the recovered devices stay append-only (design goal 2 survives the
//!   crash),
//! * torn WAL tails are truncated and counted, never fatal.
//!
//! Snapshot ordering mirrors a real single-point-in-time crash: each
//! shard's WAL is snapshotted before its SSD and the heap disk last, so
//! a WAL record can only name payload bytes the other snapshots
//! contain (the engine makes run bytes and heap pages durable before
//! logging them).
//!
//! Output: a summary table plus one `ROW:{json}` line per crash point
//! with `lost_updates`, `random_writes`, the replay/torn-tail counts,
//! and the virtual-time recovery cost. CI smoke-runs this binary at
//! `MASM_BENCH_MB=8` and greps the rows for `"lost_updates":0` and
//! `"random_writes":0`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread;

use masm_bench::*;
use masm_core::update::UpdateRecord;
use masm_core::{ShardedEngine, ShardingConfig, SplitPolicy};
use masm_pagestore::{HeapConfig, Key, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice, MIB};
use masm_telemetry::json::JsonObj;

const LANES: u64 = 3;
const KEYS_PER_LANE: u64 = 512;
const BASE: Key = 1 << 40;

fn lane_key(lane: u64, j: u64) -> Key {
    BASE + lane * (1 << 20) + j % KEYS_PER_LANE
}

/// One ingest lane's acknowledgement log: `(key, value)` pushed only
/// after the corresponding put returned (i.e. after its WAL record
/// became durable).
type AckLog = Arc<Mutex<Vec<(Key, u32)>>>;

struct CrashPoint {
    label: &'static str,
    /// Per-lane count of acks durable before the snapshot began.
    acked: Vec<usize>,
    disk: SimDevice,
    ssds: Vec<SimDevice>,
    wals: Vec<SimDevice>,
}

struct Outcome {
    label: &'static str,
    acked_at_crash: usize,
    lost_updates: u64,
    updates_recovered: u64,
    runs_recovered: u64,
    records_replayed: u64,
    torn_tails: u64,
    torn_bytes: u64,
    migrations_redriven: usize,
    recovery_virtual_ns: u64,
    random_writes: u64,
}

/// Snapshot the deployment mid-flight: per shard WAL before SSD, heap
/// disk last (see module docs).
fn crash_snapshot(
    label: &'static str,
    disk: &SimDevice,
    ssds: &[SimDevice],
    wals: &[SimDevice],
    acked: Vec<usize>,
) -> CrashPoint {
    let clock = SimClock::new();
    let mut snap_ssds = Vec::with_capacity(ssds.len());
    let mut snap_wals = Vec::with_capacity(wals.len());
    for (ssd, wal) in ssds.iter().zip(wals) {
        snap_wals.push(wal.snapshot(clock.clone()).expect("wal snapshot"));
        snap_ssds.push(ssd.snapshot(clock.clone()).expect("ssd snapshot"));
    }
    CrashPoint {
        label,
        acked,
        disk: disk.snapshot(clock).expect("disk snapshot"),
        ssds: snap_ssds,
        wals: snap_wals,
    }
}

fn recover_and_verify(
    point: &CrashPoint,
    cfg: &masm_core::MasmConfig,
    schema: &Schema,
    acks: &[AckLog],
) -> Outcome {
    let clock = point.disk.clock().clone();
    let t0 = clock.now();
    let heap = Arc::new(TableHeap::new(point.disk.clone(), HeapConfig::default()));
    let (engine, report) = ShardedEngine::recover(
        heap,
        point.ssds.clone(),
        point.wals.clone(),
        schema.clone(),
        cfg.clone(),
    )
    .unwrap_or_else(|e| panic!("crash point '{}' failed to recover: {e}", point.label));
    let recovery_virtual_ns = clock.now() - t0;

    // Per-key floor: the newest value each lane had acknowledged before
    // the plug was pulled. The recovered value may be newer (durable
    // but unacked), never older or missing.
    let mut floor: HashMap<Key, u32> = HashMap::new();
    for (lane, list) in acks.iter().enumerate() {
        let list = list.lock().unwrap();
        for &(key, j) in &list[..point.acked[lane]] {
            let e = floor.entry(key).or_insert(j);
            *e = (*e).max(j);
        }
    }
    let got: HashMap<Key, u32> = engine
        .scan(BASE, u64::MAX)
        .expect("post-recovery scan")
        .map(|r| (r.key, schema.get_u32(&r.payload, 0)))
        .collect();
    let lost_updates = floor
        .iter()
        .filter(|(key, min_j)| got.get(*key).is_none_or(|j| j < min_j))
        .count() as u64;

    // The recovered engine must stay live and sequential: fresh ingest
    // on every lane plus a full flush, all on the snapshot devices
    // whose write heads recovery re-primed.
    let session = SessionHandle::fresh(clock);
    for lane in 0..LANES {
        for j in 0..200u64 {
            let mut payload = schema.empty_payload();
            schema.set_u32(&mut payload, 0, u32::MAX);
            engine
                .put(&session, lane_key(lane, j), UpdateOp::Replace(payload))
                .expect("post-recovery put");
        }
    }
    engine.flush_all(&session).expect("post-recovery flush");
    let stats = engine.stats();
    let random_writes = stats.total.ssd.random_writes;
    engine.shutdown();

    Outcome {
        label: point.label,
        acked_at_crash: point.acked.iter().sum(),
        lost_updates,
        updates_recovered: report.updates_recovered(),
        runs_recovered: report.runs_recovered() as u64,
        records_replayed: report.wal_records_replayed(),
        torn_tails: report.torn_tails() as u64,
        torn_bytes: report.wal_torn_bytes(),
        migrations_redriven: report.migrations_redriven,
        recovery_virtual_ns,
        random_writes,
    }
}

fn main() {
    let mb = scale_mb();
    let schema = Schema::synthetic_100b();
    let mut cfg = scaled_masm_config(mb * MIB);
    cfg.ssd_capacity = cfg.ssd_capacity.max(4 * 64 * 4096);
    cfg.background_workers = 2;
    cfg.sharding = ShardingConfig {
        shards: LANES as usize,
        split_policy: SplitPolicy::Explicit((1..LANES).map(|k| BASE + k * (1 << 20)).collect()),
        max_concurrent_migrations: 1,
    };

    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let ssds: Vec<SimDevice> = (0..LANES)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let wals: Vec<SimDevice> = (0..LANES)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let engine = ShardedEngine::new(
        heap,
        ssds.clone(),
        wals.clone(),
        schema.clone(),
        cfg.clone(),
    )
    .expect("sharded config");

    // Size the stream against the flash budget, like the ingest sweep.
    let probe = UpdateRecord::new(1, 0, UpdateOp::Replace(schema.empty_payload())).encoded_len();
    let per_lane = (cfg.ssd_capacity * 50 / 100 / probe as u64 / LANES).max(1_000);
    let total = (LANES * per_lane) as usize;

    let acks: Vec<AckLog> = (0..LANES)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let mut lanes = Vec::new();
    for lane in 0..LANES {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let schema = schema.clone();
        let acked = Arc::clone(&acks[lane as usize]);
        lanes.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for j in 0..per_lane {
                let mut payload = schema.empty_payload();
                schema.set_u32(&mut payload, 0, j as u32);
                loop {
                    match engine.put(
                        &session,
                        lane_key(lane, j),
                        UpdateOp::Replace(payload.clone()),
                    ) {
                        Ok(_) => break,
                        Err(masm_core::MasmError::CacheFull { .. }) => {
                            thread::sleep(std::time::Duration::from_millis(1));
                        }
                        Err(e) => panic!("update failed: {e}"),
                    }
                }
                // Recorded only after the put returned, i.e. after its
                // WAL record became durable — so every entry counted at
                // snapshot time is guaranteed to be in the snapshot.
                acked.lock().unwrap().push((lane_key(lane, j), j as u32));
            }
        }));
    }

    // Pull the plug at three load levels while the lanes run.
    let mut crashes: Vec<CrashPoint> = Vec::new();
    for (label, threshold) in [
        ("early", total / 8),
        ("mid", total / 2),
        ("late", total * 9 / 10),
    ] {
        loop {
            let done: usize = acks.iter().map(|a| a.lock().unwrap().len()).sum();
            if done >= threshold {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        let cut: Vec<usize> = acks.iter().map(|a| a.lock().unwrap().len()).collect();
        crashes.push(crash_snapshot(label, &disk, &ssds, &wals, cut));
    }
    for lane in lanes {
        lane.join().expect("ingest lane");
    }
    engine.shutdown();

    // A fourth crash point that also tears every WAL mid-record: cut a
    // few bytes off each tail so recovery must truncate, not just stop.
    {
        let clock = SimClock::new();
        let cut: Vec<usize> = acks.iter().map(|a| a.lock().unwrap().len()).collect();
        // Only acks whose records survive the cut are guaranteed; a
        // 3-byte tail cut can only damage the final record of each WAL,
        // so back each lane's floor off by one update to stay sound.
        let cut = cut.iter().map(|&n| n.saturating_sub(1)).collect();
        let mut snap_ssds = Vec::new();
        let mut snap_wals = Vec::new();
        for (ssd, wal) in ssds.iter().zip(&wals) {
            let torn_len = wal.len().saturating_sub(3);
            snap_wals.push(
                wal.snapshot_prefix(clock.clone(), torn_len)
                    .expect("torn wal"),
            );
            snap_ssds.push(ssd.snapshot(clock.clone()).expect("ssd snapshot"));
        }
        crashes.push(CrashPoint {
            label: "torn_tail",
            acked: cut,
            disk: disk.snapshot(clock).expect("disk snapshot"),
            ssds: snap_ssds,
            wals: snap_wals,
        });
    }

    let outcomes: Vec<Outcome> = crashes
        .iter()
        .map(|p| recover_and_verify(p, &cfg, &schema, &acks))
        .collect();

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.label.to_string(),
                o.acked_at_crash.to_string(),
                o.updates_recovered.to_string(),
                o.runs_recovered.to_string(),
                o.records_replayed.to_string(),
                o.torn_tails.to_string(),
                o.migrations_redriven.to_string(),
                format!("{:.3}", secs(o.recovery_virtual_ns)),
                o.lost_updates.to_string(),
                o.random_writes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Crash recovery under load — {LANES}-shard engine, background workers, \
             plug pulled mid-ingest (table scale {mb} MiB)"
        ),
        &[
            "crash",
            "acked",
            "recovered",
            "runs",
            "replayed",
            "torn",
            "migr redo",
            "recovery (s)",
            "lost",
            "random writes",
        ],
        &rows,
    );
    println!(
        "\nshape: recovery replays only the redo log (runs and heap pages come back from\n\
         non-volatile state), so its cost tracks the update buffer, not the cache size;\n\
         torn tails truncate to the last durable record without losing acked updates."
    );
    for o in &outcomes {
        let mut row = JsonObj::new();
        row.str("crash", o.label)
            .u64("acked_at_crash", o.acked_at_crash as u64)
            .u64("lost_updates", o.lost_updates)
            .u64("updates_recovered", o.updates_recovered)
            .u64("runs_recovered", o.runs_recovered)
            .u64("wal_records_replayed", o.records_replayed)
            .u64("wal_torn_tails", o.torn_tails)
            .u64("wal_torn_bytes", o.torn_bytes)
            .u64("migrations_redriven", o.migrations_redriven as u64)
            .u64("recovery_virtual_ns", o.recovery_virtual_ns)
            .u64("random_writes", o.random_writes);
        println!("ROW:{}", row.finish());
    }

    // Acceptance: the recovery contract holds at every crash point.
    for o in &outcomes {
        assert_eq!(
            o.lost_updates, 0,
            "crash '{}' lost acknowledged updates",
            o.label
        );
        assert_eq!(
            o.random_writes, 0,
            "crash '{}' broke design goal 2 after recovery",
            o.label
        );
        assert!(
            o.records_replayed > 0,
            "crash '{}' replayed nothing",
            o.label
        );
    }
    let torn = outcomes.last().expect("torn-tail point");
    assert!(
        torn.torn_tails > 0 && torn.torn_bytes > 0,
        "the torn-tail crash point must exercise truncation"
    );
    println!(
        "\nOK: {} crash points recovered, 0 lost acked updates, 0 random writes, \
         torn tails truncated ({} bytes at the '{}' point)",
        outcomes.len(),
        torn.torn_bytes,
        torn.label
    );
}
