//! Figure 11: cost of an in-place update migration relative to a pure
//! table scan.
//!
//! Paper result: migrating a full 4 GB update cache while scanning the
//! table costs ≈2.3× a pure scan — the migration *is* a scan plus the
//! sequential write-back, so the factor sits a little above 2×. The
//! benefits (§4.2): updates to one page apply together, writes are
//! sequential not random, and main data is updated in place.

use masm_bench::*;
use masm_storage::MIB;

fn main() {
    let mb = scale_mb();

    // Pure full-table scan.
    let baseline = SyntheticEnv::new(mb);
    let scan_ns = baseline.time_pure_scan(0, u64::MAX);

    // Scan with migration of a full cache.
    let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.migration_threshold = 1.0;
    });
    env.fill_cache(0.95, 42);
    let session = env.machine.session();
    let start = session.now();
    let report = env.engine.migrate(&session).expect("migration");
    let mig_ns = session.now() - start;

    print_table(
        &format!("Figure 11 — migration vs pure scan (table {mb} MiB, cache ~95% full)"),
        &["configuration", "virtual time (s)", "normalized"],
        &[
            vec![
                "scan".into(),
                format!("{:.3}", secs(scan_ns)),
                "1.00x".into(),
            ],
            vec![
                "scan w/ migration".into(),
                format!("{:.3}", secs(mig_ns)),
                ratio(mig_ns, scan_ns),
            ],
        ],
    );
    println!(
        "\nmigrated {} runs, applied {} updates, wrote {} pages ({} MiB).",
        report.runs_migrated,
        report.updates_applied,
        report.pages_written,
        report.pages_written * 4096 / MIB,
    );
    println!("paper shape: scan w/ migration ≈ 2.3x a pure scan.");
}
