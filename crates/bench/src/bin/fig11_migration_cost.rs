//! Figure 11: cost of an in-place update migration relative to a pure
//! table scan — plus the zero-decode compaction experiment.
//!
//! Paper result: migrating a full 4 GB update cache while scanning the
//! table costs ≈2.3× a pure scan — the migration *is* a scan plus the
//! sequential write-back, so the factor sits a little above 2×. The
//! benefits (§4.2): updates to one page apply together, writes are
//! sequential not random, and main data is updated in place.
//!
//! The compaction section exercises the layered merge planner on two
//! workloads: *overlapping* (uniform random updates — every run covers
//! the whole key space, so nearly all blocks must be decoded and
//! merged) and *disjoint* (key-banded update batches — no two runs
//! overlap, so every block is relinked verbatim and `bytes_decoded`
//! stays 0). Emits one JSON object (line prefixed `JSON:`) so CI can
//! watch `blocks_moved` / `bytes_decoded` for merge-path regressions.

use masm_bench::*;
use masm_storage::{MergeReport, MIB};

struct CompactionRow {
    workload: &'static str,
    runs_in: usize,
    report: MergeReport,
}

/// Uniform random updates: runs overlap across the whole key space.
fn compaction_overlapping(mb: u64) -> CompactionRow {
    let env = SyntheticEnv::new(mb);
    env.fill_cache(0.8, 7);
    let session = env.machine.session();
    env.engine.flush_buffer(&session).expect("flush");
    let runs_in = env.engine.run_count();
    let report = env.engine.compact_runs(&session).expect("compaction");
    CompactionRow {
        workload: "overlapping",
        runs_in,
        report,
    }
}

/// Key-banded update batches: each run covers its own key band, so the
/// planner moves every block without decoding a byte.
fn compaction_disjoint(mb: u64) -> CompactionRow {
    let env = SyntheticEnv::new(mb);
    let session = env.machine.session();
    let bands = 6u64;
    let band_span = env.table.max_key() / bands;
    let payload = env.table.schema.empty_payload();
    // Stay well below the SSD capacity so every band flushes cleanly.
    let budget = env.engine.config().ssd_capacity * 7 / 10 / bands;
    'fill: for band in 0..bands {
        let band_start = env.engine.cached_bytes();
        let mut i = 0u64;
        while env.engine.cached_bytes() - band_start < budget || i < 64 {
            let key = band * band_span + (i * 37) % band_span.max(1);
            match env
                .engine
                .apply_update(&session, key, UpdateOp::Replace(payload.clone()))
            {
                Ok(_) => {}
                Err(masm_core::MasmError::CacheFull { .. }) => break 'fill,
                Err(e) => panic!("update failed: {e}"),
            }
            i += 1;
        }
        match env.engine.flush_buffer(&session) {
            Ok(()) | Err(masm_core::MasmError::CacheFull { .. }) => {}
            Err(e) => panic!("flush failed: {e}"),
        }
    }
    let runs_in = env.engine.run_count();
    let report = env.engine.compact_runs(&session).expect("compaction");
    CompactionRow {
        workload: "disjoint",
        runs_in,
        report,
    }
}

fn main() {
    let mb = scale_mb();

    // Pure full-table scan.
    let baseline = SyntheticEnv::new(mb);
    let scan_ns = baseline.time_pure_scan(0, u64::MAX);

    // Scan with migration of a full cache.
    let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.migration_threshold = 1.0;
    });
    env.fill_cache(0.95, 42);
    let session = env.machine.session();
    let start = session.now();
    let report = env.engine.migrate(&session).expect("migration");
    let mig_ns = session.now() - start;

    print_table(
        &format!("Figure 11 — migration vs pure scan (table {mb} MiB, cache ~95% full)"),
        &["configuration", "virtual time (s)", "normalized"],
        &[
            vec![
                "scan".into(),
                format!("{:.3}", secs(scan_ns)),
                "1.00x".into(),
            ],
            vec![
                "scan w/ migration".into(),
                format!("{:.3}", secs(mig_ns)),
                ratio(mig_ns, scan_ns),
            ],
        ],
    );
    println!(
        "\nmigrated {} runs, applied {} updates, wrote {} pages ({} MiB).",
        report.runs_migrated,
        report.updates_applied,
        report.pages_written,
        report.pages_written * 4096 / MIB,
    );
    println!("paper shape: scan w/ migration ≈ 2.3x a pure scan.");

    // --- Zero-decode compaction: overlapping vs disjoint runs --------
    let rows = [compaction_overlapping(mb), compaction_disjoint(mb)];
    print_table(
        "Compaction — layered merge planner (move vs merge)",
        &[
            "workload",
            "runs_in",
            "blocks_moved",
            "blocks_merged",
            "bytes_moved",
            "bytes_decoded",
            "move_ratio",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.runs_in.to_string(),
                    r.report.blocks_moved.to_string(),
                    r.report.blocks_merged.to_string(),
                    r.report.bytes_moved.to_string(),
                    r.report.bytes_decoded.to_string(),
                    format!("{:.2}", r.report.move_ratio()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let disjoint = &rows[1];
    assert_eq!(
        disjoint.report.bytes_decoded, 0,
        "disjoint-band compaction must decode nothing: {:?}",
        disjoint.report
    );
    println!(
        "\nexpected shape: disjoint bands move 100% of blocks (bytes_decoded == 0); \
         uniform updates decode nearly everything."
    );

    let compaction_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\":\"{}\",\"runs_in\":{},\"fan_in\":{},\"blocks_moved\":{},\
                 \"blocks_merged\":{},\"bytes_moved\":{},\"bytes_decoded\":{},\
                 \"entries_out\":{},\"move_ratio\":{:.4}}}",
                r.workload,
                r.runs_in,
                r.report.fan_in,
                r.report.blocks_moved,
                r.report.blocks_merged,
                r.report.bytes_moved,
                r.report.bytes_decoded,
                r.report.entries_out,
                r.report.move_ratio(),
            )
        })
        .collect();
    println!(
        "\nJSON:{{\"figure\":\"fig11_migration_cost\",\"table_mb\":{mb},\
         \"scan_s\":{:.4},\"migration_s\":{:.4},\"migration_normalized\":{:.3},\
         \"runs_migrated\":{},\"updates_applied\":{},\"pages_written\":{},\
         \"compaction\":[{}]}}",
        secs(scan_ns),
        secs(mig_ns),
        mig_ns as f64 / scan_ns.max(1) as f64,
        report.runs_migrated,
        report.updates_applied,
        report.pages_written,
        compaction_json.join(",")
    );
}
