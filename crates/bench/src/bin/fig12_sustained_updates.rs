//! Figure 12: sustained update throughput.
//!
//! Paper result (100 GB table): disk random 4 KB writes sustain 68/s,
//! in-place read-modify-write updates 48/s, and MaSM 3472 / 6631 /
//! 12498 updates/s with 2 / 4 / 8 GB of flash — orders of magnitude
//! higher, and doubling the flash doubles the rate (migrations happen
//! half as often while each costs the same table rewrite).
//!
//! Setup per the paper: migration threshold 50%; updates are sent as
//! fast as possible; every table scan migrates the accumulated half of
//! the flash while the other half fills.
//!
//! Besides the summary table this binary exports an NDJSON time series
//! for the canonical `MaSM C` configuration: one `TS:`-prefixed line
//! per sample (sampled on a virtual-clock interval, plus a forced
//! sample after every migration and at the end), each carrying the
//! full [`masm_core::EngineStats`] snapshot, the delta since the
//! previous row, and the `random_writes` invariant field at the top
//! level. CI smoke-runs this binary and asserts the rows parse.

use masm_bench::*;
use masm_core::EngineStats;
use masm_telemetry::json::parse;
use masm_telemetry::TimeSeriesWriter;
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

fn main() {
    let mb = scale_mb();

    let mut rows = Vec::new();

    // Raw random 4 KB writes on the disk.
    {
        let env = SyntheticEnv::new(mb);
        let session = env.machine.session();
        let n = 200u64;
        let start = session.now();
        let span = env.table_bytes;
        for i in 0..n {
            let off = ((i * 7_919_999) % span) & !4095;
            session.write(&env.machine.disk, off, &[0u8; 4096]).unwrap();
        }
        let rate = n as f64 / secs(session.now() - start);
        rows.push(vec!["disk random writes".into(), format!("{rate:.0}")]);
    }

    // Conventional in-place updates (read-modify-write), no queries.
    {
        let env = SyntheticEnv::new(mb);
        let session = env.machine.session();
        let inplace = masm_baselines::InPlaceEngine::new(
            std::sync::Arc::clone(env.engine.heap()),
            env.table.schema.clone(),
        );
        let mut gen = UpdateStreamGen::uniform(
            env.table.clone(),
            UpdateMix {
                insert: 0.0,
                delete: 0.0,
                modify: 1.0,
            },
            7,
        );
        let n = 200u64;
        let start = session.now();
        for ts in 1..=n {
            let (key, op) = gen.next_update();
            inplace.apply_update(&session, key, op, ts).unwrap();
        }
        let rate = n as f64 / secs(session.now() - start);
        rows.push(vec!["in-place updates".into(), format!("{rate:.0}")]);
    }

    // MaSM with three flash sizes (cache fraction ×0.5, ×1, ×2). The
    // canonical ×1 run also exports an NDJSON time series.
    let mut series: Option<(Vec<String>, EngineStats)> = None;
    for (label, factor) in [("MaSM halfC", 0.5), ("MaSM C", 1.0), ("MaSM 2C", 2.0)] {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            // Keep the same 64-page floor as `scaled_masm_config`: at
            // tiny CI scales halving the flash would otherwise push
            // alpha below the 2/M^(1/3) bound of §3.4.
            cfg.ssd_capacity =
                (((cfg.ssd_capacity as f64 * factor) as u64 / 4096) * 4096).max(64 * 4096);
            cfg.migration_threshold = 0.5;
        });
        let session = env.machine.session();
        let mut gen = UpdateStreamGen::uniform(env.table.clone(), UpdateMix::default(), 11);
        // Sample every mb x 2 ms of virtual time — a handful of rows
        // per fill-the-flash phase at any scale (the span between
        // migrations grows with the flash, which grows with `mb`).
        let mut ts = (factor == 1.0).then(|| TimeSeriesWriter::new(Vec::new(), mb * 2_000_000));
        let start = session.now();
        let mut applied = 0u64;
        let mut migrations = 0;
        while migrations < 3 {
            let (key, op) = gen.next_update();
            env.engine.apply_update(&session, key, op).unwrap();
            applied += 1;
            if let Some(ts) = ts.as_mut() {
                // Cheap when no sample is due; sampling itself is two
                // short lock holds plus atomic loads.
                ts.poll(&env.engine.stats()).unwrap();
            }
            if env.engine.needs_migration() {
                // "Every table scan incurs the migration of updates":
                // the migration is itself the full-table merge scan.
                env.engine.migrate(&session).unwrap();
                migrations += 1;
                if let Some(ts) = ts.as_mut() {
                    // A forced row after each migration captures the
                    // post-migration level drop even at coarse scales.
                    ts.sample(&env.engine.stats()).unwrap();
                }
            }
        }
        let rate = applied as f64 / secs(session.now() - start);
        let cache_kb = env.engine.config().ssd_capacity / 1024;
        rows.push(vec![
            format!("{label} ({cache_kb} KiB flash)"),
            format!("{rate:.0}"),
        ]);
        if let Some(ts) = ts {
            let buf = String::from_utf8(ts.into_inner().unwrap()).unwrap();
            series = Some((buf.lines().map(str::to_owned).collect(), env.engine.stats()));
        }
    }
    let (ts_rows, end_stats) = series.expect("MaSM C run exports the time series");

    print_table(
        &format!(
            "Figure 12 — sustained updates/second (virtual time; table {mb} MiB, scaled {}x \
             below the paper's 100 GB)",
            100 * 1024 / mb
        ),
        &["scheme", "updates/s"],
        &rows,
    );
    println!(
        "\npaper shape: disk random writes ~68/s; in-place ~48/s; MaSM orders of magnitude\n\
         higher and linear in the flash size (3472/6631/12498 at 2/4/8 GB).\n\
         note: absolute MaSM rates scale with table size (migration cost ∝ table bytes);\n\
         the in-place rates are scale-free (bounded by disk IOPS, not table size)."
    );

    // NDJSON time series of the MaSM C run, one `TS:` line per sample.
    // Self-check each row before printing: it must parse back, carry
    // the top-level `random_writes` invariant field, and embed the full
    // stats object — the same assertions the CI smoke run greps for.
    println!();
    let mut max_random_writes = 0u64;
    for line in &ts_rows {
        let row = parse(line).expect("TS row parses as JSON");
        let rw = row
            .get_u64("random_writes")
            .expect("TS row carries random_writes");
        max_random_writes = max_random_writes.max(rw);
        assert!(row.get("stats").is_some(), "TS row embeds the snapshot");
        println!("TS:{line}");
    }
    assert!(
        ts_rows.len() >= 3,
        "time series must have >= 3 rows, got {}",
        ts_rows.len()
    );
    let violations = end_stats.invariant_violations();
    assert!(
        violations.is_empty(),
        "incoherent end snapshot: {violations:?}"
    );
    // Design goal 2: run bodies write sequentially; space reuse allows
    // at most one head seek per run created (flushes + merge inputs).
    let runs_created = end_stats.ops.flush.count + end_stats.merge.inputs as u64;
    assert!(
        max_random_writes <= runs_created,
        "random writes {max_random_writes} exceed runs created {runs_created}"
    );

    println!(
        "\nJSON:{{\"figure\":\"fig12_sustained_updates\",\"table_mb\":{mb},\
         \"ts_rows\":{},\"random_writes\":{},\"updates_ingested\":{},\
         \"migrations\":{}}}",
        ts_rows.len(),
        end_stats.ssd.random_writes,
        end_stats.ingested_updates,
        end_stats.ops.migrate.count,
    );
}
