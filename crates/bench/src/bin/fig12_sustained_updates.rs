//! Figure 12: sustained update throughput.
//!
//! Paper result (100 GB table): disk random 4 KB writes sustain 68/s,
//! in-place read-modify-write updates 48/s, and MaSM 3472 / 6631 /
//! 12498 updates/s with 2 / 4 / 8 GB of flash — orders of magnitude
//! higher, and doubling the flash doubles the rate (migrations happen
//! half as often while each costs the same table rewrite).
//!
//! Setup per the paper: migration threshold 50%; updates are sent as
//! fast as possible; every table scan migrates the accumulated half of
//! the flash while the other half fills.

use masm_bench::*;
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

fn main() {
    let mb = scale_mb();

    let mut rows = Vec::new();

    // Raw random 4 KB writes on the disk.
    {
        let env = SyntheticEnv::new(mb);
        let session = env.machine.session();
        let n = 200u64;
        let start = session.now();
        let span = env.table_bytes;
        for i in 0..n {
            let off = ((i * 7_919_999) % span) & !4095;
            session.write(&env.machine.disk, off, &[0u8; 4096]).unwrap();
        }
        let rate = n as f64 / secs(session.now() - start);
        rows.push(vec!["disk random writes".into(), format!("{rate:.0}")]);
    }

    // Conventional in-place updates (read-modify-write), no queries.
    {
        let env = SyntheticEnv::new(mb);
        let session = env.machine.session();
        let inplace = masm_baselines::InPlaceEngine::new(
            std::sync::Arc::clone(env.engine.heap()),
            env.table.schema.clone(),
        );
        let mut gen = UpdateStreamGen::uniform(
            env.table.clone(),
            UpdateMix {
                insert: 0.0,
                delete: 0.0,
                modify: 1.0,
            },
            7,
        );
        let n = 200u64;
        let start = session.now();
        for ts in 1..=n {
            let (key, op) = gen.next_update();
            inplace.apply_update(&session, key, op, ts).unwrap();
        }
        let rate = n as f64 / secs(session.now() - start);
        rows.push(vec!["in-place updates".into(), format!("{rate:.0}")]);
    }

    // MaSM with three flash sizes (cache fraction ×0.5, ×1, ×2).
    for (label, factor) in [("MaSM halfC", 0.5), ("MaSM C", 1.0), ("MaSM 2C", 2.0)] {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            cfg.ssd_capacity = ((cfg.ssd_capacity as f64 * factor) as u64 / 4096) * 4096;
            cfg.migration_threshold = 0.5;
        });
        let session = env.machine.session();
        let mut gen = UpdateStreamGen::uniform(env.table.clone(), UpdateMix::default(), 11);
        let start = session.now();
        let mut applied = 0u64;
        let mut migrations = 0;
        while migrations < 3 {
            let (key, op) = gen.next_update();
            env.engine.apply_update(&session, key, op).unwrap();
            applied += 1;
            if env.engine.needs_migration() {
                // "Every table scan incurs the migration of updates":
                // the migration is itself the full-table merge scan.
                env.engine.migrate(&session).unwrap();
                migrations += 1;
            }
        }
        let rate = applied as f64 / secs(session.now() - start);
        let cache_kb = env.engine.config().ssd_capacity / 1024;
        rows.push(vec![
            format!("{label} ({cache_kb} KiB flash)"),
            format!("{rate:.0}"),
        ]);
    }

    print_table(
        &format!(
            "Figure 12 — sustained updates/second (virtual time; table {mb} MiB, scaled {}x \
             below the paper's 100 GB)",
            100 * 1024 / mb
        ),
        &["scheme", "updates/s"],
        &rows,
    );
    println!(
        "\npaper shape: disk random writes ~68/s; in-place ~48/s; MaSM orders of magnitude\n\
         higher and linear in the flash size (3472/6631/12498 at 2/4/8 GB).\n\
         note: absolute MaSM rates scale with table size (migration cost ∝ table bytes);\n\
         the in-place rates are scale-free (bounded by disk IOPS, not table size)."
    );
}
