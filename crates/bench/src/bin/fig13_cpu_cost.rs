//! Figure 13: range scan and MaSM performance while emulating the CPU
//! cost of query processing (0.5–2.5 µs per retrieved record, 10 GB
//! ranges in the paper — here a proportional slice of the scaled table).
//!
//! Paper result: execution time is flat until ≈1.5 µs/record (the scan
//! is I/O bound; CPU work overlaps the asynchronous I/O), then grows
//! linearly (CPU bound) — and MaSM is indistinguishable from the pure
//! scan at every point, because the merge CPU cost is negligible next to
//! either the I/O or the injected work.

use masm_bench::*;

fn main() {
    let mb = scale_mb();
    // The paper scans 10 GB of its 100 GB table: use 1/10 of ours.
    let baseline = SyntheticEnv::new(mb);
    let masm = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.migration_threshold = 1.0;
    });
    masm.fill_cache(0.5, 42);

    // The paper scans 10 GB — long enough that per-batch CPU hides
    // behind the prefetched I/O. At our scale that means the full table.
    let begin = 0u64;
    let end = baseline.table.max_key();

    let mut rows = Vec::new();
    for tenth_us in [0u64, 5, 10, 15, 20, 25] {
        let cpu_ns = tenth_us * 100; // 0.0, 0.5, 1.0, 1.5, 2.0, 2.5 µs
        let pure = {
            let session = baseline.machine.session();
            let start = session.now();
            let n = baseline
                .engine
                .heap()
                .scan_range(session.clone(), begin, end)
                .with_cpu_per_record(cpu_ns)
                .count();
            std::hint::black_box(n);
            session.now() - start
        };
        let with_masm = masm.time_masm_scan_cpu(begin, end, cpu_ns);
        rows.push(vec![
            format!("{:.1}", cpu_ns as f64 / 1000.0),
            format!("{:.3}", secs(pure)),
            format!("{:.3}", secs(with_masm)),
            ratio(with_masm, pure),
        ]);
    }
    print_table(
        &format!("Figure 13 — injected CPU cost per record, full-table ranges ({mb} MiB)"),
        &["us/record", "scan w/o updates (s)", "MaSM (s)", "MaSM/pure"],
        &rows,
    );
    println!(
        "\npaper shape: flat (I/O bound) until ~1.5us/record, then linear (CPU bound);\n\
         MaSM indistinguishable from the pure scan throughout."
    );
}
