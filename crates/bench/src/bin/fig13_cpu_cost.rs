//! Figure 13: range scan and MaSM performance while emulating the CPU
//! cost of query processing (0.5–2.5 µs per retrieved record, 10 GB
//! ranges in the paper — here a proportional slice of the scaled table).
//!
//! Paper result: execution time is flat until ≈1.5 µs/record (the scan
//! is I/O bound; CPU work overlaps the asynchronous I/O), then grows
//! linearly (CPU bound) — and MaSM is indistinguishable from the pure
//! scan at every point, because the merge CPU cost is negligible next to
//! either the I/O or the injected work.
//!
//! A second section sweeps the per-block codec (identity / delta / lz /
//! adaptive): scan and merge (compaction) throughput per codec plus the
//! achieved compression ratio — the same CPU-vs-I/O axis, with the CPU
//! spent on decompression instead of injected work. Emits one JSON
//! object (line prefixed `JSON:`); CI smoke-runs this binary at
//! `MASM_BENCH_MB=8`.

use masm_bench::*;
use masm_core::CodecChoice;

fn main() {
    let mb = scale_mb();
    // The paper scans 10 GB of its 100 GB table: use 1/10 of ours.
    let baseline = SyntheticEnv::new(mb);
    let masm = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.migration_threshold = 1.0;
    });
    masm.fill_cache(0.5, 42);

    // The paper scans 10 GB — long enough that per-batch CPU hides
    // behind the prefetched I/O. At our scale that means the full table.
    let begin = 0u64;
    let end = baseline.table.max_key();

    let mut rows = Vec::new();
    let mut cpu_json = Vec::new();
    for tenth_us in [0u64, 5, 10, 15, 20, 25] {
        let cpu_ns = tenth_us * 100; // 0.0, 0.5, 1.0, 1.5, 2.0, 2.5 µs
        let pure = {
            let session = baseline.machine.session();
            let start = session.now();
            let n = baseline
                .engine
                .heap()
                .scan_range(session.clone(), begin, end)
                .with_cpu_per_record(cpu_ns)
                .count();
            std::hint::black_box(n);
            session.now() - start
        };
        let with_masm = masm.time_masm_scan_cpu(begin, end, cpu_ns);
        rows.push(vec![
            format!("{:.1}", cpu_ns as f64 / 1000.0),
            format!("{:.3}", secs(pure)),
            format!("{:.3}", secs(with_masm)),
            ratio(with_masm, pure),
        ]);
        cpu_json.push(format!(
            "{{\"us_per_record\":{:.1},\"pure_s\":{:.4},\"masm_s\":{:.4}}}",
            cpu_ns as f64 / 1000.0,
            secs(pure),
            secs(with_masm)
        ));
    }
    print_table(
        &format!("Figure 13 — injected CPU cost per record, full-table ranges ({mb} MiB)"),
        &["us/record", "scan w/o updates (s)", "MaSM (s)", "MaSM/pure"],
        &rows,
    );

    // --- Codec sweep: scan + merge throughput per codec --------------
    // Same cache fill (by *stored* bytes, so stronger codecs cache more
    // updates in the same flash budget), then one full merged scan and
    // one full compaction per codec.
    let mut codec_rows = Vec::new();
    let mut codec_json = Vec::new();
    for choice in CodecChoice::ALL {
        let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
            cfg.codec = choice;
            cfg.migration_threshold = 1.0;
        });
        env.fill_cache(0.5, 42);
        let session = env.machine.session();
        let comp = env.engine.compression_stats();
        let updates_cached = env.engine.ingest_stats().0;

        let t_scan = env.time_masm_scan(begin, end).max(1);
        let scan_mbps = env.table_bytes as f64 / 1e6 / secs(t_scan);

        let merge_start = session.now();
        let report = env.engine.compact_runs(&session).expect("compact");
        let t_merge = (session.now() - merge_start).max(1);
        let merge_bytes = report.bytes_moved + report.bytes_decoded;
        let merge_mbps = merge_bytes as f64 / 1e6 / secs(t_merge);

        // Selector CPU: fraction of the 2-trials-per-block adaptive
        // baseline the sample-based selector avoided (0 for fixed
        // codecs, which run no trials at all).
        let trial_baseline = comp.codec_trials + comp.codec_trials_saved;
        let trials_saved_frac = if trial_baseline > 0 {
            comp.codec_trials_saved as f64 / trial_baseline as f64
        } else {
            0.0
        };
        codec_rows.push(vec![
            choice.name().to_string(),
            format!("{:.3}", comp.ratio()),
            updates_cached.to_string(),
            format!("{scan_mbps:.1}"),
            format!("{merge_mbps:.1}"),
            report.inputs.to_string(),
            report.bytes_decoded.to_string(),
            format!("{:.0}%", trials_saved_frac * 100.0),
        ]);
        codec_json.push(format!(
            "{{\"codec\":\"{}\",\"compression_ratio\":{:.4},\"raw_bytes\":{},\
             \"stored_bytes\":{},\"updates_cached\":{},\"scan_mb_per_s\":{:.2},\
             \"merge_mb_per_s\":{:.2},\"merge_inputs\":{},\"merge_bytes_decoded\":{},\
             \"codec_trials\":{},\"codec_trials_saved\":{},\"lz_probes_skipped\":{},\
             \"trials_saved_frac\":{:.4}}}",
            choice.name(),
            comp.ratio(),
            comp.raw_bytes,
            comp.stored_bytes,
            updates_cached,
            scan_mbps,
            merge_mbps,
            report.inputs,
            report.bytes_decoded,
            comp.codec_trials,
            comp.codec_trials_saved,
            comp.lz_probes_skipped,
            trials_saved_frac
        ));
        if choice == CodecChoice::Adaptive {
            assert!(
                comp.codec_trials_saved > 0,
                "sample-based selection must save trial encodes"
            );
        }
    }
    print_table(
        &format!("Figure 13b — per-codec scan/merge throughput ({mb} MiB table, cache 50% full)"),
        &[
            "codec",
            "stored/raw",
            "updates",
            "scan MB/s",
            "merge MB/s",
            "merge_in",
            "dec_bytes",
            "trials_saved",
        ],
        &codec_rows,
    );

    println!(
        "\nJSON:{{\"figure\":\"fig13_cpu_cost\",\"table_mb\":{mb},\
         \"cpu_rows\":[{}],\"codec_rows\":[{}]}}",
        cpu_json.join(","),
        codec_json.join(",")
    );
    println!(
        "\npaper shape: flat (I/O bound) until ~1.5us/record, then linear (CPU bound);\n\
         MaSM indistinguishable from the pure scan throughout. Codec sweep: delta/lz\n\
         shrink stored bytes (ratio < 1), buying more cached updates per flash byte\n\
         for decode CPU the async I/O mostly hides."
    );
}
