//! Figure 14: TPC-H replay with online updates handled by MaSM.
//!
//! Paper result (SF 30 traces, 1 GB flash, 8 MB memory, 64 KB SSD I/O,
//! flash divided per table): in-place updates slow the queries 1.6–2.2×,
//! while MaSM matches the no-update times within 1% — fresh data with
//! essentially no I/O overhead, across queries that are themselves
//! multiple concurrent range scans.

use masm_bench::tpch_replay::{TpchEnv, TpchInPlaceUpdater, TpchMasm};
use masm_bench::*;
use masm_storage::MIB;
use masm_workloads::tpch::TPCH_QUERIES;

fn main() {
    let mb = scale_mb();
    let total_bytes = mb * MIB;
    // The paper uses 1 GB flash for ~30 GB of tables: 1/30.
    let flash = total_bytes / 30;

    let mut rows = Vec::new();
    let (mut sum_inplace, mut sum_masm) = (0f64, 0f64);
    for q in TPCH_QUERIES {
        let env = TpchEnv::new(total_bytes);
        let no_updates = env.time_query(q, 1.0);

        let env2 = TpchEnv::new(total_bytes);
        let mut updater = TpchInPlaceUpdater::new(&env2, 21);
        let inplace = env2.time_query_with(q, 1.0, &mut |now| updater.catch_up(now));

        // MaSM: flash 50% full at query start (§4.3).
        let env3 = TpchEnv::new(total_bytes);
        let masm = TpchMasm::new(&env3, flash);
        masm.fill(&env3, 0.5, 21);
        let masm_t = masm.time_query(&env3, q);

        let r_in = inplace as f64 / no_updates as f64;
        let r_masm = masm_t as f64 / no_updates as f64;
        sum_inplace += r_in;
        sum_masm += r_masm;
        rows.push(vec![
            q.name.to_string(),
            format!("{:.3}", secs(no_updates)),
            format!("{r_in:.2}x"),
            format!("{r_masm:.2}x"),
        ]);
    }
    let n = TPCH_QUERIES.len() as f64;
    print_table(
        &format!(
            "Figure 14 — TPC-H replay: no updates vs in-place vs MaSM \
             ({mb} MiB of tables, flash = tables/30, 50% full, per-table caches)"
        ),
        &["query", "no-updates (s)", "w/ in-place", "w/ MaSM"],
        &rows,
    );
    println!(
        "\naverages: in-place {:.2}x, MaSM {:.2}x\n\
         paper shape: in-place 1.6-2.2x; MaSM within ~1% of the no-update times.",
        sum_inplace / n,
        sum_masm / n
    );
}
