//! Figure 9b (new experiment): point lookups against a materialized
//! update run — legacy sparse-index format vs the block-run format
//! (`masm-blockrun`), bloom filter on/off, block cache cold/warm.
//!
//! The paper's Figure 9 covers *range* scans, where the sparse index is
//! already good. Point lookups are the worst case it leaves open: a
//! lookup for a key the run does not contain still pays a full
//! index-cell read. The block-run format attacks both sides:
//!
//! * **bloom filter** — absent keys are rejected from memory, zero I/O;
//! * **block cache** — repeated lookups of hot keys are served from
//!   decoded blocks, zero device reads when warm.
//!
//! A second, engine-level section compares `MasmEngine::get` (buffer →
//! bloom-guarded runs → heap) against the IU baseline, whose positional
//! index on the cached updates is kept **entirely in memory** — the
//! memory-vs-I/O trade §2.3 calls out. MaSM rows run with the codec off
//! (identity) and on (lz) to show compression does not change lookup
//! I/O (blocks decode after the same single read).
//!
//! Emits one JSON object (line prefixed `JSON:`) plus readable tables.

use std::sync::Arc;

use masm_baselines::IuEngine;
use masm_bench::{print_table, scale_mb};
use masm_blockrun::{
    point_lookup, write_run as write_block_run, BlockCache, BlockRunConfig, Entry,
};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::{CodecChoice, MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, Ns, SessionHandle, SimClock, SimDevice};

/// The legacy run format this PR replaced: a flat byte stream of update
/// records plus an in-memory sparse index (smallest key per fixed byte
/// cell). Kept here, in the benchmark only, as the comparison baseline.
struct SparseRun {
    index: Vec<(u64, u64)>, // (first key, byte offset)
    total_bytes: u64,
    min_key: u64,
    max_key: u64,
}

impl SparseRun {
    fn write(
        session: &SessionHandle,
        dev: &SimDevice,
        updates: &[UpdateRecord],
        granularity: u64,
    ) -> SparseRun {
        let mut buf = Vec::new();
        let mut index = Vec::new();
        let mut next_cell = 0u64;
        for u in updates {
            let off = buf.len() as u64;
            if off >= next_cell {
                index.push((u.key, off));
                next_cell = off + granularity;
            }
            u.encode_into(&mut buf);
        }
        for chunk_start in (0..buf.len()).step_by(64 * 1024) {
            let end = (chunk_start + 64 * 1024).min(buf.len());
            session
                .write(dev, chunk_start as u64, &buf[chunk_start..end])
                .expect("write");
        }
        SparseRun {
            index,
            total_bytes: buf.len() as u64,
            min_key: updates.first().expect("non-empty").key,
            max_key: updates.last().expect("non-empty").key,
        }
    }

    fn lookup(&self, session: &SessionHandle, dev: &SimDevice, key: u64) -> Option<UpdateRecord> {
        if key < self.min_key || key > self.max_key {
            return None;
        }
        let cell = self
            .index
            .partition_point(|&(k, _)| k <= key)
            .saturating_sub(1);
        let lo = self.index[cell].1;
        let hi = self
            .index
            .get(cell + 1)
            .map_or(self.total_bytes, |&(_, off)| off);
        let data = session.read(dev, lo, hi - lo).expect("read");
        let mut pos = 0usize;
        while let Some((u, used)) = UpdateRecord::decode(&data[pos..]) {
            pos += used;
            if u.key == key {
                return Some(u);
            }
            if u.key > key {
                return None;
            }
        }
        None
    }
}

struct Row {
    scheme: &'static str,
    phase: &'static str,
    found: u64,
    ssd_reads: u64,
    bytes_read: u64,
    avg_ns: f64,
    cache_hits: u64,
    cache_misses: u64,
}

fn main() {
    // Scale entry count with the usual knob; lookups stay fixed.
    let entries_n = (scale_mb() * 4096).max(50_000);
    let lookups = 600u64;

    let updates: Vec<UpdateRecord> = (0..entries_n)
        .map(|i| UpdateRecord::new(i + 1, i * 2, UpdateOp::Replace(vec![7u8; 60])))
        .collect();
    // Half present (even), half absent (odd), spread over the key space.
    let probes: Vec<u64> = (0..lookups)
        .map(|i| {
            let slot = (i * 2_654_435_761) % entries_n;
            if i % 2 == 0 {
                slot * 2
            } else {
                slot * 2 + 1
            }
        })
        .collect();

    let mut rows: Vec<Row> = Vec::new();

    // --- Legacy sparse-index flat run -------------------------------
    {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let run = SparseRun::write(&session, &dev, &updates, 1024);
        dev.reset_stats();
        let start: Ns = session.now();
        let mut found = 0u64;
        for &p in &probes {
            found += run.lookup(&session, &dev, p).is_some() as u64;
        }
        let stats = dev.stats();
        rows.push(Row {
            scheme: "sparse_index",
            phase: "cold",
            found,
            ssd_reads: stats.read_ops,
            bytes_read: stats.bytes_read,
            avg_ns: (session.now() - start) as f64 / probes.len() as f64,
            cache_hits: 0,
            cache_misses: 0,
        });
    }

    // --- Block runs: bloom off/on, cache cold/warm ------------------
    for (scheme, bloom_bits, use_cache) in [
        ("blockrun_bloom_off", 0u32, false),
        ("blockrun_bloom_on", 10u32, false),
        ("blockrun_bloom_on_cached", 10u32, true),
    ] {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let entries: Vec<Entry> = updates
            .iter()
            .map(|u| Entry::new(u.key, u.ts, u.encode_value()))
            .collect();
        let cfg = BlockRunConfig {
            block_bytes: 1024,
            bloom_bits_per_key: bloom_bits,
            ..BlockRunConfig::default()
        };
        let meta = write_block_run(&session, &dev, 0, &cfg, &entries).expect("write run");
        let cache = use_cache.then(|| Arc::new(BlockCache::new(64 << 20)));

        let phases: &[&'static str] = if use_cache {
            &["cold", "warm"]
        } else {
            &["cold"]
        };
        for &phase in phases {
            dev.reset_stats();
            if let Some(c) = &cache {
                c.reset_stats();
            }
            let start = session.now();
            let mut found = 0u64;
            for &p in &probes {
                let hits = point_lookup(
                    &session,
                    &dev,
                    &meta,
                    p,
                    cache.as_ref().map(|c| (c.as_ref(), 1u64)),
                )
                .expect("lookup");
                found += (!hits.is_empty()) as u64;
            }
            let stats = dev.stats();
            let cs = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
            rows.push(Row {
                scheme,
                phase,
                found,
                ssd_reads: stats.read_ops,
                bytes_read: stats.bytes_read,
                avg_ns: (session.now() - start) as f64 / probes.len() as f64,
                cache_hits: cs.hits,
                cache_misses: cs.misses,
            });
        }
    }

    // --- Engine level: MasmEngine::get vs the IU in-memory index -----
    struct EngineRow {
        scheme: &'static str,
        codec: &'static str,
        found: u64,
        ssd_reads: u64,
        bytes_read: u64,
        avg_ns: f64,
        /// MaSM: pinned run metadata (zone maps + blooms). IU: the
        /// in-memory positional index over every cached update.
        mem_bytes: u64,
    }

    let schema = Schema::synthetic_100b();
    let payload = |v: u32| {
        let mut p = schema.empty_payload();
        schema.set_u32(&mut p, 0, v);
        p
    };
    // Base table of even keys; updates insert every other odd key, so
    // `slot*4+1` is a cached hit and `slot*4+3` is definitely absent.
    let n_base = 10_000u64;
    let n_updates = 20_000u64;
    let eng_lookups = 400u64;
    let eng_probes: Vec<u64> = (0..eng_lookups)
        .map(|i| {
            let slot = (i * 2_654_435_761) % n_updates;
            if i % 2 == 0 {
                slot * 4 + 1
            } else {
                slot * 4 + 3
            }
        })
        .collect();
    let mut engine_rows: Vec<EngineRow> = Vec::new();

    for codec in [CodecChoice::Identity, CodecChoice::Lz] {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let mut cfg = MasmConfig::small_for_tests();
        cfg.codec = codec;
        let engine = MasmEngine::new(heap, ssd.clone(), wal, schema.clone(), cfg).expect("engine");
        let session = SessionHandle::fresh(clock);
        engine
            .load_table(
                &session,
                (0..n_base).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .expect("load");
        for i in 0..n_updates {
            engine
                .apply_update(&session, i * 4 + 1, UpdateOp::Insert(payload(i as u32)))
                .expect("update");
        }
        engine.flush_buffer(&session).expect("flush");

        ssd.reset_stats();
        let start = session.now();
        let mut found = 0u64;
        for &k in &eng_probes {
            found += engine.get(&session, k).expect("get").is_some() as u64;
        }
        let stats = ssd.stats();
        engine_rows.push(EngineRow {
            scheme: "engine_masm_get",
            codec: codec.name(),
            found,
            ssd_reads: stats.read_ops,
            bytes_read: stats.bytes_read,
            avg_ns: (session.now() - start) as f64 / eng_probes.len() as f64,
            mem_bytes: engine.cache_stats().meta_bytes,
        });
    }

    {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let session = SessionHandle::fresh(clock);
        heap.bulk_load(
            &session,
            (0..n_base).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .expect("load");
        let iu = IuEngine::new(heap, ssd.clone(), schema.clone());
        for i in 0..n_updates {
            iu.apply_update(
                &session,
                i * 4 + 1,
                UpdateOp::Insert(payload(i as u32)),
                i + 1,
            )
            .expect("update");
        }
        ssd.reset_stats();
        let start = session.now();
        let mut found = 0u64;
        for &k in &eng_probes {
            let hit = iu
                .begin_scan(session.clone(), k, k, u64::MAX)
                .expect("scan")
                .next();
            found += hit.is_some() as u64;
        }
        let stats = ssd.stats();
        engine_rows.push(EngineRow {
            scheme: "engine_iu_scan",
            codec: "none",
            found,
            ssd_reads: stats.read_ops,
            bytes_read: stats.bytes_read,
            avg_ns: (session.now() - start) as f64 / eng_probes.len() as f64,
            mem_bytes: iu.index_memory_bytes(),
        });
    }

    // --- Report ------------------------------------------------------
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.phase.to_string(),
                r.found.to_string(),
                r.ssd_reads.to_string(),
                r.bytes_read.to_string(),
                format!("{:.0}", r.avg_ns),
                r.cache_hits.to_string(),
                r.cache_misses.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 9b — point lookups over one materialized run \
             ({entries_n} entries, {lookups} lookups, half absent)"
        ),
        &[
            "scheme",
            "phase",
            "found",
            "ssd_reads",
            "bytes_read",
            "ns/lookup",
            "cache_hits",
            "cache_miss",
        ],
        &table,
    );

    let engine_table: Vec<Vec<String>> = engine_rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.codec.to_string(),
                r.found.to_string(),
                r.ssd_reads.to_string(),
                r.bytes_read.to_string(),
                format!("{:.0}", r.avg_ns),
                r.mem_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 9b (engine) — MasmEngine::get vs IU in-memory index \
             ({n_base} base records, {n_updates} cached updates, {eng_lookups} lookups, half absent)"
        ),
        &[
            "scheme",
            "codec",
            "found",
            "ssd_reads",
            "bytes_read",
            "ns/lookup",
            "mem_bytes",
        ],
        &engine_table,
    );

    let mut json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"scheme\":\"{}\",\"phase\":\"{}\",\"found\":{},\"ssd_reads\":{},\
                 \"bytes_read\":{},\"avg_ns_per_lookup\":{:.1},\"cache_hits\":{},\
                 \"cache_misses\":{}}}",
                r.scheme,
                r.phase,
                r.found,
                r.ssd_reads,
                r.bytes_read,
                r.avg_ns,
                r.cache_hits,
                r.cache_misses
            )
        })
        .collect();
    json_rows.extend(engine_rows.iter().map(|r| {
        format!(
            "{{\"scheme\":\"{}\",\"codec\":\"{}\",\"found\":{},\"ssd_reads\":{},\
             \"bytes_read\":{},\"avg_ns_per_lookup\":{:.1},\"mem_bytes\":{}}}",
            r.scheme, r.codec, r.found, r.ssd_reads, r.bytes_read, r.avg_ns, r.mem_bytes
        )
    }));
    println!(
        "\nJSON:{{\"figure\":\"fig09b_point_lookup\",\"entries\":{entries_n},\
         \"lookups\":{lookups},\"results\":[{}]}}",
        json_rows.join(",")
    );

    let warm = rows
        .iter()
        .find(|r| r.scheme == "blockrun_bloom_on_cached" && r.phase == "warm")
        .expect("warm row");
    println!(
        "\nexpected shape: bloom halves cold reads (absent keys cost zero I/O); \
         warm cache serves every block from memory (ssd_reads == 0; got {}).",
        warm.ssd_reads
    );
}
