//! Theorems 3.2/3.3: SSD writes per update for the MaSM-αM spectrum —
//! measured against the closed forms.
//!
//! MaSM-2M (α = 2) writes every update once (minimal); MaSM-M (α = 1)
//! writes ≈1.75 + 2/M times; in between, ≈2 − 0.25α². The worst case
//! assumes every 1-pass run has the minimum size S; real streams flush
//! larger runs, so the measured value is a lower bound on the bound.

use masm_bench::*;
use masm_core::theory::{masm_alpha_params, masm_alpha_writes_per_update};
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

fn measure(alpha: f64) -> (f64, u64) {
    let mb = scale_mb().min(32);
    let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.alpha = alpha;
        cfg.migration_threshold = 1.0;
        // Measure raw writes: duplicate folding would shrink runs.
        cfg.merge_duplicates = false;
        // Small α needs a large-enough M (α ≥ 2/M^⅓, §3.4): use 1 KiB
        // pages and a 4 MiB cache so M = 64 and α ≥ 0.5 validates.
        cfg.ssd_page_size = 1024;
        cfg.ssd_capacity = 4 * 1024 * 1024;
        cfg.index_granularity = masm_core::IndexGranularity::Bytes(512);
    });
    let session = env.machine.session();
    let mut gen = UpdateStreamGen::uniform(env.table.clone(), UpdateMix::default(), 5);
    env.machine.ssd.reset_stats();
    // Fill to ~85% of capacity so plenty of 1-pass runs exist, then open
    // scans periodically so the run-budget merges (the source of the
    // extra writes) actually run.
    let cap = env.engine.config().ssd_capacity;
    let mut i = 0u64;
    while env.engine.cached_bytes() < cap * 85 / 100 {
        let (key, op) = gen.next_update();
        env.engine.apply_update(&session, key, op).unwrap();
        i += 1;
        if i.is_multiple_of(2000) {
            // Scan setup enforces the query-page budget (Fig. 8).
            let _ = env
                .engine
                .begin_scan(session.clone(), 0, 10)
                .unwrap()
                .count();
        }
    }
    let _ = env
        .engine
        .begin_scan(session.clone(), 0, 10)
        .unwrap()
        .count();
    let (_, logical) = env.engine.ingest_stats();
    let written = env.machine.ssd.stats().bytes_written;
    (
        written as f64 / logical as f64,
        env.engine.config().m_pages(),
    )
}

fn main() {
    let mut rows = Vec::new();
    for &alpha in &[0.5f64, 0.75, 1.0, 1.5, 2.0] {
        let theory = masm_alpha_writes_per_update(alpha);
        let (measured, m) = measure(alpha);
        let (s, n) = masm_alpha_params(alpha, m);
        rows.push(vec![
            format!("{alpha:.2}"),
            format!("{s}"),
            format!("{n}"),
            format!("{theory:.2}"),
            format!("{measured:.2}"),
        ]);
    }
    print_table(
        "Theorems 3.2/3.3 — SSD writes per update across the MaSM-αM spectrum",
        &["alpha", "S_opt", "N_opt", "theory (worst case)", "measured"],
        &rows,
    );
    println!(
        "\npaper shape: 2 − 0.25α² — MaSM-2M (α=2) ≈ 1.0 write/update, MaSM-M (α=1) ≈ 1.75;\n\
         measured values sit at or below the worst-case bound, and fall as α grows."
    );
}
