//! Concurrent scans under sustained updates: stop-the-world vs
//! background maintenance.
//!
//! The paper's design goal 1 is *low overhead on queries*; §3.2 keeps
//! migrations off the query path by running them against a snapshot of
//! the run set. This experiment extends that to *all* maintenance: an
//! updater streams updates while a scanner repeatedly runs ~1% range
//! scans. With `background_workers = 0` a scan that arrives at a full
//! update buffer pays the flush (and any due 2-pass merge) inline,
//! and a migration that comes due blocks the next query outright (the
//! inline engine has no other thread to run it on, so the driver
//! charges it to the scan that encounters it — the paper's
//! stop-the-world strawman of §3.2). With a worker pool the scan only
//! seals the buffer and enqueues; flushes, merges, and migrations all
//! run on pool threads, so scan p99 tracks p50.
//!
//! Output: a summary table plus one `ROW:{json}` line per mode with
//! the scan latency distribution (virtual ns) and the `random_writes`
//! invariant. The binary asserts background mode improves scan p99 by
//! at least 2x and that both modes keep `random_writes == 0` — the
//! acceptance checks CI smoke-runs at `MASM_BENCH_MB=8`.

use masm_bench::*;
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

const SCANS: usize = 30;

struct ModeResult {
    label: &'static str,
    p50: u64,
    p99: u64,
    random_writes: u64,
    flushes_background: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_mode(mb: u64, label: &'static str, workers: usize) -> ModeResult {
    let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.background_workers = workers;
        // Migrate at half-full flash (the Figure 12 setup) so several
        // migrations come due within the measurement window.
        cfg.migration_threshold = 0.5;
    });
    let cfg = env.engine.config().clone();
    let updater = env.machine.session();
    let mut gen = UpdateStreamGen::uniform(env.table.clone(), UpdateMix::default(), 31);
    // Enough updates per scan that (a) nearly every stop-the-world
    // scan arrives at a full buffer and pays the flush inline, and
    // (b) the migration threshold is crossed ~3 times over the run
    // even after the codecs compress the materialized runs (~2x).
    let per_scan = (cfg.update_buffer_bytes() / 100)
        .max(cfg.migration_trigger_bytes() * 3 / SCANS as u64 / 50)
        .max(64);
    let max_key = env.table.max_key();
    let span = (max_key / 100).max(2); // ~1% of the key space
    let mut latencies = Vec::with_capacity(SCANS);

    for i in 0..SCANS {
        for _ in 0..per_scan {
            let (key, op) = gen.next_update();
            loop {
                match env.engine.apply_update(&updater, key, op.clone()) {
                    Ok(_) => break,
                    // Background mode: the flash filled before the
                    // worker's migration caught up — the real engine's
                    // backpressure is this wait.
                    Err(masm_core::MasmError::CacheFull { .. }) if workers > 0 => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(e) => panic!("update failed: {e}"),
                }
            }
        }
        let begin = (i as u64 * 2 * span) % (max_key - span);
        // A fresh session starts at the global clock: its elapsed
        // virtual time is exactly this scan's latency.
        let session = env.machine.session();
        let start = session.now();
        if workers == 0 && env.engine.needs_migration() {
            // Stop-the-world: the inline engine has no thread to run a
            // due migration on — the next query pays it.
            env.engine.migrate(&session).unwrap();
        }
        let scan = env
            .engine
            .begin_scan(session.clone(), begin, begin + span)
            .unwrap();
        let n = scan.count();
        assert!(n > 0, "scan window must not be empty");
        latencies.push(session.now() - start);
    }

    env.engine.shutdown();
    let stats = env.engine.stats();
    latencies.sort_unstable();
    ModeResult {
        label,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        random_writes: stats.ssd.random_writes,
        flushes_background: stats.workers.flushes,
    }
}

fn main() {
    let mb = scale_mb();
    let stw = run_mode(mb, "stop-the-world (workers=0)", 0);
    let bg = run_mode(mb, "background (workers=2)", 2);

    let rows: Vec<Vec<String>> = [&stw, &bg]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.3}", r.p50 as f64 / 1e6),
                format!("{:.3}", r.p99 as f64 / 1e6),
                r.random_writes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Concurrent scans under sustained updates — scan latency (virtual ms; table {mb} \
             MiB, {SCANS} scans of ~1% each)"
        ),
        &["mode", "scan p50 (ms)", "scan p99 (ms)", "random writes"],
        &rows,
    );
    println!(
        "\nshape: stop-the-world pays buffer flushes (and due merges) inline on the scan\n\
         path, spiking the tail; background workers keep p99 near p50."
    );
    for r in [&stw, &bg] {
        println!(
            "ROW:{{\"mode\":\"{}\",\"scans\":{SCANS},\"scan_p50_ns\":{},\"scan_p99_ns\":{},\
             \"random_writes\":{},\"background_flushes\":{}}}",
            r.label, r.p50, r.p99, r.random_writes, r.flushes_background
        );
    }

    // Acceptance: background maintenance takes the flush/merge spikes
    // off the scan tail, and neither mode ever random-writes the SSD.
    assert_eq!(stw.random_writes, 0, "design goal 2 (stop-the-world)");
    assert_eq!(bg.random_writes, 0, "design goal 2 (background)");
    assert!(
        bg.flushes_background > 0,
        "workers must flush in background mode"
    );
    assert!(
        bg.p99 * 2 <= stw.p99,
        "background p99 ({}) must improve stop-the-world p99 ({}) by >= 2x",
        bg.p99,
        stw.p99
    );
    println!(
        "\nOK: background scan p99 {:.3} ms vs stop-the-world {:.3} ms ({:.1}x better)",
        bg.p99 as f64 / 1e6,
        stw.p99 as f64 / 1e6,
        stw.p99 as f64 / bg.p99 as f64
    );
}
