//! Concurrent scans under sustained updates: stop-the-world vs
//! background maintenance.
//!
//! The paper's design goal 1 is *low overhead on queries*; §3.2 keeps
//! migrations off the query path by running them against a snapshot of
//! the run set. This experiment extends that to *all* maintenance: an
//! updater streams updates while a scanner repeatedly runs ~1% range
//! scans. With `background_workers = 0` a scan that arrives at a full
//! update buffer pays the flush (and any due 2-pass merge) inline,
//! and a migration that comes due blocks the next query outright (the
//! inline engine has no other thread to run it on, so the driver
//! charges it to the scan that encounters it — the paper's
//! stop-the-world strawman of §3.2). With a worker pool the scan only
//! seals the buffer and enqueues; flushes, merges, and migrations all
//! run on pool threads, so scan p99 tracks p50.
//!
//! Output: a summary table plus one `ROW:{json}` line per mode with
//! the scan latency distribution (virtual ns) and the `random_writes`
//! invariant. The binary asserts background mode improves scan p99 by
//! at least 2x and that both modes keep `random_writes == 0` — the
//! acceptance checks CI smoke-runs at `MASM_BENCH_MB=8`.
//!
//! Tracing hooks: the binary always re-runs background mode with a
//! *disabled* flight recorder installed and asserts scan p99 within 2%
//! of the untraced run (the pay-for-what-you-use contract), plus a
//! micro-check that the disabled fast path costs nanoseconds per op.
//! With `MASM_TRACE_OUT=<path>` it also runs background mode with
//! tracing enabled, self-validates the exported Chrome trace (complete
//! flush/compact/migrate job spans, an intact ingest→flush flow link),
//! writes it to `<path>`, and prints a `TRACE:ok` line.

use std::sync::Arc;

use masm_bench::*;
use masm_telemetry::json::{parse, JsonValue};
use masm_telemetry::{TraceConfig, Tracer};
use masm_workloads::synthetic::{UpdateMix, UpdateStreamGen};

const SCANS: usize = 30;

struct ModeResult {
    label: &'static str,
    p50: u64,
    p99: u64,
    random_writes: u64,
    flushes_background: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_mode(
    mb: u64,
    label: &'static str,
    workers: usize,
    tracer: Option<&Arc<Tracer>>,
) -> ModeResult {
    let env = SyntheticEnv::with_config_mutator(mb, |cfg| {
        cfg.background_workers = workers;
        // Migrate at half-full flash (the Figure 12 setup) so several
        // migrations come due within the measurement window.
        cfg.migration_threshold = 0.5;
    });
    if let Some(t) = tracer {
        env.engine.install_tracer(Arc::clone(t));
    }
    let cfg = env.engine.config().clone();
    let updater = env.machine.session();
    let mut gen = UpdateStreamGen::uniform(env.table.clone(), UpdateMix::default(), 31);
    // Enough updates per scan that (a) nearly every stop-the-world
    // scan arrives at a full buffer and pays the flush inline, and
    // (b) the migration threshold is crossed ~3 times over the run
    // even after the codecs compress the materialized runs (~2x).
    let per_scan = (cfg.update_buffer_bytes() / 100)
        .max(cfg.migration_trigger_bytes() * 3 / SCANS as u64 / 50)
        .max(64);
    let max_key = env.table.max_key();
    let span = (max_key / 100).max(2); // ~1% of the key space
    let mut latencies = Vec::with_capacity(SCANS);

    for i in 0..SCANS {
        for _ in 0..per_scan {
            let (key, op) = gen.next_update();
            loop {
                match env.engine.apply_update(&updater, key, op.clone()) {
                    Ok(_) => break,
                    // Background mode: the flash filled before the
                    // worker's migration caught up — the real engine's
                    // backpressure is this wait.
                    Err(masm_core::MasmError::CacheFull { .. }) if workers > 0 => {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(e) => panic!("update failed: {e}"),
                }
            }
        }
        let begin = (i as u64 * 2 * span) % (max_key - span);
        // A fresh session starts at the global clock: its elapsed
        // virtual time is exactly this scan's latency.
        let session = env.machine.session();
        let start = session.now();
        if workers == 0 && env.engine.needs_migration() {
            // Stop-the-world: the inline engine has no thread to run a
            // due migration on — the next query pays it.
            env.engine.migrate(&session).unwrap();
        }
        let scan = env
            .engine
            .begin_scan(session.clone(), begin, begin + span)
            .unwrap();
        let n = scan.count();
        assert!(n > 0, "scan window must not be empty");
        latencies.push(session.now() - start);
    }

    env.engine.shutdown();
    let stats = env.engine.stats();
    latencies.sort_unstable();
    ModeResult {
        label,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        random_writes: stats.ssd.random_writes,
        flushes_background: stats.workers.flushes,
    }
}

/// Validate the exported Chrome trace end to end: parseable, at least
/// one *complete* (`ph:"X"`) span per background job kind, and at
/// least one ingest-side `masm.flush` flow start whose id resolves to
/// a worker-side finish. Returns the event count.
fn validate_chrome_trace(json_text: &str) -> usize {
    let doc = parse(json_text).expect("trace export must be valid JSON");
    let Some(JsonValue::Arr(events)) = doc.get("traceEvents") else {
        panic!("trace export must carry a traceEvents array");
    };
    let field = |e: &JsonValue, k: &str| match e.get(k) {
        Some(JsonValue::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let mut complete: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut flow_starts: Vec<u64> = Vec::new();
    let mut flow_finishes: Vec<u64> = Vec::new();
    for e in events {
        let (ph, name) = (field(e, "ph"), field(e, "name"));
        match ph.as_str() {
            "X" => *complete.entry(name).or_insert(0) += 1,
            "s" if name == "masm.flush" => flow_starts.push(e.get_u64("id").expect("flow id")),
            "f" if name == "masm.flush" => flow_finishes.push(e.get_u64("id").expect("flow id")),
            _ => {}
        }
    }
    for job in ["job.flush", "job.compact", "job.migrate"] {
        assert!(
            complete.get(job).copied().unwrap_or(0) > 0,
            "trace must contain a complete {job} span, got {complete:?}"
        );
    }
    let linked = flow_starts
        .iter()
        .filter(|id| flow_finishes.contains(id))
        .count();
    assert!(
        linked > 0,
        "no ingest→flush flow link resolved ({} starts, {} finishes)",
        flow_starts.len(),
        flow_finishes.len()
    );
    events.len()
}

/// The disabled fast path is one relaxed load + branch; assert it stays
/// in single-digit-nanoseconds territory so a lock or allocation can
/// never sneak onto the per-update path.
fn assert_disabled_probe_is_cheap() {
    let t = Tracer::new(TraceConfig {
        enabled: false,
        ..TraceConfig::default()
    });
    const N: u32 = 1_000_000;
    let start = std::time::Instant::now();
    let mut acc = false;
    for _ in 0..N {
        acc ^= std::hint::black_box(&t).enabled();
    }
    std::hint::black_box(acc);
    let per_op = start.elapsed().as_nanos() as f64 / f64::from(N);
    assert!(
        per_op < 100.0,
        "disabled tracer probe costs {per_op:.1} ns/op; the budget is one relaxed load"
    );
    println!("disabled-tracer probe: {per_op:.2} ns/op (budget 100 ns)");
}

fn main() {
    let mb = scale_mb();
    let stw = run_mode(mb, "stop-the-world (workers=0)", 0, None);
    let bg = run_mode(mb, "background (workers=2)", 2, None);

    let rows: Vec<Vec<String>> = [&stw, &bg]
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.3}", r.p50 as f64 / 1e6),
                format!("{:.3}", r.p99 as f64 / 1e6),
                r.random_writes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Concurrent scans under sustained updates — scan latency (virtual ms; table {mb} \
             MiB, {SCANS} scans of ~1% each)"
        ),
        &["mode", "scan p50 (ms)", "scan p99 (ms)", "random writes"],
        &rows,
    );
    println!(
        "\nshape: stop-the-world pays buffer flushes (and due merges) inline on the scan\n\
         path, spiking the tail; background workers keep p99 near p50."
    );
    for r in [&stw, &bg] {
        println!(
            "ROW:{{\"mode\":\"{}\",\"scans\":{SCANS},\"scan_p50_ns\":{},\"scan_p99_ns\":{},\
             \"random_writes\":{},\"background_flushes\":{}}}",
            r.label, r.p50, r.p99, r.random_writes, r.flushes_background
        );
    }

    // Acceptance: background maintenance takes the flush/merge spikes
    // off the scan tail, and neither mode ever random-writes the SSD.
    assert_eq!(stw.random_writes, 0, "design goal 2 (stop-the-world)");
    assert_eq!(bg.random_writes, 0, "design goal 2 (background)");
    assert!(
        bg.flushes_background > 0,
        "workers must flush in background mode"
    );
    assert!(
        bg.p99 * 2 <= stw.p99,
        "background p99 ({}) must improve stop-the-world p99 ({}) by >= 2x",
        bg.p99,
        stw.p99
    );
    println!(
        "\nOK: background scan p99 {:.3} ms vs stop-the-world {:.3} ms ({:.1}x better)",
        bg.p99 as f64 / 1e6,
        stw.p99 as f64 / 1e6,
        stw.p99 as f64 / bg.p99 as f64
    );

    // Pay-for-what-you-use: an installed-but-disabled recorder must not
    // move scan latency. Time is virtual, so the identical workload
    // should land within 2% (in practice: exactly equal).
    let off = Arc::new(Tracer::new(TraceConfig {
        enabled: false,
        ..TraceConfig::default()
    }));
    let bg_off = run_mode(mb, "background, tracer disabled", 2, Some(&off));
    assert_eq!(off.stats().emitted, 0, "disabled tracer must emit nothing");
    assert!(
        bg_off.p99 * 100 <= bg.p99 * 102 && bg.p99 * 100 <= bg_off.p99 * 102,
        "disabled tracing moved scan p99 by > 2%: {} vs {}",
        bg_off.p99,
        bg.p99
    );
    println!(
        "tracing disabled: scan p99 {:.3} ms vs untraced {:.3} ms (within 2%)",
        bg_off.p99 as f64 / 1e6,
        bg.p99 as f64 / 1e6
    );
    assert_disabled_probe_is_cheap();

    // Optional flight-recorded run: export, self-validate, persist.
    if let Ok(path) = std::env::var("MASM_TRACE_OUT") {
        let tracer = Arc::new(Tracer::new(TraceConfig {
            ring_capacity: 1 << 15,
            ..TraceConfig::default()
        }));
        let traced = run_mode(mb, "background, traced", 2, Some(&tracer));
        assert_eq!(traced.random_writes, 0, "design goal 2 (traced)");
        let json_text = tracer.export_chrome_trace();
        let events = validate_chrome_trace(&json_text);
        std::fs::write(&path, &json_text).expect("write trace file");
        let ts = tracer.stats();
        println!(
            "TRACE:ok events={events} emitted={} dropped={} path={path}",
            ts.emitted, ts.dropped
        );
    }
}
