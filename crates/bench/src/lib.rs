//! # masm-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). This library holds what they share: scaled experiment
//! environments, the concurrent-updater driver that reproduces the
//! paper's "online updates while queries run" setup, and plain-text
//! table output.
//!
//! ## Scaling
//!
//! The paper's 100 GB table / 4 GB SSD cache scale down by a common
//! factor (default table ≈ 64 MiB; override with `MASM_BENCH_MB`). All
//! figures report *normalized* times (relative to the same-size scan
//! without updates), which cancels the scale factor; absolute rates
//! (Figure 12) scale linearly and we report the scaled numbers plus the
//! extrapolation.

pub mod tpch_replay;

use std::sync::Arc;

use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::{HeapConfig, Key, Schema, TableHeap};
use masm_storage::{DeviceProfile, IoSession, Ns, SessionHandle, SimClock, SimDevice, MIB};
use masm_workloads::synthetic::{SyntheticTable, UpdateMix, UpdateStreamGen};

pub use masm_core::update::UpdateOp;

/// Table size in MiB (env `MASM_BENCH_MB`, default 64).
pub fn scale_mb() -> u64 {
    std::env::var("MASM_BENCH_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The paper's cache:data ratio — 4 GB of flash for 100 GB of data.
pub const CACHE_FRACTION: f64 = 0.04;

/// A fresh simulated machine: one HDD (main data), one SSD (update
/// cache), one small SSD (WAL), all on a shared virtual clock.
pub struct Machine {
    /// Shared virtual clock.
    pub clock: SimClock,
    /// Main-data disk.
    pub disk: SimDevice,
    /// Update-cache SSD.
    pub ssd: SimDevice,
    /// WAL device.
    pub wal: SimDevice,
}

impl Machine {
    /// Build the machine.
    pub fn new() -> Machine {
        let clock = SimClock::new();
        Machine {
            disk: SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone()),
            ssd: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            wal: SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()),
            clock,
        }
    }

    /// A fresh session on this machine's clock.
    pub fn session(&self) -> SessionHandle {
        SessionHandle::fresh(self.clock.clone())
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

/// A scaled MaSM configuration: cache = `CACHE_FRACTION` × table bytes,
/// 4 KiB SSD pages (so M stays meaningful at laptop scale), fine-grain
/// index.
pub fn scaled_masm_config(table_bytes: u64) -> MasmConfig {
    let mut cfg = MasmConfig {
        ssd_page_size: 4096,
        ssd_capacity: ((table_bytes as f64 * CACHE_FRACTION) as u64).max(64 * 4096),
        alpha: 1.0,
        index_granularity: masm_core::IndexGranularity::Bytes(1024),
        migration_threshold: 0.9,
        merge_duplicates: true,
        ssd_region_base: 0,
        ..MasmConfig::default()
    };
    // Round capacity to whole pages.
    cfg.ssd_capacity -= cfg.ssd_capacity % cfg.ssd_page_size as u64;
    cfg
}

/// The synthetic experiment environment of §4.1/§4.2.
pub struct SyntheticEnv {
    /// The simulated machine.
    pub machine: Machine,
    /// The MaSM engine over the synthetic table.
    pub engine: Arc<MasmEngine>,
    /// The generator description of the table.
    pub table: SyntheticTable,
    /// Total table bytes.
    pub table_bytes: u64,
}

impl SyntheticEnv {
    /// Build the environment with a loaded table of `mb` MiB.
    pub fn new(mb: u64) -> SyntheticEnv {
        Self::with_config_mutator(mb, |_| {})
    }

    /// Build with a hook to adjust the MaSM configuration.
    pub fn with_config_mutator(mb: u64, f: impl FnOnce(&mut MasmConfig)) -> SyntheticEnv {
        let machine = Machine::new();
        let table_bytes = mb * MIB;
        let table = SyntheticTable::with_bytes(table_bytes);
        let mut cfg = scaled_masm_config(table_bytes);
        f(&mut cfg);
        let heap = Arc::new(TableHeap::new(machine.disk.clone(), HeapConfig::default()));
        let engine = MasmEngine::new(
            heap,
            machine.ssd.clone(),
            machine.wal.clone(),
            table.schema.clone(),
            cfg,
        )
        .expect("valid scaled config");
        let session = machine.session();
        engine
            .load_table(&session, table.records(), 1.0)
            .expect("bulk load");
        SyntheticEnv {
            machine,
            engine,
            table,
            table_bytes,
        }
    }

    /// Fill the SSD update cache to `fraction` of its capacity with
    /// uniformly distributed updates (the "cached updates occupy 50% of
    /// the allocated flash space" setup).
    pub fn fill_cache(&self, fraction: f64, seed: u64) {
        let target = (self.engine.config().ssd_capacity as f64 * fraction) as u64;
        let session = self.machine.session();
        let mut gen = UpdateStreamGen::uniform(self.table.clone(), UpdateMix::default(), seed);
        while self.engine.cached_bytes() < target {
            let (key, op) = gen.next_update();
            match self.engine.apply_update(&session, key, op) {
                Ok(_) => {}
                // Very high fill targets (99%) stop at the last whole
                // run that fits.
                Err(masm_core::MasmError::CacheFull { .. }) => break,
                Err(e) => panic!("cache fill failed: {e}"),
            }
        }
    }

    /// Time a pure heap scan (no update merging) of `[begin, end]`.
    pub fn time_pure_scan(&self, begin: Key, end: Key) -> Ns {
        let session = self.machine.session();
        let start = session.now();
        let n = self
            .engine
            .heap()
            .scan_range(session.clone(), begin, end)
            .count();
        std::hint::black_box(n);
        session.now() - start
    }

    /// Time a MaSM merged scan of `[begin, end]`.
    pub fn time_masm_scan(&self, begin: Key, end: Key) -> Ns {
        self.time_masm_scan_cpu(begin, end, 0)
    }

    /// Time a MaSM merged scan with injected CPU cost per record.
    pub fn time_masm_scan_cpu(&self, begin: Key, end: Key, cpu_ns: u64) -> Ns {
        let session = self.machine.session();
        let start = session.now();
        let scan = self
            .engine
            .begin_scan(session.clone(), begin, end)
            .expect("scan")
            .with_cpu_per_record(cpu_ns);
        let n = scan.count();
        std::hint::black_box(n);
        session.now() - start
    }

    /// Evenly spaced scan ranges of `bytes` each (returned as key
    /// ranges), following the paper's "randomly select 10 ranges for
    /// scans of 100MB or larger, and 100 ranges for smaller ranges"
    /// methodology (we use evenly spaced deterministic ranges).
    pub fn ranges(&self, bytes: u64, count: usize) -> Vec<(Key, Key)> {
        let records_per_range = (bytes / 100).max(1);
        let key_span = records_per_range * 2;
        let max_key = self.table.max_key();
        (0..count as u64)
            .map(|i| {
                let begin = (max_key.saturating_sub(key_span)) * i / count as u64;
                (begin, (begin + key_span).min(max_key))
            })
            .collect()
    }
}

/// Drives a saturated stream of random in-place updates concurrently
/// with a scan session: whenever the updater falls behind the scanning
/// actor in virtual time, it issues another random read-modify-write on
/// the same disk — the §2.2 interference generator.
pub struct ConcurrentInPlaceUpdater<'a> {
    engine: masm_baselines::InPlaceEngine,
    gen: UpdateStreamGen,
    session: IoSession,
    next_ts: u64,
    /// Updates issued.
    pub issued: u64,
    clock: &'a SimClock,
}

impl<'a> ConcurrentInPlaceUpdater<'a> {
    /// Build an updater over `heap` (which it will mutate!).
    pub fn new(
        heap: Arc<TableHeap>,
        schema: Schema,
        table: SyntheticTable,
        clock: &'a SimClock,
        seed: u64,
    ) -> Self {
        ConcurrentInPlaceUpdater {
            engine: masm_baselines::InPlaceEngine::new(heap, schema),
            // Modifications only: keeps the table size stable so the
            // normalized comparison is apples-to-apples.
            gen: UpdateStreamGen::uniform(
                table,
                masm_workloads::synthetic::UpdateMix {
                    insert: 0.0,
                    delete: 0.0,
                    modify: 1.0,
                },
                seed,
            ),
            session: IoSession::new(clock.clone()),
            next_ts: 1,
            issued: 0,
            clock,
        }
    }

    /// Catch the updater up to virtual time `now`: it issues updates
    /// back-to-back until its own session time passes `now`.
    pub fn catch_up(&mut self, now: Ns) {
        while self.session.now() < now {
            let (key, op) = self.gen.next_update();
            let handle = SessionHandle::new(self.session.clone());
            if self
                .engine
                .apply_update(&handle, key, op, self.next_ts)
                .is_err()
            {
                break;
            }
            self.session = IoSession::at(self.clock.clone(), handle.now());
            self.next_ts += 1;
            self.issued += 1;
        }
    }
}

/// Time a scan while a saturated in-place updater hammers the same disk.
pub fn time_scan_with_inplace_updates(env: &SyntheticEnv, begin: Key, end: Key, seed: u64) -> Ns {
    let session = env.machine.session();
    let mut updater = ConcurrentInPlaceUpdater::new(
        Arc::clone(env.engine.heap()),
        env.table.schema.clone(),
        env.table.clone(),
        &env.machine.clock,
        seed,
    );
    let start = session.now();
    // Lead with one update so even single-I/O scans queue behind update
    // traffic, as they would under a saturated concurrent updater.
    updater.catch_up(start + 1);
    let mut scan = env.engine.heap().scan_range(session.clone(), begin, end);
    let mut n = 0u64;
    while scan.next().is_some() {
        n += 1;
        if n.is_multiple_of(512) {
            updater.catch_up(session.now());
        }
    }
    std::hint::black_box(n);
    session.now() - start
}

/// Render a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format virtual nanoseconds as seconds.
pub fn secs(ns: Ns) -> f64 {
    ns as f64 / 1e9
}

/// Format a ratio like "1.07x".
pub fn ratio(num: Ns, den: Ns) -> String {
    format!("{:.2}x", num as f64 / den.max(1) as f64)
}

/// Human-readable byte size for range labels.
pub fn size_label(bytes: u64) -> String {
    if bytes >= MIB {
        format!("{}MB", bytes / MIB)
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_devices_share_clock() {
        let m = Machine::new();
        m.disk.write_at(0, 0, &[0u8; 4096]).unwrap();
        assert!(m.clock.now() > 0);
    }

    #[test]
    fn scaled_config_is_valid() {
        let cfg = scaled_masm_config(64 * MIB);
        cfg.validate().unwrap();
        assert!(cfg.ssd_capacity >= 64 * 4096);
        assert_eq!(cfg.ssd_capacity % 4096, 0);
    }

    #[test]
    fn env_builds_and_scans() {
        let env = SyntheticEnv::new(2);
        let t = env.time_pure_scan(0, u64::MAX);
        assert!(t > 0);
        let t2 = env.time_masm_scan(0, u64::MAX);
        assert!(t2 > 0);
    }

    #[test]
    fn fill_cache_reaches_target() {
        let env = SyntheticEnv::new(2);
        env.fill_cache(0.3, 1);
        let cap = env.engine.config().ssd_capacity;
        assert!(env.engine.cached_bytes() as f64 >= 0.3 * cap as f64);
    }

    #[test]
    fn inplace_interference_slows_scans() {
        let env = SyntheticEnv::new(4);
        let max = env.table.max_key();
        let pure = env.time_pure_scan(0, max);
        let with_updates = time_scan_with_inplace_updates(&env, 0, max, 7);
        assert!(
            with_updates as f64 > pure as f64 * 1.3,
            "pure {pure} with {with_updates}"
        );
    }

    #[test]
    fn ranges_are_in_bounds() {
        let env = SyntheticEnv::new(2);
        for (b, e) in env.ranges(4096, 10) {
            assert!(b <= e);
            assert!(e <= env.table.max_key());
        }
    }
}
