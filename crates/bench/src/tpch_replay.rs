//! Shared machinery for the TPC-H replay experiments (Figures 3, 4, 14).
//!
//! The paper replays disk I/O traces of 20 TPC-H queries against its
//! prototype, in three configurations: no updates, concurrent in-place
//! updates, and (Figure 14) MaSM with a per-table division of the flash
//! space. We regenerate the equivalent multi-table range-scan traces
//! (see `masm_workloads::tpch`) and drive the same three configurations.

use std::sync::Arc;

use masm_core::{MasmConfig, MasmEngine};
use masm_pagestore::Key;
use masm_storage::{IoSession, Ns, SessionHandle, SimClock};
use masm_workloads::tpch::{QueryProfile, Table, TpchTables, TpchUpdateGen};

use crate::Machine;

/// A TPC-H machine: tables on one disk, one SSD, one WAL device.
pub struct TpchEnv {
    /// Simulated machine.
    pub machine: Machine,
    /// The replay tables.
    pub tables: TpchTables,
}

impl TpchEnv {
    /// Build tables totalling `total_bytes`.
    pub fn new(total_bytes: u64) -> TpchEnv {
        let machine = Machine::new();
        let session = machine.session();
        let tables = TpchTables::build(&machine.disk, &session, total_bytes).unwrap();
        TpchEnv { machine, tables }
    }

    /// Time one query with no updates. `column_factor` scales each scan
    /// range (1.0 = row store; <1 emulates a column store reading only
    /// the referenced columns' bytes).
    pub fn time_query(&self, q: &QueryProfile, column_factor: f64) -> Ns {
        let session = self.machine.session();
        let start = session.now();
        self.run_query(&session, q, column_factor, &mut |_| {});
        session.now() - start
    }

    /// Time one query while `interleave` is invoked between record
    /// batches (the concurrent-updater hook).
    pub fn time_query_with(
        &self,
        q: &QueryProfile,
        column_factor: f64,
        interleave: &mut dyn FnMut(Ns),
    ) -> Ns {
        let session = self.machine.session();
        let start = session.now();
        self.run_query(&session, q, column_factor, interleave);
        session.now() - start
    }

    fn run_query(
        &self,
        session: &SessionHandle,
        q: &QueryProfile,
        column_factor: f64,
        interleave: &mut dyn FnMut(Ns),
    ) {
        for step in q.steps {
            let (b, e) = self.scaled_range(step, column_factor);
            let mut scan = self
                .tables
                .heap(step.table)
                .scan_range(session.clone(), b, e);
            let mut n = 0u64;
            while scan.next().is_some() {
                n += 1;
                if n.is_multiple_of(512) {
                    interleave(session.now());
                }
            }
            std::hint::black_box(n);
        }
    }

    /// Key range of a step scaled by `column_factor`.
    pub fn scaled_range(
        &self,
        step: &masm_workloads::tpch::ScanStep,
        column_factor: f64,
    ) -> (Key, Key) {
        let (b, e) = self.tables.key_range(step);
        let span = ((e - b) as f64 * column_factor) as u64;
        (b, b + span)
    }
}

/// A saturated in-place updater over the orders + lineitem heaps.
pub struct TpchInPlaceUpdater {
    orders: masm_baselines::InPlaceEngine,
    lineitem: masm_baselines::InPlaceEngine,
    gen: TpchUpdateGen,
    /// Ops from the current group not yet issued (the updater is a
    /// single thread: one I/O chain at a time).
    pending: std::collections::VecDeque<(Table, Key, masm_core::update::UpdateOp)>,
    session: IoSession,
    clock: SimClock,
    next_ts: u64,
    /// Update operations issued (counting each sub-update).
    pub issued: u64,
}

impl TpchInPlaceUpdater {
    /// Build the updater (it mutates the heaps!).
    pub fn new(env: &TpchEnv, seed: u64) -> TpchInPlaceUpdater {
        TpchInPlaceUpdater {
            orders: masm_baselines::InPlaceEngine::new(
                Arc::clone(&env.tables.orders),
                env.tables.schema.clone(),
            ),
            lineitem: masm_baselines::InPlaceEngine::new(
                Arc::clone(&env.tables.lineitem),
                env.tables.schema.clone(),
            ),
            gen: TpchUpdateGen::new(&env.tables, seed),
            pending: std::collections::VecDeque::new(),
            session: IoSession::new(env.machine.clock.clone()),
            clock: env.machine.clock.clone(),
            next_ts: 1,
            issued: 0,
        }
    }

    /// Issue single update operations until the updater's virtual time
    /// passes `now` (a single updater thread keeps one read-modify-write
    /// chain in flight at a time, as in §2.2).
    pub fn catch_up(&mut self, now: Ns) {
        while self.session.now() < now {
            let (table, key, op) = match self.pending.pop_front() {
                Some(next) => next,
                None => {
                    self.pending.extend(self.gen.next_group().ops);
                    continue;
                }
            };
            let handle = SessionHandle::new(self.session.clone());
            let engine = match table {
                Table::Orders => &self.orders,
                _ => &self.lineitem,
            };
            // Skip updates that fail (e.g. page overflow on a full
            // page) — the I/O was still charged.
            let _ = engine.apply_update(&handle, key, op, self.next_ts);
            self.next_ts += 1;
            self.issued += 1;
            self.session = IoSession::at(self.clock.clone(), handle.now());
        }
    }

    /// Apply exactly `n` update operations back-to-back (for the
    /// "query only + update only" bar of Figure 3): returns elapsed.
    ///
    /// Offline application batches and elevator-sorts the updates by
    /// key (the I/O scheduler would do this for a deep queue of
    /// independent writes), which is exactly why "query alone + updates
    /// alone" is cheaper than running them concurrently: online updates
    /// must apply one at a time, interleaved with the scan.
    pub fn apply_exactly(&mut self, n: u64) -> Ns {
        let start = self.session.now();
        let mut ops: Vec<(Table, Key, masm_core::update::UpdateOp)> = Vec::new();
        while (ops.len() as u64) < n {
            ops.extend(self.gen.next_group().ops);
        }
        ops.truncate(n as usize);
        ops.sort_by_key(|(t, k, _)| (matches!(t, Table::Orders), *k));
        for (table, key, op) in ops {
            let handle = SessionHandle::new(self.session.clone());
            let engine = match table {
                Table::Orders => &self.orders,
                _ => &self.lineitem,
            };
            let _ = engine.apply_update(&handle, key, op, self.next_ts);
            self.next_ts += 1;
            self.issued += 1;
            self.session = IoSession::at(self.clock.clone(), handle.now());
        }
        self.session.now() - start
    }
}

/// The Figure-14 configuration: MaSM engines for orders and lineitem
/// dividing one SSD, other tables scanned raw.
pub struct TpchMasm {
    /// Engine over the orders table.
    pub orders: Arc<MasmEngine>,
    /// Engine over the lineitem table.
    pub lineitem: Arc<MasmEngine>,
}

impl TpchMasm {
    /// Build the two engines over `env`'s tables, dividing a flash space
    /// of `flash_bytes` between them (¼ orders, ¾ lineitem — matching
    /// their data sizes).
    pub fn new(env: &TpchEnv, flash_bytes: u64) -> TpchMasm {
        let page = 4096usize;
        let li_cap = (flash_bytes * 3 / 4 / page as u64) * page as u64;
        let ord_cap = (flash_bytes / 4 / page as u64) * page as u64;
        let mk = |heap: &Arc<masm_pagestore::TableHeap>, cap: u64, base: u64| {
            let cfg = MasmConfig {
                ssd_page_size: page,
                ssd_capacity: cap.max(64 * page as u64),
                alpha: 1.0,
                index_granularity: masm_core::IndexGranularity::Bytes(1024),
                migration_threshold: 1.0,
                merge_duplicates: true,
                ssd_region_base: base,
                ..MasmConfig::default()
            };
            MasmEngine::new(
                Arc::clone(heap),
                env.machine.ssd.clone(),
                env.machine.wal.clone(),
                env.tables.schema.clone(),
                cfg,
            )
            .unwrap()
        };
        TpchMasm {
            lineitem: mk(&env.tables.lineitem, li_cap, 0),
            orders: mk(&env.tables.orders, ord_cap, li_cap),
        }
    }

    /// Fill both caches to `fraction` of their capacity with correlated
    /// update groups.
    pub fn fill(&self, env: &TpchEnv, fraction: f64, seed: u64) {
        let session = env.machine.session();
        let mut gen = TpchUpdateGen::new(&env.tables, seed);
        let target = |e: &Arc<MasmEngine>| (e.config().ssd_capacity as f64 * fraction) as u64;
        while self.lineitem.cached_bytes() < target(&self.lineitem)
            || self.orders.cached_bytes() < target(&self.orders)
        {
            let group = gen.next_group();
            for (table, key, op) in group.ops {
                let engine = match table {
                    Table::Orders => &self.orders,
                    _ => &self.lineitem,
                };
                engine.apply_update(&session, key, op).unwrap();
            }
        }
    }

    /// Time one query with MaSM merging on orders/lineitem scans.
    pub fn time_query(&self, env: &TpchEnv, q: &QueryProfile) -> Ns {
        let session = env.machine.session();
        let start = session.now();
        for step in q.steps {
            let (b, e) = env.tables.key_range(step);
            let n = match step.table {
                Table::Orders => self
                    .orders
                    .begin_scan(session.clone(), b, e)
                    .unwrap()
                    .count(),
                Table::Lineitem => self
                    .lineitem
                    .begin_scan(session.clone(), b, e)
                    .unwrap()
                    .count(),
                other => env
                    .tables
                    .heap(other)
                    .scan_range(session.clone(), b, e)
                    .count(),
            };
            std::hint::black_box(n);
        }
        session.now() - start
    }
}
