//! Criterion micro-benchmarks for the CPU-side hot paths of MaSM.
//!
//! The figures report *virtual* device time; these benches measure real
//! CPU cost of the in-memory machinery (encoding, page packing, k-way
//! merging, buffer operations) — the part the paper argues is negligible
//! next to I/O (Figure 13), which these numbers substantiate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use std::sync::Arc;

use masm_core::config::MasmConfig;
use masm_core::membuf::UpdateBuffer;
use masm_core::merge::{MergeDataUpdates, MergeUpdates, UpdateStream};
use masm_core::run::{build_run, write_run, RunScan};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_pagestore::{Page, Record, Schema};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn sample_updates(n: u64) -> Vec<UpdateRecord> {
    (0..n)
        .map(|i| {
            let op = match i % 3 {
                0 => UpdateOp::Insert(vec![7u8; 92]),
                1 => UpdateOp::Delete,
                _ => UpdateOp::Replace(vec![9u8; 92]),
            };
            UpdateRecord::new(i + 1, i * 2 + 1, op)
        })
        .collect()
}

fn bench_update_codec(c: &mut Criterion) {
    let updates = sample_updates(1000);
    let mut group = c.benchmark_group("update_codec");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("encode_1000", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(64 * 1024);
            for u in &updates {
                u.encode_into(&mut buf);
            }
            black_box(buf.len())
        })
    });
    let mut encoded = Vec::new();
    for u in &updates {
        u.encode_into(&mut encoded);
    }
    group.bench_function("decode_1000", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut n = 0;
            while let Some((u, used)) = UpdateRecord::decode(&encoded[pos..]) {
                pos += used;
                n += 1;
                black_box(u.key);
            }
            assert_eq!(n, 1000);
        })
    });
    group.finish();
}

fn bench_page_packing(c: &mut Criterion) {
    let records: Vec<Record> = (0..39).map(|i| Record::synthetic(i * 2, 92)).collect();
    let mut group = c.benchmark_group("page");
    group.bench_function("pack_4k_page", |b| {
        b.iter(|| {
            let mut p = Page::new(4096);
            for r in &records {
                assert!(p.append(r));
            }
            black_box(p.record_count())
        })
    });
    let mut page = Page::new(4096);
    for r in &records {
        page.append(r);
    }
    group.bench_function("decode_4k_page", |b| {
        b.iter(|| {
            let n: usize = page.records().map(|r| r.payload.len()).sum();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_membuf(c: &mut Criterion) {
    let mut group = c.benchmark_group("membuf");
    group.throughput(Throughput::Elements(5000));
    group.bench_function("push_drain_5000", |b| {
        b.iter(|| {
            let mut buf = UpdateBuffer::new(usize::MAX);
            for u in sample_updates(5000) {
                buf.push(u);
            }
            black_box(buf.drain_sorted().len())
        })
    });
    group.finish();
}

fn bench_kway_merge(c: &mut Criterion) {
    let schema = Schema::synthetic_100b();
    let mut group = c.benchmark_group("merge");
    group.throughput(Throughput::Elements(8000));
    group.bench_function("merge_updates_8_streams_x1000", |b| {
        b.iter(|| {
            let streams: Vec<UpdateStream> = (0..8)
                .map(|s| {
                    let us: Vec<UpdateRecord> = (0..1000u64)
                        .map(|i| UpdateRecord::new(s * 1000 + i + 1, i * 16 + s, UpdateOp::Delete))
                        .collect();
                    Box::new(us.into_iter()) as UpdateStream
                })
                .collect();
            let n = MergeUpdates::new(streams, schema.clone(), u64::MAX).count();
            black_box(n)
        })
    });
    group.bench_function("merge_data_updates_10k_records", |b| {
        let updates = sample_updates(2000);
        b.iter(|| {
            let data = (0..10_000u64).map(|i| (Record::synthetic(i * 2, 92), 0u64));
            let ups: Vec<UpdateStream> = vec![Box::new(updates.clone().into_iter())];
            let merged = MergeUpdates::new(ups, schema.clone(), u64::MAX);
            let n = MergeDataUpdates::new(data, merged, schema.clone()).count();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_run_roundtrip(c: &mut Criterion) {
    let cfg = MasmConfig::small_for_tests();
    let updates = sample_updates(10_000);
    let mut group = c.benchmark_group("run");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("build_run_10k", |b| {
        b.iter(|| {
            let (run, bytes) = build_run(&cfg, 0, 0, 1, &updates);
            black_box((run.count, bytes.len()))
        })
    });
    group.bench_function("write_and_scan_run_10k", |b| {
        b.iter(|| {
            let clock = SimClock::new();
            let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
            let session = SessionHandle::fresh(clock);
            let run = write_run(&session, &ssd, &cfg, 0, 0, 1, &updates).unwrap();
            let n = RunScan::new(ssd, session, Arc::new(run), 0, u64::MAX).count();
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_update_codec,
    bench_page_packing,
    bench_membuf,
    bench_kway_merge,
    bench_run_roundtrip
);
criterion_main!(benches);
