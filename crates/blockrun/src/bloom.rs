//! Per-run bloom filter for point lookups.
//!
//! A range scan prunes blocks with zone maps, but a *point* lookup over
//! many runs mostly hits runs that do not contain the key at all. A
//! small bloom filter per run (10 bits/key ≈ 0.8% false positives at
//! k = 7) lets those runs answer "definitely absent" from memory,
//! skipping the SSD read entirely — the same role bloom filters play in
//! SST-based LSM stores.
//!
//! Double hashing: `g_i(x) = h1(x) + i·h2(x)` over two independent
//! 64-bit mixes of the key (Kirsch–Mitzenmacher), which matches the
//! false-positive behaviour of k independent hashes.

use crate::block::{get_varint, put_varint};

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An immutable bloom filter over a run's key set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
}

impl BloomFilter {
    /// Number of hash probes for a given bits-per-key budget
    /// (`k_opt = bits_per_key · ln 2`).
    pub fn optimal_k(bits_per_key: u32) -> u32 {
        ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 30)
    }

    /// Theoretical false-positive rate for a bits-per-key budget.
    pub fn expected_fpr(bits_per_key: u32) -> f64 {
        let k = Self::optimal_k(bits_per_key) as f64;
        (1.0 - (-k / bits_per_key as f64).exp()).powf(k)
    }

    /// Build a filter over `keys` with `bits_per_key` bits per key.
    ///
    /// The bit count rounds up to a power of two so that filters of
    /// different sizes stay *foldable* into one another
    /// ([`BloomFilter::fold_to`]) — compaction unions input filters of
    /// unequal runs without re-reading any key.
    pub fn build(keys: impl IntoIterator<Item = u64>, bits_per_key: u32) -> Self {
        let keys: Vec<u64> = keys.into_iter().collect();
        let n_bits = (keys.len() as u64 * bits_per_key as u64)
            .max(64)
            .next_power_of_two();
        let mut filter = BloomFilter {
            bits: vec![0u64; (n_bits / 64) as usize],
            n_bits,
            k: Self::optimal_k(bits_per_key),
        };
        for key in keys {
            let (h1, h2) = filter.hashes(key);
            for i in 0..filter.k as u64 {
                let bit = h1.wrapping_add(i.wrapping_mul(h2)) % filter.n_bits;
                filter.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        filter
    }

    fn hashes(&self, key: u64) -> (u64, u64) {
        let h1 = mix64(key ^ 0x9E37_79B9_7F4A_7C15);
        let h2 = mix64(key.wrapping_add(0x6A09_E667_F3BC_C909)) | 1;
        (h1, h2)
    }

    /// Whether `key` may be present (false ⇒ definitely absent).
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = self.hashes(key);
        (0..self.k as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the bit array in bytes.
    pub fn bit_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of bits in the filter.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Fraction of bits set (1.0 ⇒ saturated, every probe answers
    /// "maybe").
    pub fn fill_ratio(&self) -> f64 {
        let ones: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        ones as f64 / self.n_bits as f64
    }

    /// Shrink to `n_bits` by OR-folding the upper halves onto the lower
    /// ones. Because probe positions are `h mod n_bits` and both sizes
    /// are powers of two, `h mod n/2 == (h mod n) mod n/2` — so every
    /// key the original accepts, the folded filter accepts too (no
    /// false negatives; the false-positive rate rises with the tighter
    /// packing). `None` when either size is not a power of two or
    /// `n_bits` exceeds the current size.
    pub fn fold_to(&self, n_bits: u64) -> Option<BloomFilter> {
        if !self.n_bits.is_power_of_two()
            || !n_bits.is_power_of_two()
            || n_bits > self.n_bits
            || n_bits < 64
        {
            return None;
        }
        let mut bits = self.bits.clone();
        let mut cur = bits.len();
        while (cur as u64) * 64 > n_bits {
            cur /= 2;
            for i in 0..cur {
                bits[i] |= bits[i + cur];
            }
        }
        bits.truncate(cur);
        Some(BloomFilter {
            bits,
            n_bits,
            k: self.k,
        })
    }

    /// Union: a filter accepting every key either input accepts, used
    /// by compaction to rebuild an output run's filter from its inputs'
    /// without re-reading any key (the output's key set is a subset of
    /// the inputs' union). Mismatched power-of-two sizes fold down to
    /// the smaller one first; `None` when the probe counts differ or
    /// either size resists folding.
    pub fn union(&self, other: &BloomFilter) -> Option<BloomFilter> {
        if self.k != other.k {
            return None;
        }
        let target = self.n_bits.min(other.n_bits);
        let a = self.fold_to(target)?;
        let b = other.fold_to(target)?;
        Some(BloomFilter {
            bits: a.bits.iter().zip(&b.bits).map(|(x, y)| x | y).collect(),
            n_bits: target,
            k: a.k,
        })
    }

    /// Serialize (without checksum; the enclosing region adds one).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        put_varint(&mut out, self.k as u64);
        put_varint(&mut out, self.n_bits);
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize a filter produced by [`BloomFilter::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (k, used) = get_varint(buf)?;
        let mut pos = used;
        let (n_bits, used) = get_varint(&buf[pos..])?;
        pos += used;
        if n_bits == 0 || n_bits % 64 != 0 || k == 0 || k > 64 {
            return None;
        }
        let n_words = (n_bits / 64) as usize;
        if buf.len() != pos + n_words * 8 {
            return None;
        }
        let bits = buf[pos..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Some(BloomFilter {
            bits,
            n_bits,
            k: k as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<u64> = (0..5000).map(|i| i * 7 + 1).collect();
        let f = BloomFilter::build(keys.iter().copied(), 10);
        for k in keys {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let keys: Vec<u64> = (0..10_000).collect();
        let f = BloomFilter::build(keys, 10);
        let probes = 100_000u64;
        let fps = (0..probes)
            .map(|i| 1_000_000 + i * 3)
            .filter(|&k| f.contains(k))
            .count();
        let rate = fps as f64 / probes as f64;
        let expect = BloomFilter::expected_fpr(10);
        assert!(
            rate <= expect * 2.0,
            "fp rate {rate:.5} vs expected {expect:.5}"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = BloomFilter::build(0..1000, 12);
        let back = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn decode_rejects_malformed() {
        let f = BloomFilter::build(0..10, 8);
        let enc = f.encode();
        assert!(BloomFilter::decode(&enc[..enc.len() - 1]).is_none());
        assert!(BloomFilter::decode(&[]).is_none());
    }

    #[test]
    fn union_accepts_both_key_sets() {
        // Same key count ⇒ same geometry ⇒ plain bitwise union.
        let a = BloomFilter::build(0..1000, 10);
        let b = BloomFilter::build(5000..6000, 10);
        let u = a.union(&b).expect("same geometry");
        for k in (0..1000).chain(5000..6000) {
            assert!(u.contains(k), "no false negatives for {k}");
        }
        // Different sizes fold to the smaller geometry and still union.
        let c = BloomFilter::build(9000..9010, 10);
        assert!(c.n_bits() < a.n_bits());
        let u = a.union(&c).expect("folds to the smaller size");
        for k in (0..1000).chain(9000..9010) {
            assert!(u.contains(k), "no false negatives for {k}");
        }
        // Mismatched probe counts cannot union.
        let d = BloomFilter::build(0..1000, 4);
        assert!(a.union(&d).is_none());
    }

    #[test]
    fn fold_preserves_membership() {
        let keys: Vec<u64> = (0..4000).map(|i| i * 11 + 3).collect();
        let f = BloomFilter::build(keys.iter().copied(), 10);
        let folded = f.fold_to(f.n_bits() / 4).expect("power-of-two fold");
        for &k in &keys {
            assert!(folded.contains(k), "no false negatives for {k}");
        }
        assert!(folded.fill_ratio() > f.fill_ratio());
        assert!(f.fold_to(f.n_bits() * 2).is_none(), "cannot grow");
        assert!(f.fold_to(32).is_none(), "below the 64-bit floor");
    }

    #[test]
    fn empty_key_set_is_all_absent() {
        let f = BloomFilter::build(std::iter::empty(), 10);
        let hits = (0..1000u64).filter(|&k| f.contains(k)).count();
        assert_eq!(hits, 0);
    }
}
