//! Streaming construction of a block run: decoded entries in, raw
//! verbatim blocks in, one encoded run out.
//!
//! [`crate::format::build_run`] covers the common case of materializing
//! a run from a flat slice of entries. Compaction needs more: the merge
//! planner ([`crate::plan`]) classifies whole input blocks as *moves*
//! (no other input overlaps their key range), and those blocks should
//! flow into the output **without being delta-decoded** — their encoded
//! bytes and zone entries are already exactly what the output needs.
//!
//! [`RunBuilder`] therefore accepts an arbitrary key-ordered interleave
//! of
//!
//! * [`RunBuilder::append_entry`] — buffered into fixed-budget data
//!   blocks exactly like `build_run`, and
//! * [`RunBuilder::append_raw_block`] — a verbatim encoded block plus
//!   its original [`ZoneMap`]; the bytes are CRC-verified against the
//!   zone's checksum (a corrupted move fails loudly) and stitched in
//!   with only the zone's offset rewritten — codec id, raw length, and
//!   CRC travel verbatim, so zero-decode compaction composes with
//!   per-block compression for free.
//!
//! [`RunBuilder::finish`] rebuilds the index block, bloom region, and
//! footer from the accumulated zone entries. The bloom filter comes
//! from the appended keys when every block was built here; when raw
//! blocks were moved their keys were never seen, so the caller provides
//! a fallback — typically the [`BloomFilter::union`] of the input runs'
//! filters, which is a valid over-approximation because the output's
//! keys are a subset of the inputs' keys.

use crate::block::{encode_block, flat_entry_len, Entry};
use crate::bloom::BloomFilter;
use crate::checksum::crc32;
use crate::format::{
    BlockRunConfig, BlockRunError, BlockRunMeta, BlockRunResult, ZoneMap, FOOTER_LEN, MAGIC,
    VERSION, ZONE_MAP_LEN,
};

/// Streaming builder of one block run; see the module docs.
#[derive(Debug)]
pub struct RunBuilder {
    cfg: BlockRunConfig,
    bytes: Vec<u8>,
    zones: Vec<ZoneMap>,
    block: Vec<Entry>,
    block_encoded: usize,
    /// Keys of every appended (decoded) entry, for the bloom filter.
    keys: Vec<u64>,
    raw_blocks: u64,
    raw_entries: u64,
    /// Sample-based codec selection for [`masm_codec::CodecChoice::Adaptive`]
    /// (fixed choices pass through); its CPU accounting lands in the
    /// finished run's [`BlockRunMeta::selector`].
    selector: masm_codec::AdaptiveSelector,
}

impl RunBuilder {
    /// An empty builder.
    pub fn new(cfg: BlockRunConfig) -> Self {
        assert!(cfg.block_bytes >= 64, "block_bytes too small");
        let selector = masm_codec::AdaptiveSelector::new(cfg.codec);
        RunBuilder {
            cfg,
            bytes: Vec::new(),
            zones: Vec::new(),
            block: Vec::new(),
            block_encoded: 4, // count header
            keys: Vec::new(),
            raw_blocks: 0,
            raw_entries: 0,
            selector,
        }
    }

    /// Largest key appended so far (across entries and raw blocks).
    fn last_key(&self) -> Option<u64> {
        let blk = self.block.last().map(|e| e.key);
        blk.or(self.zones.last().map(|z| z.max_key))
    }

    fn flush_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        // Encode the flat (raw) block, then run the configured codec;
        // the zone entry records both sizes and the id of the codec
        // that actually produced the stored bytes.
        let flat = encode_block(&self.block);
        let (codec_id, stored) = self.selector.encode_block(&flat);
        self.zones.push(ZoneMap {
            offset: self.bytes.len() as u64,
            len: stored.len() as u32,
            count: self.block.len() as u32,
            min_key: self.block.first().expect("non-empty").key,
            max_key: self.block.last().expect("non-empty").key,
            min_ts: self.block.iter().map(|e| e.ts).min().expect("non-empty"),
            max_ts: self.block.iter().map(|e| e.ts).max().expect("non-empty"),
            crc: crc32(&stored),
            raw_len: flat.len() as u32,
            codec_id,
        });
        self.bytes.extend_from_slice(&stored);
        self.block.clear();
        self.block_encoded = 4;
    }

    /// Append one decoded entry; entries must arrive in `(key, ts)`
    /// order relative to everything appended before.
    ///
    /// The block budget applies to the **raw** (flat) encoding, so the
    /// zone count of a run — and with it the pinned metadata footprint
    /// — is identical whatever codec compresses the stored bytes.
    pub fn append_entry(&mut self, e: Entry) {
        debug_assert!(
            self.last_key().is_none_or(|k| k <= e.key),
            "entries must be appended in key order"
        );
        let add = flat_entry_len(&e);
        if !self.block.is_empty() && self.block_encoded + add > self.cfg.block_bytes {
            self.flush_block();
        }
        self.block_encoded += add;
        self.keys.push(e.key);
        self.block.push(e);
    }

    /// Append a verbatim encoded data block with its original zone
    /// entry. `raw` is verified against `zone.crc` — and **never**
    /// decoded. Any buffered entries are flushed into their own block
    /// first; the moved block's keys must sort at or after everything
    /// appended so far.
    pub fn append_raw_block(&mut self, raw: &[u8], zone: &ZoneMap) -> BlockRunResult<()> {
        if raw.len() != zone.len as usize {
            return Err(BlockRunError::Corrupt("raw block length != zone length"));
        }
        if crc32(raw) != zone.crc {
            return Err(BlockRunError::ChecksumMismatch {
                region: "block",
                index: self.zones.len() as u32,
            });
        }
        debug_assert!(
            self.last_key().is_none_or(|k| k <= zone.min_key),
            "raw blocks must be appended in key order"
        );
        self.flush_block();
        self.zones.push(ZoneMap {
            offset: self.bytes.len() as u64,
            ..*zone
        });
        self.bytes.extend_from_slice(raw);
        self.raw_blocks += 1;
        self.raw_entries += zone.count as u64;
        Ok(())
    }

    /// Raw blocks appended so far.
    pub fn raw_blocks(&self) -> u64 {
        self.raw_blocks
    }

    /// Entries buffered in the currently open (un-encoded) block. The
    /// builder's only entry-granular in-memory state: streaming callers
    /// use this to assert their peak working set stays block-bounded.
    pub fn open_block_entries(&self) -> usize {
        self.block.len()
    }

    /// Entries appended so far (decoded entries + raw block counts).
    pub fn entry_count(&self) -> u64 {
        self.keys.len() as u64 + self.raw_entries
    }

    /// Finalize with the default bloom policy: build the filter from
    /// the appended keys when no raw block was moved (their keys were
    /// never observed), otherwise omit it. Compaction callers that can
    /// union the input filters use [`RunBuilder::finish_with_bloom`].
    pub fn finish(self) -> (BlockRunMeta, Vec<u8>) {
        let bloom = (self.raw_blocks == 0
            && self.cfg.bloom_bits_per_key > 0
            && !self.keys.is_empty())
        .then(|| BloomFilter::build(self.keys.iter().copied(), self.cfg.bloom_bits_per_key));
        self.finish_with_bloom(bloom)
    }

    /// Finalize with an explicit bloom filter (or none). The filter
    /// must accept every key in the run; a superset (e.g. the union of
    /// the input runs' filters) is fine — bloom filters only promise
    /// "definitely absent".
    pub fn finish_with_bloom(mut self, bloom: Option<BloomFilter>) -> (BlockRunMeta, Vec<u8>) {
        self.flush_block();
        let data_bytes = self.bytes.len() as u64;
        let entry_count: u64 = self.zones.iter().map(|z| z.count as u64).sum();

        // Index block: count, zone maps, CRC of the preceding bytes.
        let index_off = data_bytes;
        let mut index = Vec::with_capacity(4 + self.zones.len() * ZONE_MAP_LEN + 4);
        index.extend_from_slice(&(self.zones.len() as u32).to_le_bytes());
        for z in &self.zones {
            z.encode_into(&mut index);
        }
        let index_crc = crc32(&index);
        index.extend_from_slice(&index_crc.to_le_bytes());
        let index_len = index.len() as u64;
        self.bytes.extend_from_slice(&index);

        // Bloom block: encoded filter + CRC.
        let (bloom_off, bloom_len) = match &bloom {
            Some(b) => {
                let off = self.bytes.len() as u64;
                let mut enc = b.encode();
                let crc = crc32(&enc);
                enc.extend_from_slice(&crc.to_le_bytes());
                self.bytes.extend_from_slice(&enc);
                (off, enc.len() as u64)
            }
            None => (0, 0),
        };

        let min_key = self.zones.first().map_or(u64::MAX, |z| z.min_key);
        let max_key = self.zones.last().map_or(0, |z| z.max_key);
        let min_ts = self
            .zones
            .iter()
            .map(|z| z.min_ts)
            .min()
            .unwrap_or(u64::MAX);
        let max_ts = self.zones.iter().map(|z| z.max_ts).max().unwrap_or(0);

        // Footer (fixed FOOTER_LEN bytes).
        let mut footer = Vec::with_capacity(FOOTER_LEN as usize);
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        footer.extend_from_slice(&VERSION.to_le_bytes());
        footer.extend_from_slice(&(self.zones.len() as u32).to_le_bytes());
        footer.extend_from_slice(&entry_count.to_le_bytes());
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&index_len.to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&bloom_len.to_le_bytes());
        footer.extend_from_slice(&min_key.to_le_bytes());
        footer.extend_from_slice(&max_key.to_le_bytes());
        footer.extend_from_slice(&min_ts.to_le_bytes());
        footer.extend_from_slice(&max_ts.to_le_bytes());
        footer.extend_from_slice(&(self.cfg.codec.as_id() as u32).to_le_bytes());
        let crc = crc32(&footer);
        footer.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(footer.len() as u64, FOOTER_LEN);
        self.bytes.extend_from_slice(&footer);

        let meta = BlockRunMeta {
            base: 0,
            total_bytes: self.bytes.len() as u64,
            data_bytes,
            entry_count,
            min_key,
            max_key,
            min_ts,
            max_ts,
            zones: self.zones,
            bloom,
            default_codec: self.cfg.codec,
            selector: self.selector.stats(),
        };
        (meta, self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{build_run, read_meta, write_built, BlockRunScan};
    use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
    use std::sync::Arc;

    fn cfg() -> BlockRunConfig {
        BlockRunConfig {
            block_bytes: 128,
            bloom_bits_per_key: 10,
            codec: masm_codec::CodecChoice::Delta,
        }
    }

    fn cfg_with(codec: masm_codec::CodecChoice) -> BlockRunConfig {
        BlockRunConfig { codec, ..cfg() }
    }

    fn entries(keys: std::ops::Range<u64>) -> Vec<Entry> {
        keys.map(|k| Entry::new(k, k + 1, vec![k as u8; 8]))
            .collect()
    }

    #[test]
    fn builder_matches_build_run_byte_for_byte() {
        let es = entries(0..500);
        let (want_meta, want_bytes) = build_run(&cfg(), &es);
        let mut b = RunBuilder::new(cfg());
        for e in &es {
            b.append_entry(e.clone());
        }
        let (meta, bytes) = b.finish();
        assert_eq!(bytes, want_bytes);
        assert_eq!(meta.zones, want_meta.zones);
        assert_eq!(meta.bloom, want_meta.bloom);
        assert_eq!(meta.entry_count, want_meta.entry_count);
    }

    #[test]
    fn raw_blocks_stitch_with_preserved_crcs() {
        // Build a source run, then move all of its blocks into a new
        // run through the raw path; CRCs and bytes must be identical.
        let es = entries(0..300);
        let (src_meta, src_bytes) = build_run(&cfg(), &es);
        assert!(src_meta.zones.len() > 2);

        let mut b = RunBuilder::new(cfg());
        for z in &src_meta.zones {
            let raw = &src_bytes[z.offset as usize..(z.offset + z.len as u64) as usize];
            b.append_raw_block(raw, z).unwrap();
        }
        assert_eq!(b.raw_blocks(), src_meta.zones.len() as u64);
        let (meta, bytes) = b.finish();
        assert_eq!(meta.entry_count, src_meta.entry_count);
        assert!(meta.bloom.is_none(), "moved keys were never observed");
        for (out, src) in meta.zones.iter().zip(&src_meta.zones) {
            assert_eq!(out.crc, src.crc, "CRC preserved verbatim");
            assert_eq!(out.len, src.len);
            assert_eq!(
                crc32(&bytes[out.offset as usize..(out.offset + out.len as u64) as usize]),
                out.crc
            );
        }
    }

    #[test]
    fn interleaved_entries_and_raw_blocks_scan_in_order() {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let s = SessionHandle::fresh(clock);

        // Raw source covering keys 1000..1300.
        let (src_meta, src_bytes) = build_run(&cfg(), &entries(1000..1300));

        let mut b = RunBuilder::new(cfg());
        for e in entries(0..100) {
            b.append_entry(e);
        }
        for z in &src_meta.zones {
            let raw = &src_bytes[z.offset as usize..(z.offset + z.len as u64) as usize];
            b.append_raw_block(raw, z).unwrap();
        }
        for e in entries(2000..2100) {
            b.append_entry(e);
        }
        let (mut meta, bytes) = b.finish();
        meta.base = 0;
        write_built(&s, &dev, &meta, &bytes).unwrap();

        let back = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
        assert_eq!(back.zones, meta.zones);
        let got: Vec<u64> = BlockRunScan::new(dev, s, Arc::new(back), None, 1, 0, u64::MAX)
            .map(|e| e.key)
            .collect();
        let want: Vec<u64> = (0..100).chain(1000..1300).chain(2000..2100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mixed_codec_raw_blocks_relink_verbatim() {
        use masm_codec::CodecChoice;
        // Three source runs, one per codec, in disjoint key bands; every
        // block moves through the raw path into one output run.
        let sources: Vec<(BlockRunMeta, Vec<u8>)> = [
            (CodecChoice::Identity, 0u64),
            (CodecChoice::Delta, 1000),
            (CodecChoice::Lz, 2000),
        ]
        .into_iter()
        .map(|(codec, base)| build_run(&cfg_with(codec), &entries(base..base + 200)))
        .collect();

        let mut b = RunBuilder::new(cfg());
        for (meta, bytes) in &sources {
            for z in &meta.zones {
                let raw = &bytes[z.offset as usize..(z.offset + z.len as u64) as usize];
                b.append_raw_block(raw, z).unwrap();
            }
        }
        let (out, out_bytes) = b.finish();
        let src_zones: Vec<&ZoneMap> = sources.iter().flat_map(|(m, _)| m.zones.iter()).collect();
        assert_eq!(out.zones.len(), src_zones.len());
        for (z, src) in out.zones.iter().zip(src_zones) {
            assert_eq!(
                (z.codec_id, z.crc, z.len, z.raw_len),
                (src.codec_id, src.crc, src.len, src.raw_len),
                "codec id and sizes preserved verbatim"
            );
        }
        // The stitched run still decodes every band in key order.
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let s = SessionHandle::fresh(clock);
        let mut meta = out;
        meta.base = 0;
        write_built(&s, &dev, &meta, &out_bytes).unwrap();
        let got: Vec<u64> = BlockRunScan::new(dev, s, Arc::new(meta), None, 1, 0, u64::MAX)
            .map(|e| e.key)
            .collect();
        let want: Vec<u64> = (0..200).chain(1000..1200).chain(2000..2200).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn adaptive_builder_records_selector_savings() {
        let mut b = RunBuilder::new(cfg_with(masm_codec::CodecChoice::Adaptive));
        for e in entries(0..2000) {
            b.append_entry(e);
        }
        let (meta, _) = b.finish();
        assert!(
            meta.zones.len() > masm_codec::DEFAULT_SAMPLE_EVERY,
            "need several sampling windows ({} blocks)",
            meta.zones.len()
        );
        let comp = meta.compression();
        assert!(comp.codec_trials > 0);
        assert!(comp.codec_trials_saved > 0, "sampling saved trial encodes");
        assert_eq!(
            comp.codec_trials + comp.codec_trials_saved,
            2 * comp.blocks,
            "every block accounts for the 2-trial baseline"
        );
        // Fixed codecs run no trials at all.
        let mut fixed = RunBuilder::new(cfg());
        for e in entries(0..200) {
            fixed.append_entry(e);
        }
        let (meta, _) = fixed.finish();
        assert_eq!(meta.compression().codec_trials, 0);
        assert_eq!(meta.compression().codec_trials_saved, 0);
    }

    #[test]
    fn corrupted_raw_block_is_rejected() {
        let (src_meta, src_bytes) = build_run(&cfg(), &entries(0..100));
        let z = &src_meta.zones[0];
        let mut raw = src_bytes[z.offset as usize..(z.offset + z.len as u64) as usize].to_vec();
        raw[5] ^= 0xFF;
        let mut b = RunBuilder::new(cfg());
        assert!(matches!(
            b.append_raw_block(&raw, z),
            Err(BlockRunError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            b.append_raw_block(&raw[..raw.len() - 1], z),
            Err(BlockRunError::Corrupt(_))
        ));
    }

    #[test]
    fn finish_with_union_bloom_covers_all_keys() {
        let a = BloomFilter::build(0..100, 10);
        let b = BloomFilter::build(100..200, 10);
        let union = a.union(&b).expect("same geometry");
        let (src_meta, src_bytes) = build_run(&cfg(), &entries(0..200));
        let mut builder = RunBuilder::new(cfg());
        for z in &src_meta.zones {
            let raw = &src_bytes[z.offset as usize..(z.offset + z.len as u64) as usize];
            builder.append_raw_block(raw, z).unwrap();
        }
        let (meta, _) = builder.finish_with_bloom(Some(union));
        for k in 0..200u64 {
            assert!(meta.might_contain(k), "no false negatives for {k}");
        }
    }

    #[test]
    fn empty_builder_finishes_to_empty_run() {
        let (meta, bytes) = RunBuilder::new(cfg()).finish();
        assert_eq!(meta.entry_count, 0);
        assert!(meta.zones.is_empty());
        let (want_meta, want_bytes) = build_run(&cfg(), &[]);
        assert_eq!(bytes, want_bytes);
        assert_eq!(meta.zones, want_meta.zones);
    }
}
