//! CRC-32 (IEEE 802.3 polynomial) for block, index, and footer
//! integrity.
//!
//! Every region of a block run — each data block, the index block, the
//! bloom block, and the footer — carries a CRC of its bytes, so a
//! corrupted SSD read is detected at decode time instead of surfacing as
//! garbage update records. Implemented locally (table-driven, reflected
//! 0xEDB88320) because the build environment cannot fetch a checksum
//! crate.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 500, 1023] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "byte {byte} bit {bit}");
            }
        }
    }
}
