//! # masm-blockrun — immutable block-based run storage
//!
//! The MaSM engine caches sorted runs of updates on the SSD and merges
//! them into every range scan, so the cost of reading a run back *is*
//! the cost of online updates. This crate gives those runs the storage
//! format modern SST-based engines use, while preserving the paper's
//! core invariant that runs are written strictly sequentially:
//!
//! * [`block`] — fixed-budget data blocks of flat-encoded entries; the
//!   block is the read I/O unit (64 KB of raw entry bytes by default,
//!   the paper's §4.1 SSD page).
//! * **codec stage** — every block is compressed through a pluggable
//!   [`masm_codec::Codec`] (identity, the delta+varint encoding, an
//!   LZ-style byte codec, or per-block adaptive selection); the winning
//!   codec id and raw length live in the block's zone-map entry, so
//!   moved blocks carry their codec verbatim through compaction.
//! * [`checksum`] — CRC-32 on every block, the index, the bloom filter,
//!   and the footer, so a corrupted SSD read fails loudly
//!   ([`BlockRunError::ChecksumMismatch`]) instead of decoding garbage;
//!   block CRCs cover the *stored* (post-codec) bytes, so a truncated
//!   compressed block is rejected before any codec decode runs.
//! * [`format`](mod@format) — the run layout: data blocks, an index block of
//!   [`ZoneMap`]s (first-key → offset plus min/max key and timestamp per
//!   block, for pruning, plus `{codec_id, len, raw_len}` for the codec
//!   stage), an optional per-run bloom filter, and a self-describing
//!   footer carrying the writer's default codec. Includes the
//!   sequential writer, the verifying reader, a zone-map-pruned range
//!   scan with async prefetch, and a bloom-guarded point lookup.
//! * [`bloom`] — the per-run bloom filter (point lookups skip runs that
//!   definitely lack the key, with zero I/O).
//! * [`plan`] — merge planning over zone maps: partitions a k-way merge
//!   into *move* segments (whole blocks no other input overlaps,
//!   relinked verbatim) and *merge* segments (decoded and folded), so
//!   compaction cost is proportional to overlap, not input size.
//! * [`builder`] — streaming run construction that accepts both decoded
//!   entries and raw verbatim blocks ([`RunBuilder::append_raw_block`]),
//!   the execution half of the plan.
//! * [`cache`] — a sharded, scan-resistant, two-tier [`BlockCache`]
//!   shared by all scans of an engine: tier 1 holds decoded blocks
//!   under a segmented (probation/protected) SLRU policy, so one-shot
//!   sweeps cannot displace the hot set; tier 2 optionally holds
//!   tier-1 victims' *stored* (post-codec) bytes, serving re-references
//!   with one codec decode instead of a device read. Counters are
//!   surfaced through [`masm_storage::stats::CacheStats`] so benchmarks
//!   can report cache effectiveness. Warm lookups issue zero device
//!   reads.
//!
//! `masm-core` materializes and scans all of its runs through this
//! crate; see `masm_core::run` for the engine-facing wrapper.

pub mod block;
pub mod bloom;
pub mod builder;
pub mod cache;
pub mod checksum;
pub mod format;
pub mod plan;

pub use block::Entry;
pub use bloom::BloomFilter;
pub use builder::RunBuilder;
pub use cache::{BlockCache, BlockCacheConfig, BlockKey, CachePolicy, CachedBlock, StoredBlock};
pub use checksum::crc32;
pub use format::{
    build_run, point_lookup, read_block, read_meta, write_built, write_run, BlockRunConfig,
    BlockRunError, BlockRunMeta, BlockRunResult, BlockRunScan, ZoneMap, FOOTER_LEN, MAGIC, VERSION,
};
pub use masm_codec::CodecChoice;
pub use plan::{MergePlan, MergePlanner, Segment};
