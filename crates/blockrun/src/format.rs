//! The on-SSD block-run format: writer, metadata reader, range scan,
//! and point lookup.
//!
//! A block run is laid out as one strictly sequential byte stream:
//!
//! ```text
//! base                                                    base+total_bytes
//! │                                                                     │
//! ▼                                                                     ▼
//! ┌─────────┬─────────┬───┬─────────┬─────────────┬─────────────┬────────┐
//! │ block 0 │ block 1 │ … │ block n │ index block │ bloom block │ footer │
//! └─────────┴─────────┴───┴─────────┴─────────────┴─────────────┴────────┘
//!   data blocks (≤ block_bytes     zone maps +     optional,     fixed
//!   of raw entries each, then      CRC             k + bits +    96 B
//!   codec-compressed; CRC in                       CRC
//!   the zone map)
//! ```
//!
//! * **Data blocks** — [`crate::block::encode_block`] output compressed
//!   through the run's codec ([`masm_codec`]), the I/O unit of every
//!   read (64 KB of *raw* entry bytes by default, the paper's §4.1 SSD
//!   page; the stored block is whatever the codec left of it).
//! * **Index block** — one [`ZoneMap`] per data block: byte offset,
//!   stored length, entry count, min/max key, min/max timestamp, the
//!   CRC-32 of the stored block bytes, the raw (uncompressed) length,
//!   and the id of the codec that produced the stored bytes. The
//!   `(min_key → offset)` mapping doubles as the first-key index; the
//!   min/max columns prune blocks from scans.
//! * **Bloom block** — optional per-run filter over all keys for point
//!   lookups ([`crate::bloom::BloomFilter`]).
//! * **Footer** — magic, version, region geometry, run-wide key/ts
//!   bounds, the writer's default codec choice, and its own CRC; always
//!   the trailing [`FOOTER_LEN`] bytes, so a reader needs only
//!   `(base, total_bytes)` to bootstrap.
//!
//! Everything is written front to back in one pass — the writer never
//! seeks backwards, preserving MaSM's `random_writes == 0` invariant on
//! the simulated SSD.

use std::fmt;
use std::sync::Arc;

use masm_codec::CodecChoice;
use masm_storage::{CompressionReport, IoTicket, SessionHandle, SimDevice, StorageError};

use crate::block::{decode_block, Entry};
use crate::bloom::BloomFilter;
use crate::cache::{BlockCache, CachedBlock, StoredBlock};
use crate::checksum::crc32;

/// `b"MASMBRUN"` as a little-endian u64.
pub const MAGIC: u64 = u64::from_le_bytes(*b"MASMBRUN");
/// Format version written into footers. Version 2 added the codec stage
/// (per-zone codec id + raw length, footer default-codec field).
pub const VERSION: u32 = 2;
/// Fixed footer size in bytes.
pub const FOOTER_LEN: u64 = 96;
/// Encoded size of one [`ZoneMap`] in the index block.
pub const ZONE_MAP_LEN: usize = 57;

/// Errors from reading or writing block runs.
#[derive(Debug)]
pub enum BlockRunError {
    /// Underlying device failure.
    Storage(StorageError),
    /// Structurally invalid bytes (bad magic, truncation, bad counts).
    Corrupt(&'static str),
    /// A region's CRC-32 did not match its bytes.
    ChecksumMismatch {
        /// Which region failed ("block", "index", "bloom", "footer").
        region: &'static str,
        /// Block index for data blocks, 0 otherwise.
        index: u32,
    },
    /// A footer or zone-map entry names a codec this build does not
    /// know — a run written by a newer build (or corruption that kept
    /// its CRCs intact). The run fails open with this typed error; it
    /// is never decoded on a guess.
    UnknownCodec {
        /// The unrecognized codec id.
        id: u32,
    },
}

impl fmt::Display for BlockRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockRunError::Storage(e) => write!(f, "storage: {e}"),
            BlockRunError::Corrupt(what) => write!(f, "corrupt block run: {what}"),
            BlockRunError::ChecksumMismatch { region, index } => {
                write!(f, "checksum mismatch in {region} {index}")
            }
            BlockRunError::UnknownCodec { id } => {
                write!(f, "unknown codec id {id}")
            }
        }
    }
}

impl std::error::Error for BlockRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlockRunError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for BlockRunError {
    fn from(e: StorageError) -> Self {
        BlockRunError::Storage(e)
    }
}

/// Convenience alias.
pub type BlockRunResult<T> = Result<T, BlockRunError>;

/// Writer/reader knobs.
#[derive(Debug, Clone)]
pub struct BlockRunConfig {
    /// Target **raw** (flat, pre-codec) size of one data block — the
    /// decode unit of every read (64 KB by default, matching the
    /// paper's §4.1 SSD page). Budgeting the raw size keeps the zone
    /// count — and thus the pinned metadata footprint — identical
    /// across codecs; the stored block is whatever the codec leaves.
    pub block_bytes: usize,
    /// Bloom-filter budget in bits per key; 0 disables the filter.
    pub bloom_bits_per_key: u32,
    /// Per-block compression policy. Fixed choices always use that
    /// codec; [`CodecChoice::Adaptive`] trial-encodes each block and
    /// keeps the smallest output, recording the winner's id in the
    /// block's zone-map entry.
    pub codec: CodecChoice,
}

impl Default for BlockRunConfig {
    fn default() -> Self {
        BlockRunConfig {
            block_bytes: 64 * 1024,
            bloom_bits_per_key: 10,
            codec: CodecChoice::Delta,
        }
    }
}

/// Per-block metadata: location, entry statistics, and integrity.
///
/// The vector of zone maps *is* the index block: entries are ordered by
/// `min_key`, so a binary search finds the blocks overlapping any key
/// range, and min/max timestamps allow time-based pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Byte offset of the block, relative to the run base.
    pub offset: u64,
    /// Stored (on-disk, post-codec) length in bytes — the read I/O size.
    pub len: u32,
    /// Number of entries.
    pub count: u32,
    /// Smallest key in the block.
    pub min_key: u64,
    /// Largest key in the block.
    pub max_key: u64,
    /// Smallest timestamp in the block.
    pub min_ts: u64,
    /// Largest timestamp in the block.
    pub max_ts: u64,
    /// CRC-32 of the stored block bytes (checked before the codec runs).
    pub crc: u32,
    /// Raw (flat, pre-codec) length in bytes — what the codec's decode
    /// must produce; also feeds the [`BlockRunMeta::compression`]
    /// accounting. (The cache charges decoded *entry* weight for
    /// capacity and tracks `len` as `disk_bytes` — see
    /// [`crate::cache::BlockCache::insert`].)
    pub raw_len: u32,
    /// Id of the codec that produced the stored bytes
    /// ([`masm_codec::codec_for`]). Moved blocks carry this verbatim
    /// through compaction.
    pub codec_id: u8,
}

impl ZoneMap {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.min_key.to_le_bytes());
        out.extend_from_slice(&self.max_key.to_le_bytes());
        out.extend_from_slice(&self.min_ts.to_le_bytes());
        out.extend_from_slice(&self.max_ts.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&self.raw_len.to_le_bytes());
        out.push(self.codec_id);
    }

    fn decode(buf: &[u8]) -> Option<ZoneMap> {
        if buf.len() < ZONE_MAP_LEN {
            return None;
        }
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().expect("8 bytes"));
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
        Some(ZoneMap {
            offset: u64_at(0),
            len: u32_at(8),
            count: u32_at(12),
            min_key: u64_at(16),
            max_key: u64_at(24),
            min_ts: u64_at(32),
            max_ts: u64_at(40),
            crc: u32_at(48),
            raw_len: u32_at(52),
            codec_id: buf[56],
        })
    }
}

/// In-memory metadata of one block run: everything a reader needs to
/// plan I/O without touching the data blocks.
#[derive(Debug, Clone)]
pub struct BlockRunMeta {
    /// Byte offset of the run on the device.
    pub base: u64,
    /// Total encoded bytes (data + index + bloom + footer).
    pub total_bytes: u64,
    /// Bytes of the data-block region alone.
    pub data_bytes: u64,
    /// Total entries across all blocks.
    pub entry_count: u64,
    /// Smallest key in the run (`u64::MAX` when empty).
    pub min_key: u64,
    /// Largest key in the run (0 when empty).
    pub max_key: u64,
    /// Smallest timestamp in the run (`u64::MAX` when empty).
    pub min_ts: u64,
    /// Largest timestamp in the run (0 when empty).
    pub max_ts: u64,
    /// One zone map per data block, ordered by `min_key`.
    pub zones: Vec<ZoneMap>,
    /// Optional per-run bloom filter over all keys.
    pub bloom: Option<BloomFilter>,
    /// The codec policy the run was written with. Informational — each
    /// block records the codec actually used in its zone entry (an
    /// `Adaptive` writer mixes ids block by block).
    pub default_codec: CodecChoice,
    /// Writer-side CPU accounting of the adaptive codec selector that
    /// built this run. Not persisted — runs recovered from disk report
    /// zeros (their writer's CPU was spent in another process).
    pub selector: masm_codec::SelectorStats,
}

impl BlockRunMeta {
    /// Indices of the data blocks that may contain keys in
    /// `[begin, end]` (a contiguous range, since blocks are key-ordered
    /// and disjoint up to shared boundary keys).
    pub fn blocks_overlapping(&self, begin: u64, end: u64) -> std::ops::Range<usize> {
        if end < begin {
            return 0..0;
        }
        let first = self.zones.partition_point(|z| z.max_key < begin);
        let last = self.zones.partition_point(|z| z.min_key <= end);
        first..last.max(first)
    }

    /// Whether `key` may be present: zone-map bounds first, then the
    /// bloom filter when one exists. `false` means definitely absent.
    pub fn might_contain(&self, key: u64) -> bool {
        if key < self.min_key || key > self.max_key {
            return false;
        }
        self.bloom.as_ref().is_none_or(|b| b.contains(key))
    }

    /// In-memory footprint of the zone maps + bloom filter (the run's
    /// metadata cost, the analogue of the old sparse index's
    /// `memory_bytes`).
    pub fn memory_bytes(&self) -> usize {
        self.zones.len() * std::mem::size_of::<ZoneMap>()
            + self.bloom.as_ref().map_or(0, |b| b.bit_bytes())
    }

    /// Per-run compression accounting from the zone maps alone: raw
    /// (decoded) versus stored (on-disk) data-block bytes, and how many
    /// blocks each codec won.
    pub fn compression(&self) -> CompressionReport {
        let mut report = CompressionReport {
            runs: 1,
            codec_trials: self.selector.trial_encodes,
            codec_trials_saved: self.selector.trials_saved,
            lz_probes_skipped: self.selector.lz_skipped,
            ..CompressionReport::default()
        };
        for z in &self.zones {
            report.blocks += 1;
            report.raw_bytes += z.raw_len as u64;
            report.stored_bytes += z.len as u64;
            match z.codec_id {
                masm_codec::IDENTITY => report.blocks_identity += 1,
                masm_codec::DELTA => report.blocks_delta += 1,
                masm_codec::LZ => report.blocks_lz += 1,
                _ => {}
            }
        }
        report
    }

    /// A metadata-only stand-in for unit tests that never touch the
    /// device (no zones, no bloom).
    pub fn synthetic(min_key: u64, max_key: u64, min_ts: u64, max_ts: u64, count: u64) -> Self {
        BlockRunMeta {
            base: 0,
            total_bytes: 0,
            data_bytes: 0,
            entry_count: count,
            min_key,
            max_key,
            min_ts,
            max_ts,
            zones: Vec::new(),
            bloom: None,
            default_codec: CodecChoice::Identity,
            selector: masm_codec::SelectorStats::default(),
        }
    }
}

/// Build the full encoded byte stream and metadata of a run from
/// key-ordered entries, without touching any device. `meta.base` is 0;
/// the caller rebases when it decides where the run lives. (A thin
/// wrapper over [`crate::builder::RunBuilder`], which additionally
/// supports stitching in raw verbatim blocks during compaction.)
pub fn build_run(cfg: &BlockRunConfig, entries: &[Entry]) -> (BlockRunMeta, Vec<u8>) {
    debug_assert!(
        entries
            .windows(2)
            .all(|w| (w[0].key, w[0].ts) <= (w[1].key, w[1].ts)),
        "entries must be sorted by (key, ts)"
    );
    let mut builder = crate::builder::RunBuilder::new(cfg.clone());
    for e in entries {
        builder.append_entry(e.clone());
    }
    builder.finish()
}

/// Write an already-built run's bytes at `meta.base`, strictly
/// sequentially: one I/O per data block (the block is the I/O unit),
/// one for the index + bloom region, one for the footer.
pub fn write_built(
    session: &SessionHandle,
    dev: &SimDevice,
    meta: &BlockRunMeta,
    bytes: &[u8],
) -> BlockRunResult<()> {
    debug_assert_eq!(bytes.len() as u64, meta.total_bytes);
    let mut boundaries: Vec<u64> = meta.zones.iter().map(|z| z.offset).collect();
    boundaries.push(meta.data_bytes);
    boundaries.push(meta.total_bytes - FOOTER_LEN);
    boundaries.push(meta.total_bytes);
    boundaries.dedup();
    let mut prev = 0u64;
    for b in boundaries {
        if b > prev {
            session.write(dev, meta.base + prev, &bytes[prev as usize..b as usize])?;
            prev = b;
        }
    }
    Ok(())
}

/// Materialize a run at `base`: build the byte stream and write it
/// strictly sequentially via [`write_built`].
pub fn write_run(
    session: &SessionHandle,
    dev: &SimDevice,
    base: u64,
    cfg: &BlockRunConfig,
    entries: &[Entry],
) -> BlockRunResult<BlockRunMeta> {
    let (mut meta, bytes) = build_run(cfg, entries);
    meta.base = base;
    write_built(session, dev, &meta, &bytes)?;
    Ok(meta)
}

fn verify_region(data: &[u8], region: &'static str, index: u32) -> Result<(), BlockRunError> {
    if data.len() < 4 {
        return Err(BlockRunError::Corrupt("region shorter than its CRC"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err(BlockRunError::ChecksumMismatch { region, index });
    }
    Ok(())
}

/// Load and verify a run's metadata from its footer, index block, and
/// bloom block. Only `(base, total_bytes)` need to be known (they come
/// from the engine's WAL).
pub fn read_meta(
    session: &SessionHandle,
    dev: &SimDevice,
    base: u64,
    total_bytes: u64,
) -> BlockRunResult<BlockRunMeta> {
    if total_bytes < FOOTER_LEN {
        return Err(BlockRunError::Corrupt("run shorter than footer"));
    }
    let footer = session.read(dev, base + total_bytes - FOOTER_LEN, FOOTER_LEN)?;
    verify_region(&footer, "footer", 0)?;
    let u64_at = |o: usize| u64::from_le_bytes(footer[o..o + 8].try_into().expect("8 bytes"));
    let u32_at = |o: usize| u32::from_le_bytes(footer[o..o + 4].try_into().expect("4 bytes"));
    if u64_at(0) != MAGIC {
        return Err(BlockRunError::Corrupt("bad magic"));
    }
    if u32_at(8) != VERSION {
        return Err(BlockRunError::Corrupt("unsupported version"));
    }
    let block_count = u32_at(12) as usize;
    let entry_count = u64_at(16);
    let index_off = u64_at(24);
    let index_len = u64_at(32);
    let bloom_off = u64_at(40);
    let bloom_len = u64_at(48);
    let (min_key, max_key) = (u64_at(56), u64_at(64));
    let (min_ts, max_ts) = (u64_at(72), u64_at(80));
    let codec_raw = u32_at(88);
    let default_codec = u8::try_from(codec_raw)
        .ok()
        .and_then(CodecChoice::from_id)
        .ok_or(BlockRunError::UnknownCodec { id: codec_raw })?;

    if index_off + index_len > total_bytes || bloom_off + bloom_len > total_bytes {
        return Err(BlockRunError::Corrupt("region out of bounds"));
    }
    let index = session.read(dev, base + index_off, index_len)?;
    verify_region(&index, "index", 0)?;
    if index.len() < 8 {
        return Err(BlockRunError::Corrupt("index block too short"));
    }
    let n = u32::from_le_bytes(index[0..4].try_into().expect("4 bytes")) as usize;
    if n != block_count || index.len() != 4 + n * ZONE_MAP_LEN + 4 {
        return Err(BlockRunError::Corrupt("index block geometry"));
    }
    let mut zones = Vec::with_capacity(n);
    for i in 0..n {
        let off = 4 + i * ZONE_MAP_LEN;
        let zone = ZoneMap::decode(&index[off..off + ZONE_MAP_LEN])
            .ok_or(BlockRunError::Corrupt("zone map"))?;
        // Validate codec ids up front: a run naming a codec this build
        // lacks fails open here, typed, before any block is fetched.
        if masm_codec::codec_for(zone.codec_id).is_none() {
            return Err(BlockRunError::UnknownCodec {
                id: zone.codec_id as u32,
            });
        }
        zones.push(zone);
    }

    let bloom = if bloom_len > 0 {
        let raw = session.read(dev, base + bloom_off, bloom_len)?;
        verify_region(&raw, "bloom", 0)?;
        Some(
            BloomFilter::decode(&raw[..raw.len() - 4])
                .ok_or(BlockRunError::Corrupt("bloom filter"))?,
        )
    } else {
        None
    };

    Ok(BlockRunMeta {
        base,
        total_bytes,
        data_bytes: index_off,
        entry_count,
        min_key,
        max_key,
        min_ts,
        max_ts,
        zones,
        bloom,
        default_codec,
        selector: masm_codec::SelectorStats::default(),
    })
}

/// Why stored block bytes failed to decode back to entries.
pub(crate) enum StoredDecodeError {
    /// The codec id is not known to this build.
    UnknownCodec(u8),
    /// The codec rejected the payload.
    CodecPayload,
    /// The flat entry layout was inconsistent.
    Entries,
}

/// Run (already verified) stored block bytes back through their codec
/// and decode the flat entries — shared by the device read path
/// ([`decode_verified_block`]) and the cache's tier-2 promotion
/// ([`crate::cache::StoredBlock`]), so the two can never diverge.
pub(crate) fn decode_stored_bytes(
    stored: &[u8],
    codec_id: u8,
    raw_len: usize,
) -> Result<Vec<Entry>, StoredDecodeError> {
    let decompressed;
    let flat: &[u8] = if codec_id == masm_codec::IDENTITY {
        stored
    } else {
        let codec =
            masm_codec::codec_for(codec_id).ok_or(StoredDecodeError::UnknownCodec(codec_id))?;
        decompressed = codec
            .decode(stored, raw_len)
            .map_err(|_| StoredDecodeError::CodecPayload)?;
        &decompressed
    };
    decode_block(flat).ok_or(StoredDecodeError::Entries)
}

/// CRC-verify stored block bytes, run them back through the zone's
/// codec, and decode the flat entries. The CRC covers the *stored*
/// bytes, so truncation or bit rot fails the checksum before any codec
/// decode work (or its allocations) happens.
fn decode_verified_block(stored: &[u8], zone: &ZoneMap, idx: usize) -> BlockRunResult<Vec<Entry>> {
    if crc32(stored) != zone.crc {
        return Err(BlockRunError::ChecksumMismatch {
            region: "block",
            index: idx as u32,
        });
    }
    decode_stored_bytes(stored, zone.codec_id, zone.raw_len as usize).map_err(|e| match e {
        StoredDecodeError::UnknownCodec(id) => BlockRunError::UnknownCodec { id: id as u32 },
        StoredDecodeError::CodecPayload => BlockRunError::Corrupt("block codec payload"),
        StoredDecodeError::Entries => BlockRunError::Corrupt("block entries"),
    })
}

/// Read data block `idx`, serving from `cache` when possible; a device
/// read is CRC-verified, decoded, and inserted into the cache.
/// `run_key` identifies the run in the cache keyspace (engine run ids —
/// never reused).
pub fn read_block(
    session: &SessionHandle,
    dev: &SimDevice,
    meta: &BlockRunMeta,
    idx: usize,
    cache: Option<(&BlockCache, u64)>,
) -> BlockRunResult<CachedBlock> {
    let zone = meta
        .zones
        .get(idx)
        .ok_or(BlockRunError::Corrupt("block index"))?;
    if let Some((cache, run_key)) = cache {
        if let Some(hit) = cache.get((run_key, idx as u32)) {
            return Ok(hit);
        }
    }
    let raw = session.read(dev, meta.base + zone.offset, zone.len as u64)?;
    let entries = Arc::new(decode_verified_block(&raw, zone, idx)?);
    if let Some((cache, run_key)) = cache {
        // The stored bytes travel into the cache so a later tier-1
        // eviction can demote the compressed form to the victim tier.
        cache.insert(
            (run_key, idx as u32),
            Arc::clone(&entries),
            StoredBlock {
                bytes: Arc::new(raw),
                codec_id: zone.codec_id,
                raw_len: zone.raw_len,
            },
        );
    }
    Ok(entries)
}

/// All entries for `key` in this run, in timestamp order. Costs zero
/// I/O when the bloom filter (or key bounds) excludes the key, and zero
/// *device* I/O when the needed blocks are cached.
pub fn point_lookup(
    session: &SessionHandle,
    dev: &SimDevice,
    meta: &BlockRunMeta,
    key: u64,
    cache: Option<(&BlockCache, u64)>,
) -> BlockRunResult<Vec<Entry>> {
    if !meta.might_contain(key) {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for idx in meta.blocks_overlapping(key, key) {
        let block = read_block(session, dev, meta, idx, cache)?;
        let start = block.partition_point(|e| e.key < key);
        out.extend(block[start..].iter().take_while(|e| e.key == key).cloned());
    }
    Ok(out)
}

/// Streaming scan of one run restricted to `[begin, end]`.
///
/// Zone maps select the contiguous block range to visit; each needed
/// block comes from the cache when resident, otherwise from an
/// asynchronous device read issued while earlier blocks decode (the
/// paper's §3.7 libaio overlap). Up to `prefetch_depth` reads are kept
/// in flight (1 by default; merges raise it to their fan-in via
/// [`BlockRunScan::with_prefetch_depth`] so a k-way merge keeps ≈k
/// reads queued per device). The iterator stops early on a checksum or
/// device error, which is then available via [`BlockRunScan::error`].
pub struct BlockRunScan {
    dev: SimDevice,
    session: SessionHandle,
    meta: Arc<BlockRunMeta>,
    cache: Option<Arc<BlockCache>>,
    run_key: u64,
    begin: u64,
    end: u64,
    /// Next block index to consume.
    next_idx: usize,
    /// Next block index eligible for prefetch (≥ `next_idx`).
    prefetch_idx: usize,
    /// One past the last block index to consume.
    end_idx: usize,
    /// Maximum reads kept in flight.
    prefetch_depth: usize,
    /// In-flight reads, in ascending block order.
    pending: std::collections::VecDeque<(usize, IoTicket)>,
    buffer: std::collections::VecDeque<Entry>,
    bytes_read: u64,
    error: Option<BlockRunError>,
    /// Optional latency sink: one sample per block acquired, measuring
    /// the session-time stall (virtual-ns) to obtain it — ≈0 for cache
    /// hits, the device wait for misses.
    fetch_hist: Option<Arc<masm_telemetry::Histogram>>,
    /// Optional flight recorder plus the process-track (shard) id to
    /// emit under: one `block.fetch` span per block acquired and one
    /// `block.prefetch` instant per async read issued.
    tracer: Option<(Arc<masm_telemetry::Tracer>, u32)>,
}

impl BlockRunScan {
    /// Open a scan of `[begin, end]` with a prefetch depth of 1.
    pub fn new(
        dev: SimDevice,
        session: SessionHandle,
        meta: Arc<BlockRunMeta>,
        cache: Option<Arc<BlockCache>>,
        run_key: u64,
        begin: u64,
        end: u64,
    ) -> Self {
        let range = meta.blocks_overlapping(begin, end);
        let mut scan = BlockRunScan {
            dev,
            session,
            meta,
            cache,
            run_key,
            begin,
            end,
            next_idx: range.start,
            prefetch_idx: range.start,
            end_idx: range.end,
            prefetch_depth: 1,
            pending: std::collections::VecDeque::new(),
            buffer: std::collections::VecDeque::new(),
            bytes_read: 0,
            error: None,
            fetch_hist: None,
            tracer: None,
        };
        // Issue the first read immediately: a query opens all its run
        // scans at once, so their first SSD reads queue together and
        // overlap across runs.
        scan.fill_prefetch();
        scan
    }

    /// Keep up to `depth` reads in flight (clamped to ≥ 1). Merge and
    /// migration paths set this to the merge fan-in.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth.max(1);
        self.fill_prefetch();
        self
    }

    /// Record per-block fetch stalls (virtual-ns of session time spent
    /// obtaining each block) into `hist`. Cache hits record ≈0, misses
    /// record the device wait — the histogram separates the two
    /// populations by itself, no extra counters needed.
    pub fn with_fetch_histogram(mut self, hist: Arc<masm_telemetry::Histogram>) -> Self {
        self.fetch_hist = Some(hist);
        self
    }

    /// Emit `block.fetch` spans (one per block acquired, cache hits
    /// included at ≈0 duration) and `block.prefetch` instants (one per
    /// async read issued) to `tracer`, on process track `pid` (the
    /// owning shard). The recorder is lock-free and drops on overflow,
    /// so this adds no blocking to the scan path.
    pub fn with_trace(mut self, tracer: Arc<masm_telemetry::Tracer>, pid: u32) -> Self {
        self.tracer = Some((tracer, pid));
        self
    }

    fn trace_track(&self, pid: u32) -> masm_telemetry::TrackId {
        masm_telemetry::TrackId {
            pid,
            tid: masm_telemetry::current_tid(),
        }
    }

    /// Bytes actually read from the device (cache hits cost nothing).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The first error encountered, if the scan stopped early.
    pub fn error(&self) -> Option<&BlockRunError> {
        self.error.as_ref()
    }

    /// Issue async reads until `prefetch_depth` are in flight, skipping
    /// cache-resident blocks.
    fn fill_prefetch(&mut self) {
        if self.error.is_some() {
            return;
        }
        self.prefetch_idx = self.prefetch_idx.max(self.next_idx);
        while self.pending.len() < self.prefetch_depth && self.prefetch_idx < self.end_idx {
            let idx = self.prefetch_idx;
            self.prefetch_idx += 1;
            if let Some(cache) = &self.cache {
                if cache.contains((self.run_key, idx as u32)) {
                    continue;
                }
            }
            let zone = self.meta.zones[idx];
            match self
                .session
                .read_async(&self.dev, self.meta.base + zone.offset, zone.len as u64)
            {
                Ok(ticket) => {
                    self.bytes_read += zone.len as u64;
                    if let Some((t, pid)) = &self.tracer {
                        t.instant(
                            "block.prefetch",
                            self.trace_track(*pid),
                            self.session.now(),
                            "bytes",
                            zone.len as u64,
                        );
                    }
                    self.pending.push_back((idx, ticket));
                }
                Err(e) => {
                    self.error = Some(e.into());
                    return;
                }
            }
        }
    }

    /// Decode `raw` for block `idx`, populate the cache (decoded form
    /// plus the stored bytes, for tier-2 demotion), and record the
    /// result (or the error).
    fn decode_and_cache(&mut self, raw: Vec<u8>, idx: usize) -> Option<CachedBlock> {
        let zone = self.meta.zones[idx];
        match decode_verified_block(&raw, &zone, idx) {
            Ok(entries) => {
                let entries = Arc::new(entries);
                if let Some(cache) = &self.cache {
                    cache.insert(
                        (self.run_key, idx as u32),
                        Arc::clone(&entries),
                        StoredBlock {
                            bytes: Arc::new(raw),
                            codec_id: zone.codec_id,
                            raw_len: zone.raw_len,
                        },
                    );
                }
                Some(entries)
            }
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    /// Load the next block into the buffer; false when exhausted.
    fn refill(&mut self) -> bool {
        if self.error.is_some() || self.next_idx >= self.end_idx {
            return false;
        }
        let idx = self.next_idx;
        self.next_idx += 1;
        let fetch_start =
            (self.fetch_hist.is_some() || self.tracer.is_some()).then(|| self.session.now());

        let entries: CachedBlock = if self.pending.front().is_some_and(|(p, _)| *p == idx) {
            // The block came from the device via prefetch, not from
            // `cache.get` — still a miss for the hit-rate accounting.
            let (_, ticket) = self.pending.pop_front().expect("front checked");
            if let Some(cache) = &self.cache {
                cache.record_bypass_miss();
            }
            let raw = self.session.wait(ticket);
            // Overlap: issue further reads before decoding this one.
            self.fill_prefetch();
            match self.decode_and_cache(raw, idx) {
                Some(entries) => entries,
                None => return false,
            }
        } else {
            // Not in flight (it was cache-resident at prefetch time):
            // serve from cache, falling back to a synchronous read if
            // it was evicted in the meantime.
            let cached = self
                .cache
                .as_ref()
                .and_then(|c| c.get((self.run_key, idx as u32)));
            match cached {
                Some(hit) => {
                    self.fill_prefetch();
                    hit
                }
                None => {
                    let zone = self.meta.zones[idx];
                    match self.session.read(
                        &self.dev,
                        self.meta.base + zone.offset,
                        zone.len as u64,
                    ) {
                        Ok(raw) => {
                            self.bytes_read += zone.len as u64;
                            self.fill_prefetch();
                            match self.decode_and_cache(raw, idx) {
                                Some(entries) => entries,
                                None => return false,
                            }
                        }
                        Err(e) => {
                            self.error = Some(e.into());
                            return false;
                        }
                    }
                }
            }
        };

        if let Some(start) = fetch_start {
            let stall = self.session.now().saturating_sub(start);
            if let Some(hist) = &self.fetch_hist {
                hist.record(stall);
            }
            if let Some((t, pid)) = &self.tracer {
                t.span_event(
                    "block.fetch",
                    self.trace_track(*pid),
                    start,
                    stall,
                    "bytes",
                    self.meta.zones[idx].len as u64,
                );
            }
        }

        let start = entries.partition_point(|e| e.key < self.begin);
        self.buffer.extend(
            entries[start..]
                .iter()
                .take_while(|e| e.key <= self.end)
                .cloned(),
        );
        true
    }
}

impl Iterator for BlockRunScan {
    type Item = Entry;

    fn next(&mut self) -> Option<Entry> {
        while self.buffer.is_empty() {
            if !self.refill() {
                return None;
            }
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_storage::{DeviceProfile, SimClock};

    fn setup() -> (SimDevice, SessionHandle) {
        let clock = SimClock::new();
        let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        (dev, SessionHandle::fresh(clock))
    }

    fn entries(keys: &[u64]) -> Vec<Entry> {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| Entry::new(k, i as u64 + 1, vec![k as u8; 8]))
            .collect()
    }

    fn small_cfg() -> BlockRunConfig {
        BlockRunConfig {
            block_bytes: 128,
            bloom_bits_per_key: 10,
            codec: CodecChoice::Delta,
        }
    }

    #[test]
    fn write_read_meta_roundtrip() {
        let (dev, s) = setup();
        let es = entries(&(0..500).map(|i| i * 2).collect::<Vec<_>>());
        let meta = write_run(&s, &dev, 0, &small_cfg(), &es).unwrap();
        assert!(meta.zones.len() > 4, "{} blocks", meta.zones.len());
        assert_eq!(meta.entry_count, 500);
        assert_eq!(meta.min_key, 0);
        assert_eq!(meta.max_key, 998);

        let back = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
        assert_eq!(back.zones, meta.zones);
        assert_eq!(back.bloom, meta.bloom);
        assert_eq!(back.entry_count, meta.entry_count);
        assert_eq!((back.min_key, back.max_key), (meta.min_key, meta.max_key));
        assert_eq!((back.min_ts, back.max_ts), (meta.min_ts, meta.max_ts));
    }

    #[test]
    fn writes_are_strictly_sequential() {
        let (dev, s) = setup();
        dev.prime_head_position(0);
        let es = entries(&(0..2000).collect::<Vec<_>>());
        write_run(&s, &dev, 0, &small_cfg(), &es).unwrap();
        let stats = dev.stats();
        assert_eq!(stats.random_writes, 0, "{stats:?}");
        assert!(stats.write_ops > 10);
    }

    #[test]
    fn scan_returns_exact_range() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..300).map(|i| i * 3).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let got: Vec<u64> = BlockRunScan::new(dev, s, meta, None, 1, 100, 200)
            .map(|e| e.key)
            .collect();
        let want: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| (100..=200).contains(k))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zone_maps_narrow_reads() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..2000).map(|i| i * 2).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let mut scan = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            None,
            1,
            1000,
            1100,
        );
        let got: Vec<u64> = scan.by_ref().map(|e| e.key).collect();
        assert_eq!(
            got,
            (1000..=1100).filter(|k| k % 2 == 0).collect::<Vec<_>>()
        );
        assert!(
            scan.bytes_read() < meta.data_bytes / 8,
            "read {} of {}",
            scan.bytes_read(),
            meta.data_bytes
        );
    }

    #[test]
    fn deep_prefetch_scans_identically_and_keeps_reads_in_flight() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..2000).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let shallow: Vec<u64> = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            None,
            1,
            0,
            u64::MAX,
        )
        .map(|e| e.key)
        .collect();
        let mut deep = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            None,
            1,
            0,
            u64::MAX,
        )
        .with_prefetch_depth(6);
        assert!(deep.pending.len() > 1, "multiple reads issued up front");
        let deep_keys: Vec<u64> = deep.by_ref().map(|e| e.key).collect();
        assert_eq!(deep_keys, shallow);
        assert_eq!(deep.bytes_read(), meta.data_bytes, "every block read once");
    }

    #[test]
    fn deep_prefetch_skips_cached_blocks() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..1000).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let cache = Arc::new(BlockCache::new(1 << 22));
        let cold: Vec<u64> = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            Some(Arc::clone(&cache)),
            1,
            0,
            u64::MAX,
        )
        .with_prefetch_depth(4)
        .map(|e| e.key)
        .collect();
        assert_eq!(cold, keys);
        let mut warm = BlockRunScan::new(dev, s, Arc::clone(&meta), Some(cache), 1, 0, u64::MAX)
            .with_prefetch_depth(4);
        let warm_keys: Vec<u64> = warm.by_ref().map(|e| e.key).collect();
        assert_eq!(warm_keys, keys);
        assert_eq!(warm.bytes_read(), 0, "warm deep scan is pure cache");
    }

    #[test]
    fn fetch_histogram_records_one_sample_per_block() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..1000).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let cache = Arc::new(BlockCache::new(1 << 22));
        let cold_hist = Arc::new(masm_telemetry::Histogram::new());
        let cold: Vec<u64> = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            Some(Arc::clone(&cache)),
            1,
            0,
            u64::MAX,
        )
        .with_fetch_histogram(Arc::clone(&cold_hist))
        .map(|e| e.key)
        .collect();
        assert_eq!(cold, keys);
        let blocks = meta.zones.len() as u64;
        let cold_snap = cold_hist.snapshot();
        assert_eq!(cold_snap.count, blocks, "one sample per block");
        assert!(cold_snap.sum > 0, "cold blocks stall on the device");
        // Warm scan: every block is a cache hit, so the stall is zero.
        let warm_hist = Arc::new(masm_telemetry::Histogram::new());
        let warm: Vec<u64> = BlockRunScan::new(dev, s, meta, Some(cache), 1, 0, u64::MAX)
            .with_fetch_histogram(Arc::clone(&warm_hist))
            .map(|e| e.key)
            .collect();
        assert_eq!(warm, keys);
        let warm_snap = warm_hist.snapshot();
        assert_eq!(warm_snap.count, blocks);
        assert_eq!(warm_snap.max, 0, "cache hits never touch the device");
    }

    #[test]
    fn scan_outside_range_reads_nothing() {
        let (dev, s) = setup();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&[5, 10, 15])).unwrap());
        let mut scan = BlockRunScan::new(dev, s, meta, None, 1, 100, 200);
        assert!(scan.next().is_none());
        assert_eq!(scan.bytes_read(), 0);
    }

    #[test]
    fn corrupted_block_fails_with_checksum_error() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..500).collect();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap();
        // Flip one byte in the middle of block 2's data.
        let zone = meta.zones[2];
        let (orig, _) = dev.read_at(0, zone.offset + 5, 1).unwrap();
        dev.write_at(0, zone.offset + 5, &[orig[0] ^ 0xFF]).unwrap();

        let err = read_block(&s, &dev, &meta, 2, None).unwrap_err();
        assert!(
            matches!(
                err,
                BlockRunError::ChecksumMismatch {
                    region: "block",
                    index: 2
                }
            ),
            "{err}"
        );
        // A scan across the corruption stops with the error rather than
        // yielding garbage.
        let mut scan =
            BlockRunScan::new(dev.clone(), s.clone(), Arc::new(meta), None, 1, 0, u64::MAX);
        let got: Vec<Entry> = scan.by_ref().collect();
        assert!(got.len() < keys.len());
        assert!(matches!(
            scan.error(),
            Some(BlockRunError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_footer_and_index_detected() {
        let (dev, s) = setup();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&[1, 2, 3])).unwrap();
        // Corrupt the footer's magic.
        let footer_off = meta.total_bytes - FOOTER_LEN;
        dev.write_at(0, footer_off, &[0xAA]).unwrap();
        assert!(read_meta(&s, &dev, 0, meta.total_bytes).is_err());
    }

    #[test]
    fn point_lookup_uses_bloom_to_skip_io() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..1000).map(|i| i * 2).collect();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap();
        dev.reset_stats();
        // Absent key inside the key bounds: bloom usually rejects it with
        // zero reads; measure over many probes.
        let mut io_free = 0;
        for probe in 0..200u64 {
            let before = dev.stats().read_ops;
            let hits = point_lookup(&s, &dev, &meta, probe * 2 + 1, None).unwrap();
            assert!(hits.is_empty());
            if dev.stats().read_ops == before {
                io_free += 1;
            }
        }
        assert!(io_free > 180, "bloom skipped I/O for {io_free}/200 probes");
        // Present key: found with exactly one block read.
        let before = dev.stats().read_ops;
        let found = point_lookup(&s, &dev, &meta, 500, None).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(dev.stats().read_ops - before, 1);
    }

    #[test]
    fn warm_cache_lookups_issue_zero_reads() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..1000).collect();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap();
        let cache = BlockCache::new(1 << 20);
        for k in [10u64, 500, 990] {
            point_lookup(&s, &dev, &meta, k, Some((&cache, 1))).unwrap();
        }
        let warm_start = dev.stats().read_ops;
        for k in [10u64, 500, 990] {
            let found = point_lookup(&s, &dev, &meta, k, Some((&cache, 1))).unwrap();
            assert_eq!(found.len(), 1);
        }
        assert_eq!(dev.stats().read_ops, warm_start, "zero device reads warm");
        assert!(cache.stats().hits >= 3);
    }

    #[test]
    fn scan_served_from_cache_reads_nothing() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..800).collect();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap());
        let cache = Arc::new(BlockCache::new(1 << 22));
        let cold: Vec<u64> = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            Some(Arc::clone(&cache)),
            1,
            0,
            u64::MAX,
        )
        .map(|e| e.key)
        .collect();
        assert_eq!(cold, keys);
        let mut warm = BlockRunScan::new(
            dev.clone(),
            s.clone(),
            Arc::clone(&meta),
            Some(Arc::clone(&cache)),
            1,
            0,
            u64::MAX,
        );
        let warm_keys: Vec<u64> = warm.by_ref().map(|e| e.key).collect();
        assert_eq!(warm_keys, keys);
        assert_eq!(warm.bytes_read(), 0, "warm scan is pure cache");
    }

    #[test]
    fn empty_run_roundtrip() {
        let (dev, s) = setup();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &[]).unwrap();
        assert_eq!(meta.entry_count, 0);
        let back = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
        assert!(back.zones.is_empty());
        assert!(!back.might_contain(0));
        let got: Vec<Entry> =
            BlockRunScan::new(dev, s, Arc::new(back), None, 1, 0, u64::MAX).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn every_codec_roundtrips_through_device() {
        let keys: Vec<u64> = (0..600).map(|i| i * 2).collect();
        for choice in CodecChoice::ALL {
            let (dev, s) = setup();
            let cfg = BlockRunConfig {
                codec: choice,
                ..small_cfg()
            };
            let meta = write_run(&s, &dev, 0, &cfg, &entries(&keys)).unwrap();
            assert_eq!(meta.default_codec, choice);
            let back = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
            assert_eq!(back.zones, meta.zones);
            assert_eq!(back.default_codec, choice);
            let got: Vec<u64> = BlockRunScan::new(dev, s, Arc::new(back), None, 1, 0, u64::MAX)
                .map(|e| e.key)
                .collect();
            assert_eq!(got, keys, "{choice:?}");
            // Accounting: every block's raw size is known, and the
            // stored ids match the policy.
            let comp = meta.compression();
            assert_eq!(comp.blocks, meta.zones.len() as u64);
            assert!(comp.raw_bytes > 0);
            match choice {
                CodecChoice::Identity => {
                    assert_eq!(comp.blocks_identity, comp.blocks);
                    assert_eq!(comp.raw_bytes, comp.stored_bytes);
                }
                CodecChoice::Delta => assert_eq!(comp.blocks_delta, comp.blocks),
                CodecChoice::Lz => assert_eq!(comp.blocks_lz, comp.blocks),
                CodecChoice::Adaptive => {
                    assert!(comp.stored_bytes <= comp.raw_bytes, "never grows")
                }
            }
        }
    }

    #[test]
    fn compressed_codecs_shrink_stored_bytes() {
        let keys: Vec<u64> = (0..2000).collect();
        for choice in [CodecChoice::Delta, CodecChoice::Lz, CodecChoice::Adaptive] {
            let (dev, s) = setup();
            let cfg = BlockRunConfig {
                codec: choice,
                ..small_cfg()
            };
            let meta = write_run(&s, &dev, 0, &cfg, &entries(&keys)).unwrap();
            let comp = meta.compression();
            assert!(
                comp.stored_bytes < comp.raw_bytes,
                "{choice:?}: stored {} !< raw {}",
                comp.stored_bytes,
                comp.raw_bytes
            );
            assert!(comp.ratio() < 1.0);
        }
    }

    #[test]
    fn unknown_codec_in_footer_fails_open_with_typed_error() {
        let (dev, s) = setup();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&[1, 2, 3])).unwrap();
        // Rewrite the footer with a bogus default-codec id and a *valid*
        // CRC: the reader must reject the codec id itself, typed, not
        // trip over a checksum.
        let footer_off = meta.total_bytes - FOOTER_LEN;
        let (mut footer, _) = dev.read_at(0, footer_off, FOOTER_LEN).unwrap();
        footer[88..92].copy_from_slice(&0xAAu32.to_le_bytes());
        let body = footer.len() - 4;
        let crc = crc32(&footer[..body]);
        footer[body..].copy_from_slice(&crc.to_le_bytes());
        dev.write_at(0, footer_off, &footer).unwrap();

        let err = read_meta(&s, &dev, 0, meta.total_bytes).unwrap_err();
        assert!(
            matches!(err, BlockRunError::UnknownCodec { id: 0xAA }),
            "{err}"
        );
    }

    #[test]
    fn unknown_codec_in_zone_map_fails_open_with_typed_error() {
        let (dev, s) = setup();
        let keys: Vec<u64> = (0..200).collect();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries(&keys)).unwrap();
        // Patch zone 1's codec id inside the index block and re-seal the
        // index CRC.
        let index_off = meta.data_bytes;
        let index_len = 4 + meta.zones.len() * ZONE_MAP_LEN + 4;
        let (mut index, _) = dev.read_at(0, index_off, index_len as u64).unwrap();
        index[4 + ZONE_MAP_LEN + 56] = 0x77;
        let body = index.len() - 4;
        let crc = crc32(&index[..body]);
        index[body..].copy_from_slice(&crc.to_le_bytes());
        dev.write_at(0, index_off, &index).unwrap();

        let err = read_meta(&s, &dev, 0, meta.total_bytes).unwrap_err();
        assert!(
            matches!(err, BlockRunError::UnknownCodec { id: 0x77 }),
            "{err}"
        );
    }

    #[test]
    fn truncated_compressed_block_fails_crc_before_decode() {
        let (dev, s) = setup();
        let cfg = BlockRunConfig {
            codec: CodecChoice::Lz,
            ..small_cfg()
        };
        let keys: Vec<u64> = (0..500).collect();
        let meta = write_run(&s, &dev, 0, &cfg, &entries(&keys)).unwrap();
        // Simulate a torn write: the tail of block 0's *compressed*
        // bytes is zeroed. The stored-byte CRC must reject it — the LZ
        // decoder never sees the bytes (ChecksumMismatch, not a codec
        // "Corrupt" error, proves the ordering).
        let zone = meta.zones[0];
        let tail = (zone.len / 3).max(1) as u64;
        let tail_off = zone.offset + zone.len as u64 - tail;
        let (bytes, _) = dev.read_at(0, tail_off, tail).unwrap();
        let flipped: Vec<u8> = bytes.iter().map(|b| !b).collect();
        dev.write_at(0, tail_off, &flipped).unwrap();
        let err = read_block(&s, &dev, &meta, 0, None).unwrap_err();
        assert!(
            matches!(
                err,
                BlockRunError::ChecksumMismatch {
                    region: "block",
                    index: 0
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn blocks_overlapping_bounds() {
        let mut meta = BlockRunMeta::synthetic(0, 100, 1, 1, 4);
        for (i, (lo, hi)) in [(0u64, 24u64), (25, 49), (50, 74), (75, 100)]
            .iter()
            .enumerate()
        {
            meta.zones.push(ZoneMap {
                offset: i as u64 * 100,
                len: 100,
                count: 1,
                min_key: *lo,
                max_key: *hi,
                min_ts: 1,
                max_ts: 1,
                crc: 0,
                raw_len: 100,
                codec_id: masm_codec::IDENTITY,
            });
        }
        assert_eq!(meta.blocks_overlapping(0, 100), 0..4);
        assert_eq!(meta.blocks_overlapping(30, 60), 1..3);
        assert_eq!(meta.blocks_overlapping(25, 25), 1..2);
        assert_eq!(meta.blocks_overlapping(101, 200), 4..4);
        assert_eq!(meta.blocks_overlapping(60, 30), 0..0);
    }
}
