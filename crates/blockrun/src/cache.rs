//! Scan-resistant, two-tier sharded cache of run data blocks.
//!
//! Sits between run scans and the SSD. A block read off the device is
//! CRC-verified, decoded once, and kept here so later queries touching
//! the same hot run pages skip the SSD entirely (warm point lookups
//! issue *zero* device reads — asserted by tests and reported by the
//! `fig09b_point_lookup` and `fig_cache_scan_resistance` benchmarks).
//! Sharding by key hash keeps lock hold times short under concurrent
//! scans, the buffer-pool shape used by databases rather than one
//! global LRU lock.
//!
//! ## Tier 1 — decoded blocks, segmented (SLRU)
//!
//! Under the default [`CachePolicy::Slru`] each shard's decoded-block
//! population is split into two LRU segments:
//!
//! ```text
//!            insert (miss)                  re-reference
//! device ───────────────► ┌───────────┐ ───────────────► ┌───────────┐
//!                         │ probation │                  │ protected │
//!                         └─────┬─────┘ ◄─────────────── └─────┬─────┘
//!                               │          overflow demotes    │
//!                        evict  ▼                              ▼  evict
//!                         ┌──────────────────────────────────────┐
//!                         │ tier 2: stored (compressed) bytes    │
//!                         └──────────────────────────────────────┘
//! ```
//!
//! New blocks enter *probation*; only a second reference promotes them
//! to *protected* (capped at [`BlockCacheConfig::protected_frac`] of
//! tier-1 capacity). A one-shot sequential sweep larger than the cache
//! therefore churns through probation and never displaces the protected
//! hot set — the scan-resistance the plain LRU lacked.
//! [`CachePolicy::Lru`] keeps the old single-list behavior as a
//! config-selectable baseline for benchmarks.
//!
//! ## Tier 2 — compressed victim tier
//!
//! When enabled ([`BlockCacheConfig::tier2_bytes`] > 0), a tier-1
//! victim's **stored** (post-codec) bytes — already known from the read
//! path via [`StoredBlock`] — are demoted into a second LRU charged by
//! *compressed* size. A re-reference of a demoted block costs one codec
//! decode instead of a device read, so the victim tier multiplies
//! effective capacity by the codec's compression ratio for the warm-ish
//! band. Tier-2 bytes were CRC-verified at admission, so promotion
//! decodes without re-checking.
//!
//! Keys are `(run_key, block_idx)`. Run keys are engine-assigned run
//! ids and are never reused (the id sequence is monotonic, including
//! across recovery), so entries of a deleted run can never be wrongly
//! served; they simply age out.
//!
//! Hit/miss/promotion/demotion/tier-2 counters live in
//! [`masm_storage::stats::CacheStats`] so benchmarks report cache
//! effectiveness alongside device I/O statistics.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use masm_storage::{CacheStats, CacheStatsSnapshot};
use masm_telemetry::{Counter, Gauge, Registry, Unit};
use parking_lot::Mutex;

use crate::block::Entry;

/// Registry-backed metric handles, bound once via
/// [`BlockCache::bind_registry`]. The cache pushes its own counters at
/// the point each event happens (hits and misses on `get`, insertions
/// on admit); byte gauges refresh whenever [`BlockCache::stats`] runs.
struct BoundMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    tier2_hits: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    data_bytes: Arc<Gauge>,
    meta_bytes: Arc<Gauge>,
    tier2_bytes: Arc<Gauge>,
}

impl BoundMetrics {
    fn new(registry: &Registry) -> Self {
        let c = |name, help| registry.counter("cache", name, Unit::Ops, help);
        let g = |name, help| registry.gauge("cache", name, Unit::Bytes, help);
        BoundMetrics {
            hits: c("hits", "tier-1 block cache hits"),
            misses: c("misses", "block cache misses (device reads)"),
            tier2_hits: c("tier2_hits", "victim-tier hits served by a decode"),
            insertions: c("insertions", "tier-1 admissions"),
            evictions: c("evictions", "tier-1 evictions"),
            data_bytes: g("data_bytes", "resident decoded block bytes (tier 1)"),
            meta_bytes: g("meta_bytes", "pinned run metadata bytes"),
            tier2_bytes: g("tier2_bytes", "resident stored bytes (victim tier)"),
        }
    }
}

/// Cache key: `(run_key, block_idx)`.
pub type BlockKey = (u64, u32);

/// A decoded, CRC-verified data block.
pub type CachedBlock = Arc<Vec<Entry>>;

/// The stored (on-device, post-codec) form of a data block, as the read
/// path saw it: CRC-verified bytes plus everything needed to decode
/// them again. Carried into the cache on insert so tier-1 victims can
/// be demoted to the compressed victim tier without re-reading the
/// device.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// The verified stored bytes (shared, not copied, between tiers).
    pub bytes: Arc<Vec<u8>>,
    /// Id of the codec that produced the bytes ([`masm_codec::codec_for`]).
    pub codec_id: u8,
    /// Raw (flat, pre-codec) length the codec's decode must produce.
    pub raw_len: u32,
}

impl StoredBlock {
    /// Stored length in bytes — the tier-2 capacity charge and the
    /// device-read cost of the block.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the stored bytes are empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Decode back to entries, via the same codec-stage-then-flat-decode
    /// path device reads use ([`crate::format`]'s shared helper).
    /// `None` only if the bytes do not decode — impossible for bytes
    /// that were CRC-verified against their zone entry, so callers
    /// treat it as a plain miss.
    fn decode(&self) -> Option<Vec<Entry>> {
        crate::format::decode_stored_bytes(&self.bytes, self.codec_id, self.raw_len as usize).ok()
    }
}

/// Tier-1 replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Single LRU list — the pre-segmentation behavior, kept as a
    /// benchmark baseline. Thrashes on sequential sweeps > capacity.
    Lru,
    /// Segmented LRU: probation + protected, promotion on
    /// re-reference. Scan-resistant (the default).
    #[default]
    Slru,
}

impl CachePolicy {
    /// Benchmark/report label.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Slru => "slru",
        }
    }
}

/// Construction parameters of a [`BlockCache`].
#[derive(Debug, Clone)]
pub struct BlockCacheConfig {
    /// Tier-1 capacity in **decoded** bytes, across all shards.
    pub capacity_bytes: usize,
    /// Shard count (power of two recommended).
    pub shards: usize,
    /// Tier-1 replacement policy.
    pub policy: CachePolicy,
    /// Fraction of tier-1 capacity reserved for the protected segment
    /// under [`CachePolicy::Slru`] (clamped to `[0, 1]`; 0.8 by
    /// default). The probation segment uses whatever the protected
    /// population does not.
    pub protected_frac: f64,
    /// Capacity of the compressed victim tier in **stored** bytes,
    /// across all shards (divided evenly per shard); 0 disables tier 2.
    /// A block whose stored bytes exceed the per-shard share is never
    /// retained or demoted — size the budget to at least
    /// `shards × stored block size` for the tier to do anything.
    pub tier2_bytes: usize,
}

const DEFAULT_SHARDS: usize = 16;

impl BlockCacheConfig {
    /// Defaults for a tier-1 budget of `capacity_bytes`: SLRU with an
    /// 80% protected segment, victim tier disabled.
    pub fn new(capacity_bytes: usize) -> Self {
        BlockCacheConfig {
            capacity_bytes,
            shards: DEFAULT_SHARDS,
            policy: CachePolicy::Slru,
            protected_frac: 0.8,
            tier2_bytes: 0,
        }
    }
}

/// Which tier-1 segment an entry lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

struct T1Entry {
    block: CachedBlock,
    /// Stored bytes kept for demotion into tier 2; `None` when the
    /// victim tier is disabled (no point carrying them).
    stored: Option<StoredBlock>,
    /// The tier-1 capacity charge: decoded in-memory weight plus the
    /// retained stored copy when the victim tier is enabled (see
    /// [`BlockCache::charge_of`]).
    weight: usize,
    /// On-disk (post-codec) bytes of the block, for the `disk_bytes`
    /// gauge. Purely informational in tier 1.
    disk_len: u32,
    last_used: u64,
    seg: Segment,
}

struct T2Entry {
    stored: StoredBlock,
    last_used: u64,
}

/// One shard: the tier-1 block map plus one recency index per segment
/// (`last_used` tick → key, ticks are globally unique), so each
/// segment's LRU victim is its index's first entry — eviction is
/// O(log n), not a scan of the whole shard — and the tier-2 victim map
/// with its own recency index.
#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, T1Entry>,
    probation_recency: BTreeMap<u64, BlockKey>,
    protected_recency: BTreeMap<u64, BlockKey>,
    probation_bytes: usize,
    protected_bytes: usize,
    disk_bytes: u64,
    tier2: HashMap<BlockKey, T2Entry>,
    tier2_recency: BTreeMap<u64, BlockKey>,
    tier2_bytes: usize,
}

impl Shard {
    fn recency_of(&mut self, seg: Segment) -> &mut BTreeMap<u64, BlockKey> {
        match seg {
            Segment::Probation => &mut self.probation_recency,
            Segment::Protected => &mut self.protected_recency,
        }
    }

    fn seg_bytes(&mut self, seg: Segment) -> &mut usize {
        match seg {
            Segment::Probation => &mut self.probation_bytes,
            Segment::Protected => &mut self.protected_bytes,
        }
    }

    fn t1_bytes(&self) -> usize {
        self.probation_bytes + self.protected_bytes
    }

    fn remove(&mut self, key: BlockKey) -> Option<T1Entry> {
        let entry = self.map.remove(&key)?;
        self.recency_of(entry.seg).remove(&entry.last_used);
        *self.seg_bytes(entry.seg) -= entry.weight;
        self.disk_bytes -= entry.disk_len as u64;
        Some(entry)
    }

    fn touch(&mut self, key: BlockKey, new_tick: u64) {
        if let Some(e) = self.map.get_mut(&key) {
            let (seg, old) = (e.seg, e.last_used);
            e.last_used = new_tick;
            let recency = self.recency_of(seg);
            recency.remove(&old);
            recency.insert(new_tick, key);
        }
    }

    /// Move an entry between segments, giving it a fresh tick.
    fn reseat(&mut self, key: BlockKey, to: Segment, new_tick: u64) {
        let Some(e) = self.map.get_mut(&key) else {
            return;
        };
        let (from, old, weight) = (e.seg, e.last_used, e.weight);
        e.seg = to;
        e.last_used = new_tick;
        self.recency_of(from).remove(&old);
        self.recency_of(to).insert(new_tick, key);
        *self.seg_bytes(from) -= weight;
        *self.seg_bytes(to) += weight;
    }

    /// The tier-1 eviction victim: the probation segment's LRU entry,
    /// falling back to protected only when probation is empty.
    fn victim(&self) -> Option<BlockKey> {
        self.probation_recency
            .first_key_value()
            .or_else(|| self.protected_recency.first_key_value())
            .map(|(_, k)| *k)
    }

    fn tier2_remove(&mut self, key: BlockKey) -> Option<T2Entry> {
        let entry = self.tier2.remove(&key)?;
        self.tier2_recency.remove(&entry.last_used);
        self.tier2_bytes -= entry.stored.len();
        Some(entry)
    }
}

/// A sharded, scan-resistant, two-tier cache of run data blocks,
/// bounded in bytes per tier. See the module docs for the policy.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    protected_per_shard: usize,
    tier2_per_shard: usize,
    policy: CachePolicy,
    tick: std::sync::atomic::AtomicU64,
    stats: CacheStats,
    /// Pinned run-metadata bytes (zone maps + bloom filters) accounted
    /// against this cache, kept separate from the evictable data
    /// blocks — see [`BlockCache::retain_meta_bytes`].
    meta_bytes: std::sync::atomic::AtomicUsize,
    /// Registry-bound metric handles, set once by
    /// [`BlockCache::bind_registry`].
    bound: std::sync::OnceLock<BoundMetrics>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("protected_per_shard", &self.protected_per_shard)
            .field("tier2_per_shard", &self.tier2_per_shard)
            .field("policy", &self.policy)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl BlockCache {
    /// A cache bounded to ~`capacity_bytes` of decoded blocks with the
    /// default configuration (SLRU, 80% protected, no victim tier).
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_config(BlockCacheConfig::new(capacity_bytes))
    }

    /// A cache with an explicit shard count (power of two recommended)
    /// and otherwise default configuration.
    pub fn with_shards(capacity_bytes: usize, n_shards: usize) -> Self {
        Self::with_config(BlockCacheConfig {
            shards: n_shards,
            ..BlockCacheConfig::new(capacity_bytes)
        })
    }

    /// A cache with explicit policy, segment sizing, and victim-tier
    /// capacity.
    pub fn with_config(cfg: BlockCacheConfig) -> Self {
        let n_shards = cfg.shards.max(1);
        let capacity_per_shard = (cfg.capacity_bytes / n_shards).max(1);
        let frac = cfg.protected_frac.clamp(0.0, 1.0);
        BlockCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard,
            protected_per_shard: (capacity_per_shard as f64 * frac) as usize,
            tier2_per_shard: cfg.tier2_bytes / n_shards,
            policy: cfg.policy,
            tick: std::sync::atomic::AtomicU64::new(0),
            stats: CacheStats::default(),
            meta_bytes: std::sync::atomic::AtomicUsize::new(0),
            bound: std::sync::OnceLock::new(),
        }
    }

    /// Register this cache's counters and gauges with an engine metric
    /// [`Registry`]. Idempotent; only the first registry wins (a cache
    /// belongs to one engine).
    pub fn bind_registry(&self, registry: &Registry) {
        let _ = self.bound.get_or_init(|| BoundMetrics::new(registry));
    }

    /// The tier-1 replacement policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    fn shard_of(&self, key: BlockKey) -> &Mutex<Shard> {
        let mut h = key.0 ^ (key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Look up a block, counting a hit or miss. A tier-1 probation hit
    /// promotes the block to protected (SLRU); a tier-2 hit decodes the
    /// stored bytes — zero device reads — and readmits the block to
    /// tier 1.
    pub fn get(&self, key: BlockKey) -> Option<CachedBlock> {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock();
        if let Some(e) = shard.map.get(&key) {
            let block = Arc::clone(&e.block);
            if self.policy == CachePolicy::Slru && e.seg == Segment::Probation {
                // reseat() re-ticks the entry, so no touch() is needed.
                shard.reseat(key, Segment::Protected, tick);
                self.stats.record_promotion();
                self.rebalance_protected(&mut shard);
            } else {
                shard.touch(key, tick);
            }
            self.stats.record_hit();
            if let Some(b) = self.bound.get() {
                b.hits.incr();
            }
            return Some(block);
        }
        if let Some(victim) = shard.tier2_remove(key) {
            if let Some(entries) = victim.stored.decode() {
                let entries: CachedBlock = Arc::new(entries);
                self.stats.record_tier2_hit();
                if let Some(b) = self.bound.get() {
                    b.tier2_hits.incr();
                }
                // Readmit to *probation*, not protected: a cyclic sweep
                // served out of tier 2 must keep churning the probation
                // segment rather than flooding protected and displacing
                // the hot set. A further tier-1 hit promotes as usual.
                let weight = self.charge_of(&entries, &victim.stored);
                self.admit(&mut shard, key, Arc::clone(&entries), victim.stored, weight);
                // Readmission is a tier-1 insertion too — keeps the
                // insertions/evictions pair honest for consumers
                // estimating admission rates.
                self.stats.record_insertion();
                return Some(entries);
            }
            // Undecodable tier-2 bytes (cannot happen for bytes that
            // were CRC-verified at admission): drop the entry, miss.
        }
        self.stats.record_miss();
        if let Some(b) = self.bound.get() {
            b.misses.incr();
        }
        None
    }

    /// Whether a block is resident in either tier, without touching
    /// recency or stats (used by prefetch decisions: a tier-2 resident
    /// needs no device read either — [`BlockCache::get`] will decode
    /// it).
    pub fn contains(&self, key: BlockKey) -> bool {
        let shard = self.shard_of(key).lock();
        shard.map.contains_key(&key) || shard.tier2.contains_key(&key)
    }

    /// Whether a block is resident in the victim tier specifically
    /// (diagnostics; [`BlockCache::contains`] answers the usual
    /// "do we need a device read" question across both tiers).
    pub fn tier2_has(&self, key: BlockKey) -> bool {
        self.shard_of(key).lock().tier2.contains_key(&key)
    }

    /// Record a miss for a block obtained without a [`BlockCache::get`]
    /// call — the async-prefetch read path, which checks residency with
    /// [`BlockCache::contains`] and goes straight to the device. Keeps
    /// hit/miss accounting truthful for scans.
    pub fn record_bypass_miss(&self) {
        self.stats.record_miss();
        if let Some(b) = self.bound.get() {
            b.misses.incr();
        }
    }

    /// Whether an entry's stored copy is worth retaining for demotion:
    /// the victim tier is enabled and the bytes fit its per-shard
    /// budget (a block that could never be demoted would be carried —
    /// and charged — for nothing).
    fn retains(&self, stored: &StoredBlock) -> bool {
        self.tier2_per_shard > 0 && stored.len() <= self.tier2_per_shard
    }

    /// The tier-1 capacity charge of one entry: the decoded in-memory
    /// weight plus — when the stored copy is retained for free demotion
    /// — the stored bytes too. Every byte of RAM the entry pins is
    /// charged against the tier-1 budget; `capacity_bytes` is a real
    /// bound either way.
    fn charge_of(&self, block: &CachedBlock, stored: &StoredBlock) -> usize {
        let retained = if self.retains(stored) {
            stored.len()
        } else {
            0
        };
        block.iter().map(Entry::weight).sum::<usize>() + 64 + retained
    }

    /// Insert a freshly device-read, decoded block into the probation
    /// segment, evicting as needed.
    ///
    /// Tier-1 capacity is charged by the block's **decoded** in-memory
    /// weight — a cache of decoded blocks occupies decoded bytes
    /// regardless of how small the codec made them on the SSD. With the
    /// victim tier enabled the stored form is retained alongside (see
    /// [`StoredBlock`]) so eviction demotes the compressed bytes to
    /// tier 2 without re-encoding — and the retained copy is part of
    /// the charge, keeping the budget an honest RAM bound. A block
    /// heavier than a whole shard is rejected outright (counted in
    /// `rejected`) instead of blowing the byte budget.
    pub fn insert(&self, key: BlockKey, block: CachedBlock, stored: StoredBlock) {
        let weight = self.charge_of(&block, &stored);
        let mut shard = self.shard_of(key).lock();
        if weight > self.capacity_per_shard {
            // Reject before touching any resident copy under this key:
            // a block's content never changes, so what is cached stays
            // valid and must survive the rejection.
            self.stats.record_rejected();
            return;
        }
        shard.remove(key);
        shard.tier2_remove(key);
        self.admit(&mut shard, key, block, stored, weight);
        self.stats.record_insertion();
    }

    /// Place an entry of precomputed charge `weight` into the probation
    /// segment, evicting (and demoting victims to tier 2) until it
    /// fits. Caller has already removed any previous entry under `key`
    /// and checked the weight against the shard capacity.
    fn admit(
        &self,
        shard: &mut Shard,
        key: BlockKey,
        block: CachedBlock,
        stored: StoredBlock,
        weight: usize,
    ) {
        while shard.t1_bytes() + weight > self.capacity_per_shard {
            let Some(victim) = shard.victim() else { break };
            let entry = shard.remove(victim).expect("victim is resident");
            self.stats.record_eviction();
            if let Some(b) = self.bound.get() {
                b.evictions.incr();
            }
            self.demote_to_tier2(shard, victim, entry);
        }
        if let Some(b) = self.bound.get() {
            b.insertions.incr();
        }
        let tick = self.next_tick();
        let disk_len = stored.len() as u32;
        *shard.seg_bytes(Segment::Probation) += weight;
        shard.disk_bytes += disk_len as u64;
        shard.recency_of(Segment::Probation).insert(tick, key);
        let retained = self.retains(&stored).then_some(stored);
        shard.map.insert(
            key,
            T1Entry {
                block,
                stored: retained,
                weight,
                disk_len,
                last_used: tick,
                seg: Segment::Probation,
            },
        );
    }

    /// Demote protected LRU entries back to probation until the
    /// protected segment fits its capacity fraction. Total tier-1 bytes
    /// are unchanged, so no eviction can be needed here.
    fn rebalance_protected(&self, shard: &mut Shard) {
        while shard.protected_bytes > self.protected_per_shard {
            let Some((_, key)) = shard.protected_recency.first_key_value() else {
                break;
            };
            let key = *key;
            shard.reseat(key, Segment::Probation, self.next_tick());
            self.stats.record_demotion();
        }
    }

    /// Offer a tier-1 victim's stored bytes to the victim tier. A
    /// retained copy always fits: [`BlockCache::retains`] gated it
    /// against the per-shard budget at admission.
    fn demote_to_tier2(&self, shard: &mut Shard, key: BlockKey, entry: T1Entry) {
        let Some(stored) = entry.stored else { return };
        let len = stored.len();
        while shard.tier2_bytes + len > self.tier2_per_shard {
            let victim = *shard
                .tier2_recency
                .first_key_value()
                .expect("tier-2 bytes imply an entry")
                .1;
            shard.tier2_remove(victim);
            self.stats.record_tier2_eviction();
        }
        let tick = self.next_tick();
        shard.tier2_bytes += len;
        shard.tier2_recency.insert(tick, key);
        shard.tier2.insert(
            key,
            T2Entry {
                stored,
                last_used: tick,
            },
        );
        self.stats.record_tier2_insertion();
    }

    /// Approximate resident bytes charged to tier 1: the evictable
    /// decoded **data** blocks, plus their retained stored copies when
    /// the victim tier is enabled (pinned metadata is tracked
    /// separately).
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().t1_bytes()).sum()
    }

    /// On-disk (compressed) bytes of the resident tier-1 blocks — what
    /// the same population costs on the SSD. The gap between this and
    /// [`BlockCache::resident_bytes`] is the codec's memory
    /// amplification.
    pub fn resident_disk_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().disk_bytes).sum()
    }

    /// Stored (compressed) bytes resident in the victim tier.
    pub fn tier2_resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tier2_bytes).sum()
    }

    /// Account `bytes` of pinned run metadata (zone maps + bloom
    /// filters) against this cache. Metadata never competes with data
    /// blocks for the LRU capacity — it is pinned for a run's lifetime
    /// — but reporting it separately makes the memory pressure of
    /// one-shot sweeps visible: a sweep that churns the whole probation
    /// segment still leaves `meta_bytes` (and the protected segment)
    /// resident.
    pub fn retain_meta_bytes(&self, bytes: usize) {
        self.meta_bytes
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// Release metadata accounted by [`BlockCache::retain_meta_bytes`]
    /// (the run was deleted).
    pub fn release_meta_bytes(&self, bytes: usize) {
        let _ = self.meta_bytes.fetch_update(
            std::sync::atomic::Ordering::Relaxed,
            std::sync::atomic::Ordering::Relaxed,
            |v| Some(v.saturating_sub(bytes)),
        );
    }

    /// Pinned metadata bytes currently accounted.
    pub fn meta_bytes(&self) -> usize {
        self.meta_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Counter snapshot, including per-segment and per-tier residency
    /// gauges, the data/metadata byte split, and the on-disk
    /// (compressed) size of the resident tier-1 blocks.
    pub fn stats(&self) -> CacheStatsSnapshot {
        let mut snap = self.stats.snapshot();
        let (mut prob, mut prot, mut disk, mut t2) = (0usize, 0usize, 0u64, 0usize);
        for shard in &self.shards {
            let s = shard.lock();
            prob += s.probation_bytes;
            prot += s.protected_bytes;
            disk += s.disk_bytes;
            t2 += s.tier2_bytes;
        }
        snap.probation_bytes = prob as u64;
        snap.protected_bytes = prot as u64;
        snap.data_bytes = (prob + prot) as u64;
        snap.meta_bytes = self.meta_bytes() as u64;
        snap.disk_bytes = disk;
        snap.tier2_bytes = t2 as u64;
        if let Some(b) = self.bound.get() {
            b.data_bytes.set(snap.data_bytes);
            b.meta_bytes.set(snap.meta_bytes);
            b.tier2_bytes.set(snap.tier2_bytes);
        }
        snap
    }

    /// Zero the counters (resident blocks are kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop every cached block in both tiers (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            *s = Shard::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::encode_block;

    fn block(n: usize) -> CachedBlock {
        Arc::new(
            (0..n)
                .map(|i| Entry::new(i as u64, 1, vec![0u8; 16]))
                .collect(),
        )
    }

    /// A stand-in stored form of `len` filler bytes: fine whenever the
    /// victim tier is disabled (nothing ever decodes it).
    fn filler(len: usize) -> StoredBlock {
        StoredBlock {
            bytes: Arc::new(vec![0u8; len]),
            codec_id: masm_codec::IDENTITY,
            raw_len: len as u32,
        }
    }

    /// A *decodable* stored form: the identity-coded flat encoding of
    /// the block — what the read path would hand the cache.
    fn stored_of(block: &CachedBlock) -> StoredBlock {
        let flat = encode_block(block);
        StoredBlock {
            raw_len: flat.len() as u32,
            bytes: Arc::new(flat),
            codec_id: masm_codec::IDENTITY,
        }
    }

    fn block_weight(n: usize) -> usize {
        block(n).iter().map(Entry::weight).sum::<usize>() + 64
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = BlockCache::new(1 << 20);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), block(4), filler(32));
        assert!(c.get((1, 0)).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let c = BlockCache::new(1 << 20);
        c.insert((7, 3), block(1), filler(16));
        assert!(c.contains((7, 3)));
        assert!(!c.contains((7, 4)));
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 0);
    }

    #[test]
    fn lru_policy_evicts_coldest() {
        // Single shard so recency ordering is observable.
        let per_block = block_weight(10);
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            policy: CachePolicy::Lru,
            ..BlockCacheConfig::new(per_block * 3)
        });
        c.insert((1, 0), block(10), filler(64));
        c.insert((1, 1), block(10), filler(64));
        c.insert((1, 2), block(10), filler(64));
        // Touch block 0 so block 1 is now coldest.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 3), block(10), filler(64));
        assert!(c.contains((1, 0)), "recently used survives");
        assert!(!c.contains((1, 1)), "coldest evicted");
        let s = c.stats();
        assert!(s.evictions >= 1);
        assert_eq!(s.promotions, 0, "plain LRU never promotes");
        assert_eq!(s.protected_bytes, 0, "plain LRU has no protected set");
    }

    #[test]
    fn slru_promotes_on_rereference_and_survives_sweep() {
        let per_block = block_weight(10);
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            protected_frac: 0.5,
            ..BlockCacheConfig::new(per_block * 4)
        });
        // Admit two hot blocks and re-reference them: both promoted.
        c.insert((1, 0), block(10), filler(64));
        c.insert((1, 1), block(10), filler(64));
        assert!(c.get((1, 0)).is_some());
        assert!(c.get((1, 1)).is_some());
        let s = c.stats();
        assert_eq!(s.promotions, 2);
        assert_eq!(s.protected_bytes as usize, 2 * per_block);
        // A one-shot sweep of 4x capacity churns probation only.
        for i in 10..26u32 {
            c.insert((1, i), block(10), filler(64));
        }
        assert!(c.contains((1, 0)), "hot set survives the sweep");
        assert!(c.contains((1, 1)), "hot set survives the sweep");
        // Same sweep under plain LRU would have evicted them (asserted
        // in lru_policy_evicts_coldest / the scan-resistance test).
    }

    #[test]
    fn protected_overflow_demotes_lru_back_to_probation() {
        let per_block = block_weight(10);
        // Protected fits exactly two blocks.
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            protected_frac: 2.0 * per_block as f64 / (4 * per_block) as f64,
            ..BlockCacheConfig::new(per_block * 4)
        });
        for i in 0..3u32 {
            c.insert((1, i), block(10), filler(64));
            assert!(c.get((1, i)).is_some(), "promote {i}");
        }
        let s = c.stats();
        assert_eq!(s.promotions, 3);
        assert_eq!(s.demotions, 1, "third promotion displaces the LRU");
        assert_eq!(s.protected_bytes as usize, 2 * per_block);
        assert_eq!(s.data_bytes, s.probation_bytes + s.protected_bytes);
        // All three remain resident: demotion is not eviction.
        for i in 0..3u32 {
            assert!(c.contains((1, i)));
        }
    }

    #[test]
    fn oversized_block_is_rejected_not_admitted() {
        let c = BlockCache::with_shards(block_weight(4), 1);
        c.insert((1, 0), block(1), filler(16));
        let resident = c.resident_bytes();
        // A block heavier than the whole shard must not evict the world
        // and then blow the budget.
        c.insert((9, 9), block(100), filler(4096));
        assert!(!c.contains((9, 9)));
        assert_eq!(c.resident_bytes(), resident, "population untouched");
        let s = c.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.evictions, 0, "rejection evicts nothing");
        assert!(c.contains((1, 0)), "prior resident survives");
        // An oversized re-insert under the *same key* must not drop the
        // resident (still valid) copy either.
        c.insert((1, 0), block(100), filler(4096));
        assert!(c.contains((1, 0)), "resident copy survives rejection");
        assert_eq!(c.stats().rejected, 2);
    }

    #[test]
    fn tier2_holds_victims_and_serves_them_with_a_decode() {
        // With the victim tier enabled the charge includes the retained
        // stored copy; size tier 1 to fit exactly two such entries.
        let per_entry = block_weight(10) + stored_of(&block(10)).len();
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            tier2_bytes: 1 << 16,
            ..BlockCacheConfig::new(per_entry * 2)
        });
        let b0 = block(10);
        let stored0 = stored_of(&b0);
        c.insert((1, 0), Arc::clone(&b0), stored0.clone());
        c.insert((1, 1), block(10), stored_of(&block(10)));
        // Displace block 0: the victim's stored bytes land in tier 2.
        c.insert((1, 2), block(10), stored_of(&block(10)));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.tier2_insertions, 1);
        assert_eq!(s.tier2_bytes as usize, stored0.len(), "charged stored size");
        assert!(c.contains((1, 0)), "tier-2 resident counts as contained");
        // The tier-2 hit decodes and readmits to tier 1 (probation —
        // sweeps served from tier 2 must not flood protected).
        let back = c.get((1, 0)).expect("served from tier 2");
        assert_eq!(*back, *b0, "decode reproduces the block");
        let s = c.stats();
        assert_eq!(s.tier2_hits, 1);
        assert_eq!(s.hits, 0, "not a tier-1 hit");
        assert!(s.probation_bytes > 0, "readmitted into probation");
        assert!(!c.tier2_has((1, 0)), "promoted out of tier 2");
        // A second get is a plain tier-1 hit and earns protected status.
        assert!(c.get((1, 0)).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert!(s.promotions >= 1, "the tier-1 re-reference promotes");
    }

    #[test]
    fn tier2_capacity_charges_stored_size_and_evicts_lru() {
        let stored_len = stored_of(&block(10)).len();
        // Tier 1 fits one entry (decoded + retained stored copy);
        // tier 2 fits exactly two stored blocks.
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            tier2_bytes: 2 * stored_len,
            ..BlockCacheConfig::new(block_weight(10) + stored_len)
        });
        for i in 0..4u32 {
            let b = block(10);
            let st = stored_of(&b);
            c.insert((1, i), b, st);
        }
        // Three victims offered, capacity two: the oldest aged out.
        let s = c.stats();
        assert_eq!(s.tier2_insertions, 3);
        assert_eq!(s.tier2_evictions, 1);
        assert_eq!(s.tier2_bytes as usize, 2 * stored_len);
        assert!(!c.contains((1, 0)), "oldest victim aged out of tier 2");
        assert!(c.contains((1, 1)));
        assert!(c.contains((1, 2)));
    }

    #[test]
    fn reinsert_replaces_weight() {
        let c = BlockCache::with_shards(1 << 20, 1);
        c.insert((1, 0), block(10), filler(64));
        let before = c.resident_bytes();
        c.insert((1, 0), block(10), filler(64));
        assert_eq!(c.resident_bytes(), before, "no double counting");
    }

    #[test]
    fn meta_bytes_tracked_separately_from_data() {
        let c = BlockCache::with_shards(4096, 1);
        c.retain_meta_bytes(1000);
        c.retain_meta_bytes(500);
        c.insert((1, 0), block(8), filler(40));
        let s = c.stats();
        assert_eq!(s.meta_bytes, 1500);
        assert!(s.data_bytes > 0);
        // A sweep that evicts every data block leaves metadata pinned.
        for i in 1..100u32 {
            c.insert((1, i), block(8), filler(40));
        }
        assert_eq!(c.meta_bytes(), 1500, "eviction never touches metadata");
        c.release_meta_bytes(1500);
        assert_eq!(c.meta_bytes(), 0);
        c.release_meta_bytes(99); // saturates, never underflows
        assert_eq!(c.meta_bytes(), 0);
    }

    #[test]
    fn disk_bytes_track_compressed_size_of_residents() {
        let c = BlockCache::with_shards(1 << 20, 1);
        c.insert((1, 0), block(10), filler(100));
        c.insert((1, 1), block(10), filler(40));
        assert_eq!(c.resident_disk_bytes(), 140);
        assert_eq!(c.stats().disk_bytes, 140);
        // Capacity still charges decoded weight, not disk bytes.
        assert!(c.resident_bytes() > 140);
        // Re-insert replaces, eviction and clear release.
        c.insert((1, 0), block(10), filler(60));
        assert_eq!(c.resident_disk_bytes(), 100);
        c.clear();
        assert_eq!(c.resident_disk_bytes(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let c = BlockCache::with_shards(4096, 4);
        for i in 0..200u32 {
            c.insert((1, i), block(8), filler(40));
        }
        assert!(
            c.resident_bytes() <= 4096 + 4 * 1024,
            "{}",
            c.resident_bytes()
        );
        c.clear();
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn stats_invariants_hold_under_churn() {
        let per_block = block_weight(6);
        let c = BlockCache::with_config(BlockCacheConfig {
            shards: 2,
            tier2_bytes: 4096,
            ..BlockCacheConfig::new(per_block * 6)
        });
        for round in 0..4u32 {
            for i in 0..40u32 {
                let b = block(6);
                let st = stored_of(&b);
                c.insert((1, i), b, st);
                if i % 3 == 0 {
                    c.get((1, i.saturating_sub(2)));
                }
            }
            let s = c.stats();
            assert_eq!(
                s.data_bytes,
                s.probation_bytes + s.protected_bytes,
                "round {round}: tier-1 split accounts every byte"
            );
            assert_eq!(s.data_bytes as usize, c.resident_bytes());
            assert_eq!(s.tier2_bytes as usize, c.tier2_resident_bytes());
            assert!(s.data_bytes as usize <= per_block * 6 + 2 * per_block);
            assert!(s.tier2_bytes <= 4096);
        }
    }
}
