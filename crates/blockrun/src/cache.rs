//! Sharded LRU cache of decoded data blocks.
//!
//! Sits between run scans and the SSD: a block read off the device is
//! CRC-verified, decoded once, and kept here so later queries touching
//! the same hot run pages skip the SSD entirely (warm point lookups
//! issue *zero* device reads — asserted by tests and reported by the
//! `fig09b_point_lookup` benchmark). Sharding by key hash keeps lock
//! hold times short under concurrent scans, the buffer-pool shape used
//! by databases rather than one global LRU lock.
//!
//! Keys are `(run_key, block_idx)`. Run keys are engine-assigned run ids
//! and are never reused (the id sequence is monotonic, including across
//! recovery), so entries of a deleted run can never be wrongly served;
//! they simply age out.
//!
//! Hit/miss/insertion/eviction counters live in
//! [`masm_storage::stats::CacheStats`] so benchmarks report cache
//! effectiveness alongside device I/O statistics.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use masm_storage::{CacheStats, CacheStatsSnapshot};
use parking_lot::Mutex;

use crate::block::Entry;

/// Cache key: `(run_key, block_idx)`.
pub type BlockKey = (u64, u32);

/// A decoded, CRC-verified data block.
pub type CachedBlock = Arc<Vec<Entry>>;

struct ShardEntry {
    block: CachedBlock,
    weight: usize,
    /// On-disk (post-codec) bytes of the block — what reading it off
    /// the device would cost. Purely informational: capacity and
    /// eviction charge the decoded `weight`.
    disk_len: u32,
    last_used: u64,
}

/// One shard: the block map plus a recency index (`last_used` tick →
/// key, ticks are globally unique), so the LRU victim is the index's
/// first entry — eviction is O(log n), not a scan of the whole shard.
#[derive(Default)]
struct Shard {
    map: HashMap<BlockKey, ShardEntry>,
    by_recency: BTreeMap<u64, BlockKey>,
    bytes: usize,
    disk_bytes: u64,
}

impl Shard {
    fn remove(&mut self, key: BlockKey) -> Option<ShardEntry> {
        let entry = self.map.remove(&key)?;
        self.by_recency.remove(&entry.last_used);
        self.bytes -= entry.weight;
        self.disk_bytes -= entry.disk_len as u64;
        Some(entry)
    }

    fn touch(&mut self, key: BlockKey, new_tick: u64) {
        if let Some(e) = self.map.get_mut(&key) {
            self.by_recency.remove(&e.last_used);
            e.last_used = new_tick;
            self.by_recency.insert(new_tick, key);
        }
    }
}

/// A sharded LRU cache of decoded blocks, bounded in bytes.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    tick: std::sync::atomic::AtomicU64,
    stats: CacheStats,
    /// Pinned run-metadata bytes (zone maps + bloom filters) accounted
    /// against this cache, kept separate from the evictable data
    /// blocks — see [`BlockCache::retain_meta_bytes`].
    meta_bytes: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

const DEFAULT_SHARDS: usize = 16;

impl BlockCache {
    /// A cache bounded to ~`capacity_bytes` across the default number
    /// of shards.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (power of two recommended).
    pub fn with_shards(capacity_bytes: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        BlockCache {
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            capacity_per_shard: (capacity_bytes / n_shards).max(1),
            tick: std::sync::atomic::AtomicU64::new(0),
            stats: CacheStats::default(),
            meta_bytes: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, key: BlockKey) -> &Mutex<Shard> {
        let mut h = key.0 ^ (key.1 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Look up a block, counting a hit or miss.
    pub fn get(&self, key: BlockKey) -> Option<CachedBlock> {
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock();
        match shard.map.get(&key) {
            Some(e) => {
                let block = Arc::clone(&e.block);
                shard.touch(key, tick);
                self.stats.record_hit();
                Some(block)
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Whether a block is resident, without touching recency or stats
    /// (used by prefetch decisions).
    pub fn contains(&self, key: BlockKey) -> bool {
        self.shard_of(key).lock().map.contains_key(&key)
    }

    /// Record a miss for a block obtained without a [`BlockCache::get`]
    /// call — the async-prefetch read path, which checks residency with
    /// [`BlockCache::contains`] and goes straight to the device. Keeps
    /// hit/miss accounting truthful for scans.
    pub fn record_bypass_miss(&self) {
        self.stats.record_miss();
    }

    /// Insert a decoded block, evicting least-recently-used entries from
    /// the shard until it fits (each eviction pops the recency index's
    /// first entry — no shard scan).
    ///
    /// Capacity is charged by the block's **decoded** in-memory weight —
    /// a cache of decoded blocks occupies decoded bytes regardless of
    /// how small the codec made them on the SSD. `disk_len` (the stored,
    /// post-codec size) is tracked alongside so reports can show both
    /// sides of the compression trade.
    pub fn insert(&self, key: BlockKey, block: CachedBlock, disk_len: u32) {
        let weight: usize = block.iter().map(Entry::weight).sum::<usize>() + 64;
        let tick = self.next_tick();
        let mut shard = self.shard_of(key).lock();
        shard.remove(key);
        while shard.bytes + weight > self.capacity_per_shard && !shard.map.is_empty() {
            let victim = *shard
                .by_recency
                .first_key_value()
                .expect("recency index tracks the map")
                .1;
            shard.remove(victim);
            self.stats.record_eviction();
        }
        shard.bytes += weight;
        shard.disk_bytes += disk_len as u64;
        shard.by_recency.insert(tick, key);
        shard.map.insert(
            key,
            ShardEntry {
                block,
                weight,
                disk_len,
                last_used: tick,
            },
        );
        self.stats.record_insertion();
    }

    /// Approximate resident bytes of decoded **data** blocks (the
    /// evictable population; pinned metadata is tracked separately).
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// On-disk (compressed) bytes of the resident data blocks — what
    /// the same population costs on the SSD. The gap between this and
    /// [`BlockCache::resident_bytes`] is the codec's memory
    /// amplification.
    pub fn resident_disk_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().disk_bytes).sum()
    }

    /// Account `bytes` of pinned run metadata (zone maps + bloom
    /// filters) against this cache. Metadata never competes with data
    /// blocks for the LRU capacity — it is pinned for a run's lifetime
    /// — but reporting it separately makes the memory pressure of
    /// one-shot sweeps visible: a sweep that evicts the whole data
    /// population still leaves `meta_bytes` resident, which is the
    /// observation the planned SLRU/2Q policy builds on.
    pub fn retain_meta_bytes(&self, bytes: usize) {
        self.meta_bytes
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
    }

    /// Release metadata accounted by [`BlockCache::retain_meta_bytes`]
    /// (the run was deleted).
    pub fn release_meta_bytes(&self, bytes: usize) {
        let _ = self.meta_bytes.fetch_update(
            std::sync::atomic::Ordering::Relaxed,
            std::sync::atomic::Ordering::Relaxed,
            |v| Some(v.saturating_sub(bytes)),
        );
    }

    /// Pinned metadata bytes currently accounted.
    pub fn meta_bytes(&self) -> usize {
        self.meta_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Counter snapshot, including the data/metadata byte split and the
    /// on-disk (compressed) size of the resident data blocks.
    pub fn stats(&self) -> CacheStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.data_bytes = self.resident_bytes() as u64;
        snap.meta_bytes = self.meta_bytes() as u64;
        snap.disk_bytes = self.resident_disk_bytes();
        snap
    }

    /// Zero the counters (resident blocks are kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop every cached block (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.map.clear();
            s.by_recency.clear();
            s.bytes = 0;
            s.disk_bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> CachedBlock {
        Arc::new(
            (0..n)
                .map(|i| Entry::new(i as u64, 1, vec![0u8; 16]))
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_counting() {
        let c = BlockCache::new(1 << 20);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), block(4), 32);
        assert!(c.get((1, 0)).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn contains_does_not_touch_stats() {
        let c = BlockCache::new(1 << 20);
        c.insert((7, 3), block(1), 16);
        assert!(c.contains((7, 3)));
        assert!(!c.contains((7, 4)));
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 0);
    }

    #[test]
    fn lru_evicts_coldest() {
        // Single shard so recency ordering is observable.
        let per_block = block(10).iter().map(Entry::weight).sum::<usize>() + 64;
        let c = BlockCache::with_shards(per_block * 3, 1);
        c.insert((1, 0), block(10), 64);
        c.insert((1, 1), block(10), 64);
        c.insert((1, 2), block(10), 64);
        // Touch block 0 so block 1 is now coldest.
        assert!(c.get((1, 0)).is_some());
        c.insert((1, 3), block(10), 64);
        assert!(c.contains((1, 0)), "recently used survives");
        assert!(!c.contains((1, 1)), "coldest evicted");
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn reinsert_replaces_weight() {
        let c = BlockCache::with_shards(1 << 20, 1);
        c.insert((1, 0), block(10), 64);
        let before = c.resident_bytes();
        c.insert((1, 0), block(10), 64);
        assert_eq!(c.resident_bytes(), before, "no double counting");
    }

    #[test]
    fn meta_bytes_tracked_separately_from_data() {
        let c = BlockCache::with_shards(4096, 1);
        c.retain_meta_bytes(1000);
        c.retain_meta_bytes(500);
        c.insert((1, 0), block(8), 40);
        let s = c.stats();
        assert_eq!(s.meta_bytes, 1500);
        assert!(s.data_bytes > 0);
        // A sweep that evicts every data block leaves metadata pinned.
        for i in 1..100u32 {
            c.insert((1, i), block(8), 40);
        }
        assert_eq!(c.meta_bytes(), 1500, "eviction never touches metadata");
        c.release_meta_bytes(1500);
        assert_eq!(c.meta_bytes(), 0);
        c.release_meta_bytes(99); // saturates, never underflows
        assert_eq!(c.meta_bytes(), 0);
    }

    #[test]
    fn disk_bytes_track_compressed_size_of_residents() {
        let c = BlockCache::with_shards(1 << 20, 1);
        c.insert((1, 0), block(10), 100);
        c.insert((1, 1), block(10), 40);
        assert_eq!(c.resident_disk_bytes(), 140);
        assert_eq!(c.stats().disk_bytes, 140);
        // Capacity still charges decoded weight, not disk bytes.
        assert!(c.resident_bytes() > 140);
        // Re-insert replaces, eviction and clear release.
        c.insert((1, 0), block(10), 60);
        assert_eq!(c.resident_disk_bytes(), 100);
        c.clear();
        assert_eq!(c.resident_disk_bytes(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let c = BlockCache::with_shards(4096, 4);
        for i in 0..200u32 {
            c.insert((1, i), block(8), 40);
        }
        assert!(
            c.resident_bytes() <= 4096 + 4 * 1024,
            "{}",
            c.resident_bytes()
        );
        c.clear();
        assert_eq!(c.resident_bytes(), 0);
    }
}
