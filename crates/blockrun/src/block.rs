//! Data-block encoding: the *flat* entry layout compression codecs
//! operate on.
//!
//! A block holds a key-ordered slice of a run's entries. Since the
//! `masm-codec` stage landed, this module encodes the **raw** (flat)
//! representation only; compression — including the delta+varint entry
//! encoding that used to live here — is a separate byte-level codec
//! applied by the run builder, recorded per block in its zone-map entry
//! (see [`crate::format::ZoneMap::codec_id`]).
//!
//! Layout (also documented in `masm_codec`'s crate docs, since the
//! [`masm_codec::Delta`] codec parses it):
//!
//! ```text
//! ┌────────────┬───────────────────────────────────────────────┐
//! │ count: u32 │ entry × count                                 │
//! ├────────────┴───────────────────────────────────────────────┤
//! │ entry := key: u64 LE │ ts: u64 LE │ len: u32 LE │ value…   │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! The on-disk block's CRC lives in its zone-map entry and covers the
//! *stored* (post-codec) bytes, so integrity is checked before any
//! codec or entry decoding starts.

// Varints moved to `masm-codec` with the delta encoding; re-exported
// because the bloom filter header still uses them.
pub use masm_codec::varint::{get_varint, put_varint};

/// One run entry: an opaque value filed under `(key, ts)`.
///
/// The value bytes are whatever the layer above stores — `masm-core`
/// puts its encoded update operation (tag + content) there — so this
/// crate stays independent of record semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Primary key the entry applies to.
    pub key: u64,
    /// Commit timestamp.
    pub ts: u64,
    /// Opaque payload.
    pub value: Vec<u8>,
}

impl Entry {
    /// Construct an entry.
    pub fn new(key: u64, ts: u64, value: Vec<u8>) -> Self {
        Entry { key, ts, value }
    }

    /// In-memory footprint estimate (for cache weighting).
    pub fn weight(&self) -> usize {
        std::mem::size_of::<Entry>() + self.value.len()
    }
}

/// Flat-encoded size of one entry: the 20-byte header plus its value.
pub fn flat_entry_len(entry: &Entry) -> usize {
    8 + 8 + 4 + entry.value.len()
}

/// Encode `entries` (key-ordered) into one flat data block.
pub fn encode_block(entries: &[Entry]) -> Vec<u8> {
    debug_assert!(entries.windows(2).all(|w| w[0].key <= w[1].key));
    let mut out = Vec::with_capacity(4 + entries.iter().map(flat_entry_len).sum::<usize>());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        debug_assert!(e.value.len() <= u32::MAX as usize);
        out.extend_from_slice(&e.key.to_le_bytes());
        out.extend_from_slice(&e.ts.to_le_bytes());
        out.extend_from_slice(&(e.value.len() as u32).to_le_bytes());
        out.extend_from_slice(&e.value);
    }
    out
}

/// Decode a flat data block produced by [`encode_block`]. Returns
/// `None` on any structural inconsistency — truncation, trailing bytes,
/// or out-of-order keys. (Callers verify the CRC and run the codec
/// first, so a `None` here means a logic error or deliberate
/// corruption.)
pub fn decode_block(buf: &[u8]) -> Option<Vec<Entry>> {
    if buf.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count);
    let mut prev_key = 0u64;
    for _ in 0..count {
        if buf.len() < pos + 20 {
            return None;
        }
        let key = u64::from_le_bytes(buf[pos..pos + 8].try_into().ok()?);
        let ts = u64::from_le_bytes(buf[pos + 8..pos + 16].try_into().ok()?);
        let len = u32::from_le_bytes(buf[pos + 16..pos + 20].try_into().ok()?) as usize;
        pos += 20;
        if buf.len() < pos + len {
            return None;
        }
        if key < prev_key {
            return None; // blocks are key-ordered by construction
        }
        out.push(Entry {
            key,
            ts,
            value: buf[pos..pos + len].to_vec(),
        });
        pos += len;
        prev_key = key;
    }
    (pos == buf.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::new(i * 3, i + 1, vec![i as u8; (i % 5) as usize]))
            .collect()
    }

    #[test]
    fn block_roundtrip() {
        let entries = sample(200);
        let block = encode_block(&entries);
        assert_eq!(decode_block(&block).unwrap(), entries);
    }

    #[test]
    fn empty_block_roundtrip() {
        let block = encode_block(&[]);
        assert_eq!(decode_block(&block).unwrap(), Vec::<Entry>::new());
    }

    #[test]
    fn truncated_block_rejected() {
        let block = encode_block(&sample(20));
        for cut in [0, 3, block.len() / 2, block.len() - 1] {
            assert!(decode_block(&block[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut block = encode_block(&sample(5));
        block.push(0);
        assert!(decode_block(&block).is_none());
    }

    #[test]
    fn out_of_order_keys_rejected() {
        let mut block = encode_block(&sample(2));
        // Swap the two keys in place (offsets 4 and 4+20+value).
        let second = 4 + 20; // first entry has an empty value
        let k0: [u8; 8] = block[4..12].try_into().unwrap();
        let k1: [u8; 8] = block[second..second + 8].try_into().unwrap();
        block[4..12].copy_from_slice(&k1);
        block[second..second + 8].copy_from_slice(&k0);
        assert!(decode_block(&block).is_none());
    }

    #[test]
    fn entry_len_matches_encoding() {
        let entries = sample(50);
        let total: usize = 4 + entries.iter().map(flat_entry_len).sum::<usize>();
        assert_eq!(total, encode_block(&entries).len());
    }

    #[test]
    fn delta_codec_still_beats_flat_encoding() {
        // The compression the old in-block delta format provided now
        // comes from the codec stage: same win, now optional and
        // per-block.
        let entries: Vec<Entry> = (0..1000)
            .map(|i| Entry::new(i * 2, i + 1, vec![]))
            .collect();
        let flat = encode_block(&entries);
        let delta = masm_codec::Delta;
        use masm_codec::Codec as _;
        let enc = delta.encode(&flat).unwrap();
        assert!(
            enc.len() * 4 < flat.len(),
            "{} bytes vs {} flat",
            enc.len(),
            flat.len()
        );
        assert_eq!(delta.decode(&enc, flat.len()).unwrap(), flat);
    }
}
