//! Data-block encoding: delta/prefix-compressed entries.
//!
//! A block holds a key-ordered slice of a run's entries. Keys are stored
//! as varint deltas against the previous key in the block (the first
//! entry's delta is against 0), which is the integer-key analogue of the
//! byte-prefix compression used by SST data blocks: sorted keys share
//! their high bits, so consecutive deltas are small and a delete entry
//! shrinks from 17 bytes (flat encoding) to typically 3–5 bytes.
//!
//! Layout:
//!
//! ```text
//! ┌────────────┬──────────────────────────────────────────────┐
//! │ count: u32 │ entry × count                                │
//! ├────────────┴──────────────────────────────────────────────┤
//! │ entry := varint(key − prev_key) varint(ts)                │
//! │          varint(len(value)) value…                        │
//! └───────────────────────────────────────────────────────────┘
//! ```
//!
//! The block's CRC lives in its zone-map entry (see
//! [`crate::format::ZoneMap`]), not in the block itself, so integrity
//! can be checked before any decoding starts.

/// One run entry: an opaque value filed under `(key, ts)`.
///
/// The value bytes are whatever the layer above stores — `masm-core`
/// puts its encoded update operation (tag + content) there — so this
/// crate stays independent of record semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Primary key the entry applies to.
    pub key: u64,
    /// Commit timestamp.
    pub ts: u64,
    /// Opaque payload.
    pub value: Vec<u8>,
}

impl Entry {
    /// Construct an entry.
    pub fn new(key: u64, ts: u64, value: Vec<u8>) -> Self {
        Entry { key, ts, value }
    }

    /// In-memory footprint estimate (for cache weighting).
    pub fn weight(&self) -> usize {
        std::mem::size_of::<Entry>() + self.value.len()
    }
}

/// Append `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode a LEB128 varint from the front of `buf`; returns the value and
/// bytes consumed.
pub fn get_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let low = (b & 0x7F) as u64;
        if shift == 63 && low > 1 {
            return None; // overflow past 64 bits
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

fn varint_len(v: u64) -> usize {
    ((64 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Encoded size of `entry` when it follows a key of `prev_key`.
pub fn encoded_entry_len(prev_key: u64, entry: &Entry) -> usize {
    varint_len(entry.key - prev_key)
        + varint_len(entry.ts)
        + varint_len(entry.value.len() as u64)
        + entry.value.len()
}

/// Encode `entries` (key-ordered) into one data block.
pub fn encode_block(entries: &[Entry]) -> Vec<u8> {
    debug_assert!(entries.windows(2).all(|w| w[0].key <= w[1].key));
    let mut out = Vec::with_capacity(16 + entries.len() * 8);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let mut prev_key = 0u64;
    for e in entries {
        put_varint(&mut out, e.key - prev_key);
        put_varint(&mut out, e.ts);
        put_varint(&mut out, e.value.len() as u64);
        out.extend_from_slice(&e.value);
        prev_key = e.key;
    }
    out
}

/// Decode a data block produced by [`encode_block`]. Returns `None` on
/// any structural inconsistency (callers verify the CRC first, so a
/// `None` here means a logic error or deliberate corruption).
pub fn decode_block(buf: &[u8]) -> Option<Vec<Entry>> {
    if buf.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count);
    let mut prev_key = 0u64;
    for _ in 0..count {
        let (delta, used) = get_varint(&buf[pos..])?;
        pos += used;
        let (ts, used) = get_varint(&buf[pos..])?;
        pos += used;
        let (len, used) = get_varint(&buf[pos..])?;
        pos += used;
        let len = len as usize;
        if buf.len() < pos + len {
            return None;
        }
        let key = prev_key.checked_add(delta)?;
        out.push(Entry {
            key,
            ts,
            value: buf[pos..pos + len].to_vec(),
        });
        pos += len;
        prev_key = key;
    }
    (pos == buf.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<Entry> {
        (0..n)
            .map(|i| Entry::new(i * 3, i + 1, vec![i as u8; (i % 5) as usize]))
            .collect()
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len of {v}");
            let (back, used) = get_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert!(get_varint(&[0x80]).is_none(), "truncated varint");
        assert!(
            get_varint(&[0xFF; 11]).is_none(),
            "varint longer than 64 bits"
        );
    }

    #[test]
    fn block_roundtrip() {
        let entries = sample(200);
        let block = encode_block(&entries);
        assert_eq!(decode_block(&block).unwrap(), entries);
    }

    #[test]
    fn empty_block_roundtrip() {
        let block = encode_block(&[]);
        assert_eq!(decode_block(&block).unwrap(), Vec::<Entry>::new());
    }

    #[test]
    fn delta_compression_beats_flat_encoding() {
        // 17+ bytes per entry flat; deltas of 2 with small ts fit in ~4.
        let entries: Vec<Entry> = (0..1000)
            .map(|i| Entry::new(i * 2, i + 1, vec![]))
            .collect();
        let block = encode_block(&entries);
        assert!(
            block.len() < entries.len() * 8,
            "{} bytes for {} entries",
            block.len(),
            entries.len()
        );
    }

    #[test]
    fn truncated_block_rejected() {
        let block = encode_block(&sample(20));
        for cut in [0, 3, block.len() / 2, block.len() - 1] {
            assert!(decode_block(&block[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut block = encode_block(&sample(5));
        block.push(0);
        assert!(decode_block(&block).is_none());
    }

    #[test]
    fn entry_len_matches_encoding() {
        let entries = sample(50);
        let mut prev = 0u64;
        let mut total = 4usize;
        for e in &entries {
            total += encoded_entry_len(prev, e);
            prev = e.key;
        }
        assert_eq!(total, encode_block(&entries).len());
    }
}
