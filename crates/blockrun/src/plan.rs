//! Merge planning: partition the inputs of a k-way run merge into
//! *move* segments (blocks relinked verbatim) and *merge* segments
//! (blocks decoded and folded).
//!
//! A 2-pass merge of sorted runs only needs to decode a data block when
//! its key range actually interleaves with another input — exactly the
//! information the per-block [`crate::format::ZoneMap`]s already hold. The
//! [`MergePlanner`] sweeps every input block's `[min_key, max_key]`
//! interval and groups overlapping intervals into connected components:
//!
//! ```text
//! run 0:  [0‥9][10‥19]      [40‥49][50‥59]
//! run 1:            [15‥29]               [70‥79][80‥99]
//!         ╰──╯╰───────────╯ ╰────────────╯╰────────────╯
//!         move    merge          move          move
//! ```
//!
//! * A component whose blocks all come from **one** run becomes a
//!   [`Segment::Move`]: the executor copies the raw encoded bytes
//!   (CRC-checked, never delta-decoded) into the output run, reusing
//!   the existing zone entries.
//! * A component spanning **several** runs becomes a [`Segment::Merge`]:
//!   those blocks are decoded and fed through the ordinary k-way fold.
//!
//! Intervals are closed, so two blocks that merely share a boundary key
//! land in the same component — entries for one key can straddle block
//! (and run) boundaries, and correctness requires that all of them meet
//! in a single merge segment or stay in run order inside a single move
//! segment. Because components have pairwise-disjoint key hulls and are
//! emitted in key order, concatenating their outputs yields one run
//! sorted by `(key, ts)`.
//!
//! The plan makes compaction cost proportional to *overlap*, not input
//! size: fully disjoint inputs decode zero bytes.

use std::ops::Range;

use crate::format::BlockRunMeta;

/// One unit of work in a [`MergePlan`], in output key order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A contiguous range of blocks from a single input run whose keys
    /// overlap no other input: relink the raw bytes, never decode.
    Move {
        /// Index of the input run (position in the planner's inputs).
        run: usize,
        /// Contiguous block indices within that run.
        blocks: Range<usize>,
    },
    /// Blocks from two or more runs whose key ranges interleave: decode
    /// and k-way merge.
    Merge {
        /// Smallest key of the component (inclusive).
        min_key: u64,
        /// Largest key of the component (inclusive).
        max_key: u64,
        /// Per-run contiguous block ranges participating in this
        /// segment (runs without overlapping blocks are absent).
        parts: Vec<(usize, Range<usize>)>,
    },
}

impl Segment {
    /// Number of data blocks covered by this segment.
    pub fn block_count(&self) -> usize {
        match self {
            Segment::Move { blocks, .. } => blocks.len(),
            Segment::Merge { parts, .. } => parts.iter().map(|(_, r)| r.len()).sum(),
        }
    }
}

/// The ordered partition of a k-way merge into move and merge segments,
/// plus the aggregate counts executors report.
#[derive(Debug, Clone, Default)]
pub struct MergePlan {
    /// Segments in ascending key order.
    pub segments: Vec<Segment>,
    /// Number of input runs that contribute at least one block.
    pub fan_in: usize,
    /// Blocks relinked without decoding.
    pub blocks_moved: usize,
    /// Blocks that must be decoded and merged.
    pub blocks_merged: usize,
    /// Encoded bytes of the moved blocks.
    pub bytes_moved: u64,
    /// Encoded bytes of the merged (decoded) blocks.
    pub bytes_to_decode: u64,
}

impl MergePlan {
    /// Whether no block needs decoding (fully disjoint inputs).
    pub fn is_pure_move(&self) -> bool {
        self.blocks_merged == 0
    }
}

/// Plans a k-way merge of block runs from their zone maps alone — no
/// data block is touched.
#[derive(Debug)]
pub struct MergePlanner<'a> {
    inputs: &'a [&'a BlockRunMeta],
}

impl<'a> MergePlanner<'a> {
    /// A planner over `inputs` (the metadata of every run being merged,
    /// in any order; segment `run` indices refer to positions here).
    pub fn new(inputs: &'a [&'a BlockRunMeta]) -> Self {
        MergePlanner { inputs }
    }

    /// Compute the move/merge partition.
    pub fn plan(&self) -> MergePlan {
        // One interval per data block across all inputs.
        let mut intervals: Vec<(u64, u64, usize, usize)> = Vec::new(); // (min, max, run, block)
        for (run_idx, meta) in self.inputs.iter().enumerate() {
            for (block_idx, z) in meta.zones.iter().enumerate() {
                intervals.push((z.min_key, z.max_key, run_idx, block_idx));
            }
        }
        intervals.sort_unstable();

        let mut plan = MergePlan {
            fan_in: self.inputs.iter().filter(|m| !m.zones.is_empty()).count(),
            ..MergePlan::default()
        };

        // Sweep: closed intervals overlap when the next min is ≤ the
        // running hull max, so each connected component is a maximal
        // chain of such intervals.
        let mut i = 0;
        while i < intervals.len() {
            let mut hull_max = intervals[i].1;
            let mut j = i + 1;
            while j < intervals.len() && intervals[j].0 <= hull_max {
                hull_max = hull_max.max(intervals[j].1);
                j += 1;
            }
            self.emit_component(&intervals[i..j], &mut plan);
            i = j;
        }
        plan
    }

    fn emit_component(&self, members: &[(u64, u64, usize, usize)], plan: &mut MergePlan) {
        // Group the component's blocks by run. Blocks of one run are
        // key-ordered and disjoint up to boundary keys, so the members
        // from a given run always form a contiguous index range.
        let mut parts: Vec<(usize, Range<usize>)> = Vec::new();
        for &(_, _, run, block) in members {
            match parts.iter_mut().find(|(r, _)| *r == run) {
                Some((_, range)) => {
                    debug_assert_eq!(range.end, block, "blocks of one run are contiguous");
                    range.end = block + 1;
                }
                None => parts.push((run, block..block + 1)),
            }
        }
        let bytes: u64 = parts
            .iter()
            .flat_map(|(run, range)| self.inputs[*run].zones[range.clone()].iter())
            .map(|z| z.len as u64)
            .sum();
        let blocks = members.len();

        if parts.len() == 1 {
            let (run, blocks_range) = parts.pop().expect("single part");
            plan.blocks_moved += blocks;
            plan.bytes_moved += bytes;
            // Coalesce with a preceding move of the same run: adjacent
            // components from one run are already in output order, and
            // one wide segment means one wide sequential read.
            if let Some(Segment::Move {
                run: prev_run,
                blocks: prev_blocks,
            }) = plan.segments.last_mut()
            {
                if *prev_run == run && prev_blocks.end == blocks_range.start {
                    prev_blocks.end = blocks_range.end;
                    return;
                }
            }
            plan.segments.push(Segment::Move {
                run,
                blocks: blocks_range,
            });
        } else {
            parts.sort_unstable_by_key(|(run, _)| *run);
            plan.blocks_merged += blocks;
            plan.bytes_to_decode += bytes;
            plan.segments.push(Segment::Merge {
                min_key: members.iter().map(|m| m.0).min().expect("non-empty"),
                max_key: members.iter().map(|m| m.1).max().expect("non-empty"),
                parts,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ZoneMap;

    fn meta_with_zones(ranges: &[(u64, u64)]) -> BlockRunMeta {
        let mut meta = BlockRunMeta::synthetic(
            ranges.first().map_or(u64::MAX, |r| r.0),
            ranges.last().map_or(0, |r| r.1),
            1,
            1,
            ranges.len() as u64,
        );
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            meta.zones.push(ZoneMap {
                offset: i as u64 * 100,
                len: 100,
                count: 1,
                min_key: lo,
                max_key: hi,
                min_ts: 1,
                max_ts: 1,
                crc: 0,
                raw_len: 100,
                codec_id: masm_codec::IDENTITY,
            });
        }
        meta
    }

    fn plan_of(runs: &[&BlockRunMeta]) -> MergePlan {
        MergePlanner::new(runs).plan()
    }

    #[test]
    fn fully_disjoint_runs_are_pure_moves() {
        let a = meta_with_zones(&[(0, 9), (10, 19)]);
        let b = meta_with_zones(&[(100, 109), (110, 119)]);
        let plan = plan_of(&[&a, &b]);
        assert!(plan.is_pure_move());
        assert_eq!(plan.blocks_moved, 4);
        assert_eq!(plan.bytes_to_decode, 0);
        assert_eq!(plan.fan_in, 2);
        assert_eq!(
            plan.segments,
            vec![
                Segment::Move {
                    run: 0,
                    blocks: 0..2
                },
                Segment::Move {
                    run: 1,
                    blocks: 0..2
                },
            ]
        );
    }

    #[test]
    fn interleaved_disjoint_runs_alternate_moves_in_key_order() {
        let a = meta_with_zones(&[(0, 9), (40, 49)]);
        let b = meta_with_zones(&[(20, 29), (60, 69)]);
        let plan = plan_of(&[&a, &b]);
        assert_eq!(
            plan.segments,
            vec![
                Segment::Move {
                    run: 0,
                    blocks: 0..1
                },
                Segment::Move {
                    run: 1,
                    blocks: 0..1
                },
                Segment::Move {
                    run: 0,
                    blocks: 1..2
                },
                Segment::Move {
                    run: 1,
                    blocks: 1..2
                },
            ]
        );
    }

    #[test]
    fn overlapping_blocks_form_merge_segment() {
        let a = meta_with_zones(&[(0, 9), (10, 30), (50, 59)]);
        let b = meta_with_zones(&[(15, 29), (70, 79)]);
        let plan = plan_of(&[&a, &b]);
        assert_eq!(plan.blocks_merged, 2);
        assert_eq!(plan.blocks_moved, 3);
        assert_eq!(
            plan.segments,
            vec![
                Segment::Move {
                    run: 0,
                    blocks: 0..1
                },
                Segment::Merge {
                    min_key: 10,
                    max_key: 30,
                    parts: vec![(0, 1..2), (1, 0..1)],
                },
                Segment::Move {
                    run: 0,
                    blocks: 2..3
                },
                Segment::Move {
                    run: 1,
                    blocks: 1..2
                },
            ]
        );
    }

    #[test]
    fn shared_boundary_key_joins_components() {
        // Key 20 ends a's block and starts b's block: the entries for
        // key 20 may live in both, so they must merge.
        let a = meta_with_zones(&[(0, 20)]);
        let b = meta_with_zones(&[(20, 40)]);
        let plan = plan_of(&[&a, &b]);
        assert_eq!(plan.segments.len(), 1);
        assert!(matches!(plan.segments[0], Segment::Merge { .. }));
    }

    #[test]
    fn same_run_boundary_chain_stays_one_move() {
        // Blocks of one run sharing boundary keys still move verbatim:
        // in-run order already interleaves them correctly.
        let a = meta_with_zones(&[(0, 10), (10, 20), (20, 30)]);
        let b = meta_with_zones(&[(100, 110)]);
        let plan = plan_of(&[&a, &b]);
        assert_eq!(
            plan.segments,
            vec![
                Segment::Move {
                    run: 0,
                    blocks: 0..3
                },
                Segment::Move {
                    run: 1,
                    blocks: 0..1
                },
            ]
        );
    }

    #[test]
    fn chained_overlap_pulls_in_same_run_neighbor() {
        // a's second block only touches a's first (boundary key 20), but
        // the first overlaps b — so all three must merge: key 20 entries
        // could otherwise split between a merge and a move segment.
        let a = meta_with_zones(&[(10, 20), (20, 30)]);
        let b = meta_with_zones(&[(5, 12)]);
        let plan = plan_of(&[&a, &b]);
        assert_eq!(plan.segments.len(), 1);
        match &plan.segments[0] {
            Segment::Merge {
                parts,
                min_key,
                max_key,
            } => {
                assert_eq!((*min_key, *max_key), (5, 30));
                assert_eq!(parts, &vec![(0, 0..2), (1, 0..1)]);
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty = meta_with_zones(&[]);
        let a = meta_with_zones(&[(0, 9)]);
        let plan = plan_of(&[&empty, &a]);
        assert_eq!(plan.fan_in, 1);
        assert_eq!(
            plan.segments,
            vec![Segment::Move {
                run: 1,
                blocks: 0..1
            }]
        );
        assert!(plan_of(&[&empty]).segments.is_empty());
    }

    #[test]
    fn three_way_overlap_counts_all_parts() {
        let a = meta_with_zones(&[(0, 100)]);
        let b = meta_with_zones(&[(10, 50)]);
        let c = meta_with_zones(&[(60, 90)]);
        let plan = plan_of(&[&a, &b, &c]);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.blocks_merged, 3);
        match &plan.segments[0] {
            Segment::Merge { parts, .. } => assert_eq!(parts.len(), 3),
            other => panic!("expected merge, got {other:?}"),
        }
    }
}
