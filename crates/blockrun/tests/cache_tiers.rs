//! Device-level tests of the two-tier, scan-resistant block cache:
//! SLRU keeps a re-referenced hot set resident through sweeps that
//! plain LRU loses, and the compressed victim tier serves promotions
//! with one codec decode and **zero** device reads (asserted via
//! `SimDevice` counters).

use masm_blockrun::{
    read_block, write_run, BlockCache, BlockCacheConfig, BlockRunConfig, CachePolicy, CodecChoice,
    Entry,
};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn device() -> (SimDevice, SessionHandle) {
    let clock = SimClock::new();
    let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    (dev, SessionHandle::fresh(clock))
}

/// Compressible entries (constant payload) so the LZ codec has
/// something to chew on.
fn entries(n: u64) -> Vec<Entry> {
    (0..n)
        .map(|k| Entry::new(k, k + 1, vec![7u8; 32]))
        .collect()
}

fn cfg(codec: CodecChoice) -> BlockRunConfig {
    BlockRunConfig {
        block_bytes: 256,
        bloom_bits_per_key: 0,
        codec,
    }
}

/// Decoded in-memory weight of one cached block, as the cache charges it.
fn weight_of(block: &[Entry]) -> usize {
    block.iter().map(Entry::weight).sum::<usize>() + 64
}

#[test]
fn slru_keeps_rereferenced_hot_set_through_sweep_lru_loses_it() {
    let (dev, s) = device();
    let meta = write_run(&s, &dev, 0, &cfg(CodecChoice::Delta), &entries(600)).unwrap();
    assert!(meta.zones.len() > 12, "{} blocks", meta.zones.len());
    let block0 = read_block(&s, &dev, &meta, 0, None).unwrap();
    let w = weight_of(&block0);

    for (policy, expect_resident) in [(CachePolicy::Slru, true), (CachePolicy::Lru, false)] {
        let cache = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            policy,
            ..BlockCacheConfig::new(w * 4)
        });
        // Hot block: admitted, then re-referenced (SLRU promotes it).
        read_block(&s, &dev, &meta, 0, Some((&cache, 1))).unwrap();
        read_block(&s, &dev, &meta, 0, Some((&cache, 1))).unwrap();
        // Sequential sweep of every other block — far more unique
        // blocks than the cache holds.
        for idx in 1..meta.zones.len() {
            read_block(&s, &dev, &meta, idx, Some((&cache, 1))).unwrap();
        }
        assert_eq!(
            cache.contains((1, 0)),
            expect_resident,
            "{policy:?}: hot block residency after the sweep"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.data_bytes,
            stats.probation_bytes + stats.protected_bytes,
            "tier-1 split accounts every byte"
        );
        if policy == CachePolicy::Slru {
            assert!(stats.promotions >= 1, "re-reference promoted the hot block");
            // The sweep churned probation; the hot set is protected, so
            // a re-read costs no device I/O.
            let reads_before = dev.stats().read_ops;
            read_block(&s, &dev, &meta, 0, Some((&cache, 1))).unwrap();
            assert_eq!(dev.stats().read_ops, reads_before, "hot re-read is free");
        }
    }
}

#[test]
fn tier2_promotion_costs_one_decode_and_zero_device_reads() {
    let (dev, s) = device();
    let meta = write_run(&s, &dev, 0, &cfg(CodecChoice::Lz), &entries(400)).unwrap();
    assert!(meta.zones.len() >= 3);
    let expect0 = read_block(&s, &dev, &meta, 0, None).unwrap();
    let w = weight_of(&expect0);

    // Tier 1 fits one block; tier 2 is roomy.
    let cache = BlockCache::with_config(BlockCacheConfig {
        shards: 1,
        tier2_bytes: 1 << 20,
        ..BlockCacheConfig::new(w + w / 4)
    });
    read_block(&s, &dev, &meta, 0, Some((&cache, 1))).unwrap();
    read_block(&s, &dev, &meta, 1, Some((&cache, 1))).unwrap();
    assert!(cache.tier2_has((1, 0)), "victim's stored bytes demoted");
    assert_eq!(
        cache.stats().tier2_bytes,
        meta.zones[0].len as u64,
        "tier 2 charges the stored (compressed) size, not decoded weight"
    );

    // The promotion: no device read, one codec decode, same entries.
    let reads_before = dev.stats().read_ops;
    let promoted = read_block(&s, &dev, &meta, 0, Some((&cache, 1))).unwrap();
    assert_eq!(*promoted, *expect0, "decode reproduces the block");
    assert_eq!(
        dev.stats().read_ops,
        reads_before,
        "tier-2 promotion performs zero device reads"
    );
    let stats = cache.stats();
    assert_eq!(stats.tier2_hits, 1, "served (and decoded) from tier 2");
    assert!(!cache.tier2_has((1, 0)), "promoted back into tier 1");
}

#[test]
fn tier2_multiplies_no_device_hits_on_repeated_sweeps() {
    // A cyclic sweep larger than tier 1 but whose *compressed* bytes
    // fit tier 2: with the LZ codec the victim tier absorbs the whole
    // loop, so re-sweeps run device-free; without it every round pays
    // full device I/O.
    let (dev, s) = device();
    let meta = write_run(&s, &dev, 0, &cfg(CodecChoice::Lz), &entries(600)).unwrap();
    let stored_total: u64 = meta.zones.iter().map(|z| z.len as u64).sum();
    let block0 = read_block(&s, &dev, &meta, 0, None).unwrap();
    let w = weight_of(&block0);
    let t1_cap = w * 4; // far smaller than the decoded sweep

    let mut no_device = Vec::new();
    for tier2_bytes in [0usize, (stored_total as usize) * 2] {
        let cache = BlockCache::with_config(BlockCacheConfig {
            shards: 1,
            tier2_bytes,
            ..BlockCacheConfig::new(t1_cap)
        });
        for _round in 0..3 {
            for idx in 0..meta.zones.len() {
                read_block(&s, &dev, &meta, idx, Some((&cache, 1))).unwrap();
            }
        }
        no_device.push(cache.stats().no_device_hits());
    }
    assert!(
        no_device[1] >= 3 * no_device[0].max(1),
        "victim tier serves sweeps device-free: {no_device:?}"
    );
}
