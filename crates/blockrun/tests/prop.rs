//! Property-based tests for the block-run format: codec round-trips,
//! zone-map pruning correctness, and bloom-filter false-positive rate.

use std::sync::Arc;

use proptest::prelude::*;

use masm_blockrun::block::{decode_block, encode_block};
use masm_blockrun::{
    read_meta, write_run, BlockCache, BlockCacheConfig, BlockRunConfig, BlockRunScan, BloomFilter,
    CachePolicy, CachedBlock, CodecChoice, Entry, StoredBlock,
};
use masm_codec::{codec_for, Codec, Delta, Identity, Lz};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn device() -> (SimDevice, SessionHandle) {
    let clock = SimClock::new();
    let dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    (dev, SessionHandle::fresh(clock))
}

fn raw_entries() -> impl Strategy<Value = Vec<(u64, u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u64..5000,
            1u64..1000,
            proptest::collection::vec(any::<u8>(), 0..24),
        ),
        1..250,
    )
}

fn to_sorted_entries(raw: Vec<(u64, u64, Vec<u8>)>) -> Vec<Entry> {
    let mut entries: Vec<Entry> = raw
        .into_iter()
        .map(|(k, ts, v)| Entry::new(k, ts, v))
        .collect();
    entries.sort_by_key(|e| (e.key, e.ts));
    entries
}

fn small_cfg() -> BlockRunConfig {
    BlockRunConfig {
        block_bytes: 128,
        bloom_bits_per_key: 10,
        codec: CodecChoice::Delta,
    }
}

proptest! {
    /// Arbitrary records → block → records is the identity.
    #[test]
    fn block_codec_roundtrip(raw in raw_entries()) {
        let entries = to_sorted_entries(raw);
        let encoded = encode_block(&entries);
        prop_assert_eq!(decode_block(&encoded).unwrap(), entries);
    }

    /// `decode ∘ encode == id` for **every** codec over random entry
    /// batches — the compression stage never changes what a block says.
    #[test]
    fn every_codec_roundtrips_random_entry_batches(raw in raw_entries()) {
        let entries = to_sorted_entries(raw);
        let flat = encode_block(&entries);
        for codec in [&Identity as &dyn Codec, &Delta, &Lz] {
            let enc = codec.encode(&flat).unwrap();
            prop_assert!(
                enc.len() <= codec.max_compressed_len(flat.len()),
                "{}: {} > bound {}",
                codec.name(), enc.len(), codec.max_compressed_len(flat.len())
            );
            let back = codec.decode(&enc, flat.len()).unwrap();
            prop_assert_eq!(&back, &flat, "{} broke the bytes", codec.name());
            prop_assert_eq!(decode_block(&back).unwrap(), entries.clone());
        }
        // The adaptive selection also round-trips under its recorded id.
        let (id, enc) = masm_codec::encode_with(CodecChoice::Adaptive, &flat);
        prop_assert!(enc.len() <= flat.len(), "adaptive never grows a block");
        let back = codec_for(id).unwrap().decode(&enc, flat.len()).unwrap();
        prop_assert_eq!(back, flat);
    }

    /// Whole runs round-trip through the device under every codec
    /// choice, and the zone maps agree on codec ids and raw sizes.
    #[test]
    fn run_roundtrip_under_every_codec(raw in raw_entries(), codec_idx in 0usize..4) {
        let choice = CodecChoice::ALL[codec_idx];
        let entries = to_sorted_entries(raw);
        let (dev, s) = device();
        let cfg = BlockRunConfig { codec: choice, ..small_cfg() };
        let meta = write_run(&s, &dev, 0, &cfg, &entries).unwrap();
        for z in &meta.zones {
            prop_assert!(codec_for(z.codec_id).is_some());
            prop_assert!(z.raw_len >= 4, "raw length recorded");
        }
        let reopened = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
        prop_assert_eq!(&reopened.zones, &meta.zones);
        prop_assert_eq!(reopened.default_codec, choice);
        let got: Vec<Entry> =
            BlockRunScan::new(dev, s, Arc::new(reopened), None, 1, 0, u64::MAX).collect();
        prop_assert_eq!(got, entries);
    }

    /// Arbitrary records → whole run on a device → scan is the
    /// identity, including metadata recovered purely from the footer.
    #[test]
    fn run_roundtrip_through_device(raw in raw_entries()) {
        let entries = to_sorted_entries(raw);
        let (dev, s) = device();
        let meta = write_run(&s, &dev, 0, &small_cfg(), &entries).unwrap();
        let reopened = read_meta(&s, &dev, 0, meta.total_bytes).unwrap();
        prop_assert_eq!(&reopened.zones, &meta.zones);
        let got: Vec<Entry> =
            BlockRunScan::new(dev, s, Arc::new(reopened), None, 1, 0, u64::MAX).collect();
        prop_assert_eq!(got, entries);
    }

    /// Zone-map pruning never skips a block containing an in-range key:
    /// a pruned scan over any `[a, b]` returns exactly the model's
    /// entries, in order.
    #[test]
    fn zone_map_pruning_is_exact(
        raw in raw_entries(),
        a in 0u64..5200,
        b in 0u64..5200,
    ) {
        let (begin, end) = (a.min(b), a.max(b));
        let entries = to_sorted_entries(raw);
        let (dev, s) = device();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries).unwrap());

        // Every entry's key maps into the overlap range computed for it.
        let mut cursor = 0usize;
        for (idx, zone) in meta.zones.iter().enumerate() {
            for e in &entries[cursor..cursor + zone.count as usize] {
                let range = meta.blocks_overlapping(e.key, e.key);
                prop_assert!(
                    range.contains(&idx),
                    "block {} holding key {} pruned by {:?}",
                    idx, e.key, range
                );
            }
            cursor += zone.count as usize;
        }

        let got: Vec<(u64, u64)> = BlockRunScan::new(dev, s, meta, None, 1, begin, end)
            .map(|e| (e.key, e.ts))
            .collect();
        let want: Vec<(u64, u64)> = entries
            .iter()
            .filter(|e| (begin..=end).contains(&e.key))
            .map(|e| (e.key, e.ts))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// A cached scan returns the same result as an uncached one and a
    /// warm re-scan reads zero device bytes.
    #[test]
    fn cache_is_transparent(raw in raw_entries()) {
        let entries = to_sorted_entries(raw);
        let (dev, s) = device();
        let meta = Arc::new(write_run(&s, &dev, 0, &small_cfg(), &entries).unwrap());
        let cache = Arc::new(BlockCache::new(1 << 22));
        let cold: Vec<Entry> = BlockRunScan::new(
            dev.clone(), s.clone(), Arc::clone(&meta), Some(Arc::clone(&cache)), 1, 0, u64::MAX,
        ).collect();
        prop_assert_eq!(&cold, &entries);
        let mut warm_scan = BlockRunScan::new(
            dev, s, meta, Some(cache), 1, 0, u64::MAX,
        );
        let warm: Vec<Entry> = warm_scan.by_ref().collect();
        prop_assert_eq!(&warm, &entries);
        prop_assert_eq!(warm_scan.bytes_read(), 0);
    }

    /// Two-tier cache bookkeeping stays consistent under arbitrary
    /// insert/lookup traffic, for both policies and any victim-tier
    /// budget: the tier-1 byte split accounts every resident byte,
    /// capacities hold, and every lookup lands in exactly one of
    /// hit / tier-2 hit / miss.
    #[test]
    fn cache_invariants_under_random_traffic(
        ops in proptest::collection::vec((0u32..48, any::<bool>()), 1..250),
        lru in any::<bool>(),
        tier2_bytes in 0usize..6000,
    ) {
        let capacity = 2048usize;
        let cache = BlockCache::with_config(BlockCacheConfig {
            shards: 2,
            policy: if lru { CachePolicy::Lru } else { CachePolicy::Slru },
            tier2_bytes,
            ..BlockCacheConfig::new(capacity)
        });
        let mut lookups = 0u64;
        for (idx, is_insert) in ops {
            if is_insert {
                let block: CachedBlock = Arc::new(
                    (0..4).map(|i| Entry::new(idx as u64 + i, 1, vec![idx as u8; 16])).collect(),
                );
                let flat = encode_block(&block);
                cache.insert((1, idx), block, StoredBlock {
                    raw_len: flat.len() as u32,
                    bytes: Arc::new(flat),
                    codec_id: masm_codec::IDENTITY,
                });
            } else {
                lookups += 1;
                if let Some(block) = cache.get((1, idx)) {
                    prop_assert!(block.iter().all(|e| e.value == vec![idx as u8; 16]));
                }
            }
            let s = cache.stats();
            prop_assert_eq!(s.data_bytes, s.probation_bytes + s.protected_bytes);
            prop_assert!(s.data_bytes as usize <= capacity, "tier-1 budget holds");
            prop_assert!(
                s.tier2_bytes as usize <= tier2_bytes,
                "tier-2 budget charges stored size: {} > {}", s.tier2_bytes, tier2_bytes
            );
            prop_assert_eq!(s.hits + s.tier2_hits + s.misses, lookups);
        }
    }

    /// The measured false-positive rate stays within 2× the configured
    /// target (the satellite acceptance bound), with no false negatives.
    #[test]
    fn bloom_fpr_within_twice_target(
        keys in proptest::collection::btree_set(0u64..100_000, 50..400),
        bits_per_key in 8u32..=14,
    ) {
        let filter = BloomFilter::build(keys.iter().copied(), bits_per_key);
        for &k in &keys {
            prop_assert!(filter.contains(k), "false negative on {}", k);
        }
        let probes = 5000u64;
        let fps = (0..probes)
            .map(|i| 200_000 + i * 7)
            .filter(|&k| filter.contains(k))
            .count();
        let rate = fps as f64 / probes as f64;
        let target = BloomFilter::expected_fpr(bits_per_key);
        prop_assert!(
            rate <= target * 2.0,
            "fp rate {:.5} exceeds 2x target {:.5} at {} bits/key",
            rate, target, bits_per_key
        );
    }
}
