//! Concurrent-engine integration tests: snapshot-consistent reads under
//! background flush/compaction, bounded streaming-merge memory,
//! parallel move-segment execution, and worker fault recovery.
//!
//! The stress test is the serial-oracle check the concurrency work is
//! judged by: N ingest lanes and M scanners run against a live worker
//! pool, every scan must observe a consistent snapshot (per-key values
//! never go backwards under monotonically increasing writes), the final
//! state must equal the serial model exactly, the SSD must finish with
//! `random_writes == 0` (design goal 2), and shutdown must join every
//! worker with the queue drained.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use masm_core::config::{IndexGranularity, MasmConfig};
use masm_core::merge::compact_block_runs;
use masm_core::run::{write_run, SortedRun};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::MasmEngine;
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use masm_telemetry::{RecordKind, TraceConfig, Tracer};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn payload(v: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, v);
    p
}

struct Fixture {
    engine: Arc<MasmEngine>,
    session: SessionHandle,
    clock: SimClock,
    ssd: SimDevice,
    disk: SimDevice,
}

fn fixture(cfg: MasmConfig, n_records: u64) -> Fixture {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd.clone(), wal_dev, schema(), cfg).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    if n_records > 0 {
        engine
            .load_table(
                &session,
                (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
    }
    Fixture {
        engine,
        session,
        clock,
        ssd,
        disk,
    }
}

/// N ingest lanes write monotonically increasing values to their own
/// key sets while M scanners read full snapshots and background
/// workers flush and compact. Every scan must be snapshot-consistent
/// (values never decrease across a scanner's successive, later-ts
/// scans), and after joining everything the state must equal the
/// serial model exactly.
///
/// The round also flight-records itself and checks the trace's causal
/// chain. One assert is scheduling-dependent: an ingest lane only
/// records a `backpressure.stall` if the worker has not already
/// drained the backlog by the time the lane reaches the gate, so on a
/// pathologically loaded host a round can finish stall-free. The test
/// wrapper retries such a round a bounded number of times; every other
/// invariant is asserted unconditionally inside the round.
#[test]
fn stress_concurrent_ingest_scan_compact() {
    const ROUNDS: usize = 3;
    let stalled = (0..ROUNDS).any(|_| stress_round() > 0);
    assert!(
        stalled,
        "no ingest ever stalled on backpressure in {ROUNDS} rounds with a \
         backlog bound far below one sealed batch"
    );
}

/// One full stress round; returns the number of `backpressure.stall`
/// spans in its trace.
fn stress_round() -> usize {
    const LANES: u64 = 4;
    const PER_LANE: u32 = 2500;
    const KEYS_PER_LANE: u32 = 50;
    const SCANNERS: usize = 2;
    const SCANS: usize = 20;
    const BASE: u64 = 100_000;

    let mut cfg = MasmConfig::small_for_tests();
    cfg.background_workers = 2;
    // A backlog bound far below one sealed batch: every background
    // enqueue leaves the backlog over the limit, so ingest lanes
    // throttle whenever the worker has not already drained it.
    cfg.worker_backlog_bytes = 16 * 1024;
    let f = fixture(cfg, 100);
    let s = schema();

    // Flight-record the whole run: the causal chain asserts at the end
    // need every ingest→flush link, so the rings are sized generously.
    let tracer = Arc::new(Tracer::new(TraceConfig {
        ring_capacity: 1 << 15,
        ..TraceConfig::default()
    }));
    f.engine.install_tracer(Arc::clone(&tracer));

    let mut ingesters = Vec::new();
    for lane in 0..LANES {
        let engine = Arc::clone(&f.engine);
        let clock = f.clock.clone();
        ingesters.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for j in 0..PER_LANE {
                let key = BASE + lane * 1000 + (j % KEYS_PER_LANE) as u64;
                engine
                    .apply_update(&session, key, UpdateOp::Replace(payload(j)))
                    .unwrap();
            }
        }));
    }

    let mut scanners = Vec::new();
    for _ in 0..SCANNERS {
        let engine = Arc::clone(&f.engine);
        let clock = f.clock.clone();
        let s = s.clone();
        scanners.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            let mut last: HashMap<u64, u32> = HashMap::new();
            for _ in 0..SCANS {
                let scan = engine.begin_scan(session.clone(), BASE, u64::MAX).unwrap();
                for r in scan {
                    let v = s.get_u32(&r.payload, 0);
                    let prev = last.insert(r.key, v).unwrap_or(0);
                    assert!(
                        v >= prev,
                        "key {} went backwards: {} -> {} (non-snapshot read)",
                        r.key,
                        prev,
                        v
                    );
                }
            }
        }));
    }

    for t in ingesters {
        t.join().unwrap();
    }
    for t in scanners {
        t.join().unwrap();
    }
    // Drain and join the pool; all sealed batches are flushed or still
    // query-visible, either way the final scan sees everything.
    f.engine.shutdown();

    // Serial model: last write per key.
    let mut model: HashMap<u64, u32> = HashMap::new();
    for lane in 0..LANES {
        for j in 0..PER_LANE {
            model.insert(BASE + lane * 1000 + (j % KEYS_PER_LANE) as u64, j);
        }
    }
    let got: HashMap<u64, u32> = f
        .engine
        .begin_scan(f.session.clone(), BASE, u64::MAX)
        .unwrap()
        .map(|r| (r.key, s.get_u32(&r.payload, 0)))
        .collect();
    assert_eq!(got, model, "final state diverged from the serial oracle");

    let stats = f.engine.stats();
    assert_eq!(stats.ssd.random_writes, 0, "design goal 2 violated");
    assert!(stats.workers.jobs_completed > 0, "no background job ran");
    assert!(stats.workers.flushes > 0, "no background flush ran");
    assert_eq!(stats.workers.queue_depth, 0, "queue not drained at join");

    // ---- Flight-recorder asserts: causal chain + exact accounting ----
    let records = tracer.take_records();
    let ts = tracer.stats();
    assert!(ts.consistent(), "trace accounting drifted: {ts:?}");
    assert_eq!(ts.retained, 0, "take_records must fully drain");
    assert_eq!(ts.emitted, ts.drained + ts.dropped);

    let count = |kind: RecordKind, name: &str| {
        records
            .iter()
            .filter(|r| r.kind == kind && r.name == name)
            .count()
    };
    assert!(count(RecordKind::Span, "ingest") > 0, "no ingest op spans");
    assert!(
        count(RecordKind::Instant, "batch.seal") > 0,
        "no batch seals traced"
    );
    let stalls = count(RecordKind::Span, "backpressure.stall");
    assert!(count(RecordKind::Span, "job.flush") > 0, "no flush jobs");
    assert!(count(RecordKind::Span, "flush") > 0, "no flush bodies");

    // Every resolved flush flow links an ingest-side start to a
    // worker-side finish that happens no earlier.
    let flow_starts: Vec<_> = records
        .iter()
        .filter(|r| r.kind == RecordKind::FlowStart && r.name == "masm.flush")
        .collect();
    let flow_finishes: Vec<_> = records
        .iter()
        .filter(|r| r.kind == RecordKind::FlowFinish && r.name == "masm.flush")
        .collect();
    assert!(!flow_starts.is_empty(), "no ingest→flush flow starts");
    let mut resolved = 0;
    for s in &flow_starts {
        for f in flow_finishes.iter().filter(|f| f.flow == s.flow) {
            assert!(
                f.t_ns >= s.t_ns,
                "flush flow {} finished before it started",
                s.flow
            );
            resolved += 1;
        }
    }
    assert!(resolved > 0, "no ingest→flush flow resolved end to end");

    // Compactions are workload-dependent here; when one ran, its flow
    // must resolve just like the flush flows.
    if count(RecordKind::Span, "job.compact") > 0 {
        assert!(
            records
                .iter()
                .any(|r| r.kind == RecordKind::FlowFinish && r.name == "masm.compact"),
            "compact job ran without resolving its trigger flow"
        );
    }
    stalls
}

fn run_device() -> (SimDevice, SessionHandle) {
    let clock = SimClock::new();
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    ssd.prime_head_position(0);
    (ssd, SessionHandle::fresh(clock))
}

fn replace(ts: u64, key: u64) -> UpdateRecord {
    UpdateRecord::new(
        ts,
        key,
        UpdateOp::Replace((ts as u32).to_le_bytes().to_vec()),
    )
}

/// Build `n_runs` runs of `per_run` entries each. `stride` 1 packs the
/// runs into disjoint key bands; `stride > 1` interleaves every run
/// over the same band so compaction must merge-decode everything.
fn build_runs(
    cfg: &MasmConfig,
    ssd: &SimDevice,
    session: &SessionHandle,
    n_runs: u64,
    per_run: u64,
    interleave: bool,
) -> Vec<Arc<SortedRun>> {
    let mut runs = Vec::new();
    let mut base = 0u64;
    let mut ts = 1u64;
    for r in 0..n_runs {
        let updates: Vec<UpdateRecord> = (0..per_run)
            .map(|j| {
                let key = if interleave {
                    j * n_runs + r
                } else {
                    r * per_run * 2 + j
                };
                let u = replace(ts, key);
                ts += 1;
                u
            })
            .collect();
        let run = write_run(session, ssd, cfg, r, base, 1, &updates).unwrap();
        base += run.bytes;
        runs.push(Arc::new(run));
    }
    runs
}

fn merge_test_cfg() -> MasmConfig {
    let mut cfg = MasmConfig::small_for_tests();
    // Small blocks so runs span many zone-map entries.
    cfg.index_granularity = IndexGranularity::Bytes(1024);
    cfg
}

/// Fully interleaved inputs force the k-way fold for every entry; the
/// streaming pipe must keep the in-memory working set at "one head per
/// input + one pending + one open block" instead of materializing the
/// merged segment (§3.3).
#[test]
fn streaming_merge_bounds_peak_entries() {
    let cfg = merge_test_cfg();
    let (ssd, session) = run_device();
    let runs = build_runs(&cfg, &ssd, &session, 4, 300, true);
    let (_, _, report) = compact_block_runs(&session, &ssd, &cfg, &schema(), &runs, None).unwrap();
    assert_eq!(report.entries_out, 1200);
    assert!(report.bytes_decoded > 0, "interleaved inputs must merge");
    assert!(
        report.peak_merge_entries > 0,
        "streaming fold must record its working set"
    );
    // 4 stream heads + 1 pending + at most one open block (~1 KiB of
    // ~25-byte entries ≈ 40). Far below the 1200 entries produced.
    assert!(
        report.peak_merge_entries <= 64,
        "peak {} not block-bounded",
        report.peak_merge_entries
    );
}

/// Disjoint inputs compile to pure Move segments; their chunk reads
/// must be issued ahead asynchronously, which the device observes as
/// queue depth > 1. With `device_queue_depth = 1` the same plan must
/// stay strictly serial.
#[test]
fn parallel_move_segments_raise_device_queue_depth() {
    let mut cfg = merge_test_cfg();
    cfg.device_queue_depth = 4;
    let (ssd, session) = run_device();
    let runs = build_runs(&cfg, &ssd, &session, 6, 200, false);
    let (_, _, report) = compact_block_runs(&session, &ssd, &cfg, &schema(), &runs, None).unwrap();
    assert_eq!(report.bytes_decoded, 0, "disjoint inputs must all move");
    assert!(
        ssd.stats().max_queue_depth >= 3,
        "expected overlapped move reads, max depth {}",
        ssd.stats().max_queue_depth
    );

    let mut serial_cfg = cfg.clone();
    serial_cfg.device_queue_depth = 1;
    let (ssd1, session1) = run_device();
    let runs1 = build_runs(&serial_cfg, &ssd1, &session1, 6, 200, false);
    compact_block_runs(&session1, &ssd1, &serial_cfg, &schema(), &runs1, None).unwrap();
    assert_eq!(
        ssd1.stats().max_queue_depth,
        1,
        "queue depth 1 must stay strictly serial"
    );
}

/// A background flush hitting a device write fault retries, is
/// abandoned after the retry budget, and hands its updates back to the
/// in-memory buffer: reads keep serving the data throughout, the
/// workers never wedge, and once the fault clears the next flush
/// materializes the run.
#[test]
fn background_flush_fault_abandons_then_recovers() {
    let mut cfg = MasmConfig::small_for_tests();
    cfg.background_workers = 1;
    let f = fixture(cfg, 0);
    let s = schema();

    f.ssd.inject_write_fault();
    // Enough updates to seal the buffer at least once, even after the
    // MaSM-M page-steal branch doubles its capacity (64 KiB base + up
    // to 16 stolen 4 KiB query pages ≈ 128 KiB; ~120 B per update).
    for j in 0..1500u32 {
        let key = (j % 64) as u64;
        f.engine
            .apply_update(&f.session, key, UpdateOp::Replace(payload(j)))
            .unwrap();
    }
    // Drain the queue: the flush job burns its retries and abandons.
    f.engine.shutdown();

    let stats = f.engine.stats();
    assert!(stats.workers.jobs_failed >= 1, "flush must be abandoned");
    assert_eq!(stats.workers.flushes, 0, "no run can materialize");
    assert_eq!(stats.runs.count, 0);

    // Reads keep serving out of the (restored) buffer.
    for key in 0..64u64 {
        let rec = f.engine.get(&f.session, key).unwrap().expect("key present");
        // Last j in 0..1500 with j % 64 == key.
        let k = key as u32;
        let want = k + 64 * ((1499 - k) / 64);
        assert_eq!(s.get_u32(&rec.payload, 0), want);
    }

    // Fault cleared: the inline flush path materializes the run.
    f.ssd.clear_write_fault();
    f.engine.flush_buffer(&f.session).unwrap();
    let stats = f.engine.stats();
    assert!(stats.runs.count >= 1, "flush after recovery must succeed");
    assert_eq!(stats.ssd.random_writes, 0);
}

/// A migration failing mid-rewrite (heap write fault) must not wedge
/// the engine: the `migrating` claim is released on the error path,
/// scans keep serving the cached updates, and a retry after the fault
/// clears completes the migration.
#[test]
fn migration_fault_does_not_wedge() {
    let cfg = MasmConfig::small_for_tests();
    let f = fixture(cfg, 200);
    let s = schema();

    for j in 0..300u32 {
        let key = (j % 32) as u64 * 2; // existing heap keys
        f.engine
            .apply_update(&f.session, key, UpdateOp::Replace(payload(1000 + j)))
            .unwrap();
    }
    f.engine.flush_buffer(&f.session).unwrap();

    f.disk.inject_write_fault();
    assert!(
        f.engine.migrate(&f.session).is_err(),
        "migration must surface the device fault"
    );

    // Reads keep serving: heap reads are unaffected and the cached
    // updates are still merged in.
    let rec = f.engine.get(&f.session, 0).unwrap().expect("key 0");
    assert_eq!(s.get_u32(&rec.payload, 0), 1288); // last j with j % 32 == 0

    // The claim was released: the retry completes.
    f.disk.clear_write_fault();
    f.engine.migrate(&f.session).unwrap();
    let stats = f.engine.stats();
    assert_eq!(stats.runs.count, 0, "migration must consume all runs");
    let rec = f.engine.get(&f.session, 0).unwrap().expect("key 0");
    assert_eq!(
        s.get_u32(&rec.payload, 0),
        1288,
        "value must survive migration"
    );
}
