//! Property tests for [`MasmEngine::stats`]: under arbitrary
//! interleavings of ingest, point lookups, merged scans, flushes,
//! compactions, and migrations, the unified snapshot stays coherent —
//! histogram counts equal operation counts, cache byte gauges add up,
//! deltas are monotone, and `StatsDelta` round-trips through JSON.

use std::sync::Arc;

use proptest::prelude::*;

use masm_core::config::MasmConfig;
use masm_core::update::{FieldPatch, UpdateOp};
use masm_core::{EngineStats, MasmEngine, StatsDelta};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};
use masm_telemetry::json::parse;

fn fixture(n_records: u64) -> (Arc<MasmEngine>, SessionHandle) {
    let schema = Schema::synthetic_100b();
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal_dev = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(
        heap,
        ssd,
        wal_dev,
        schema.clone(),
        MasmConfig::small_for_tests(),
    )
    .unwrap();
    let session = SessionHandle::fresh(clock);
    engine
        .load_table(
            &session,
            (0..n_records).map(|i| Record::new(i * 2, schema.empty_payload())),
            1.0,
        )
        .unwrap();
    (engine, session)
}

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Step {
    Ingest(u64, u32),
    Delete(u64),
    Get(u64),
    Scan(u64, u64),
    Flush,
    Compact,
    Migrate,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u64..600, any::<u32>()).prop_map(|(k, v)| Step::Ingest(k, v)),
        2 => (0u64..600).prop_map(Step::Delete),
        2 => (0u64..600).prop_map(Step::Get),
        2 => (0u64..600, 0u64..100).prop_map(|(a, w)| Step::Scan(a, a + w)),
        1 => Just(Step::Flush),
        1 => Just(Step::Compact),
        1 => Just(Step::Migrate),
    ]
}

fn assert_coherent(stats: &EngineStats) {
    let violations = stats.invariant_violations();
    assert!(violations.is_empty(), "incoherent snapshot: {violations:?}");
    // The paper's design goal 2: run bodies write sequentially. When
    // compaction/migration recycles SSD space, the head may seek once
    // per new run, so the bound is one random write per run created
    // (flushes + merge outputs), exactly as the engine's own tests
    // state it.
    let runs_created = stats.ops.flush.count + stats.merge.inputs as u64;
    assert!(
        stats.ssd.random_writes <= runs_created,
        "random writes {} exceed runs created {runs_created}",
        stats.ssd.random_writes
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Execute a random interleaving and check every stats invariant.
    #[test]
    fn stats_are_coherent_under_interleaving(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        mid_point in 0usize..60,
    ) {
        let (engine, session) = fixture(300);
        let baseline = engine.stats();
        prop_assert_eq!(baseline.ops.ingest.count, 0);

        let mut ingests = 0u64;
        let mut gets = 0u64;
        let mut scanned = 0u64;
        let mut migrations = 0u64;
        let mut mid: Option<EngineStats> = None;

        for (i, step) in steps.iter().enumerate() {
            match *step {
                Step::Ingest(key, v) => {
                    engine
                        .apply_update(
                            &session,
                            key,
                            UpdateOp::Modify(vec![FieldPatch {
                                field: 0,
                                value: v.to_le_bytes().to_vec(),
                            }]),
                        )
                        .unwrap();
                    ingests += 1;
                }
                Step::Delete(key) => {
                    engine.apply_update(&session, key, UpdateOp::Delete).unwrap();
                    ingests += 1;
                }
                Step::Get(key) => {
                    engine.get(&session, key).unwrap();
                    gets += 1;
                }
                Step::Scan(a, b) => {
                    let scan = engine.begin_scan(session.clone(), a, b).unwrap();
                    scanned += scan.count() as u64;
                }
                Step::Flush => engine.flush_buffer(&session).unwrap(),
                Step::Compact => {
                    engine.compact_runs(&session).unwrap();
                }
                Step::Migrate => {
                    let report = engine.migrate(&session).unwrap();
                    if report.runs_migrated > 0 {
                        migrations += 1;
                    }
                }
            }
            if i == mid_point.min(steps.len() - 1) {
                mid = Some(engine.stats());
            }
        }

        let end = engine.stats();
        assert_coherent(&end);

        // Histogram counts equal operation counts.
        prop_assert_eq!(end.ops.ingest.count, ingests);
        prop_assert_eq!(end.ingested_updates, ingests);
        prop_assert_eq!(end.ops.get.count, gets);
        prop_assert_eq!(end.ops.scan_next.count, scanned);
        prop_assert_eq!(end.ops.migrate.count, migrations);
        // Every flush materialized a run; runs are only retired by
        // migration, never created any other way.
        prop_assert!(end.ops.flush.count >= end.runs.count);

        // Deltas against both baselines are monotone (u64 subtraction
        // would panic in debug on any regression) and JSON-stable.
        let mid = mid.unwrap_or(baseline);
        assert_coherent(&mid);
        for earlier in [&baseline, &mid] {
            let d = end.delta(earlier);
            prop_assert_eq!(
                d.ingested_updates,
                end.ingested_updates - earlier.ingested_updates
            );
            let back = StatsDelta::from_json(&parse(&d.to_json()).unwrap()).unwrap();
            prop_assert_eq!(d, back);
        }
        // The full snapshot serializes to parseable JSON with the
        // headline invariant field lifted to the top level.
        let json = parse(&end.to_json()).unwrap();
        prop_assert_eq!(json.get_u64("random_writes"), Some(end.ssd.random_writes));
    }
}
