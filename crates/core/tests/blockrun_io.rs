//! Storage-level acceptance tests of the block-run subsystem as used by
//! the engine: the paper's `random_writes == 0` invariant, loud
//! checksum failures on corruption, zero-SSD-read warm-cache scans, and
//! the codec stage's on-disk savings on the synthetic update workload.

use std::sync::Arc;

use masm_core::config::{CodecChoice, MasmConfig};
use masm_core::run::{lookup_in_run, write_run, RunScan};
use masm_core::update::{FieldPatch, UpdateOp, UpdateRecord};
use masm_core::{MasmEngine, MasmError};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn payload(v: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, v);
    p
}

struct Fixture {
    engine: Arc<MasmEngine>,
    session: SessionHandle,
}

fn fixture(n_records: u64) -> Fixture {
    fixture_with(n_records, MasmConfig::small_for_tests())
}

fn fixture_with(n_records: u64, cfg: MasmConfig) -> Fixture {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd, wal, schema(), cfg).unwrap();
    let session = SessionHandle::fresh(clock);
    engine
        .load_table(
            &session,
            (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();
    Fixture { engine, session }
}

/// §4.1-style synthetic update stream over a 100-byte-record table
/// (uniform keys; insert/delete/modify mix), sorted for run
/// materialization. Deterministic (SplitMix64), no dependency on the
/// workloads crate (which sits above this one).
fn synthetic_updates(n: u64) -> Vec<UpdateRecord> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rnd = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n_slots = 50_000u64;
    let mut updates: Vec<UpdateRecord> = (1..=n)
        .map(|ts| {
            let slot = rnd() % n_slots;
            match rnd() % 3 {
                0 => UpdateRecord::new(ts, slot * 2 + 1, UpdateOp::Insert(payload(rnd() as u32))),
                1 => UpdateRecord::new(ts, slot * 2, UpdateOp::Delete),
                _ => UpdateRecord::new(
                    ts,
                    slot * 2,
                    UpdateOp::Modify(vec![FieldPatch {
                        field: 0,
                        value: (rnd() as u32).to_le_bytes().to_vec(),
                    }]),
                ),
            }
        })
        .collect();
    updates.sort_by_key(|u| (u.key, u.ts));
    updates
}

/// Design goal 2, strictly: writing block runs and migrating them back
/// into the main data issues **zero** random writes on the update-cache
/// SSD. (The engine primes the device head at its region base, so even
/// the first run write counts as a sequential continuation.)
#[test]
fn block_run_writes_and_migration_issue_zero_random_ssd_writes() {
    let f = fixture(500);
    f.engine.ssd().reset_stats();
    for i in 0..4000u64 {
        f.engine
            .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(i as u32)))
            .unwrap();
    }
    assert!(f.engine.run_count() > 1, "several runs materialized");
    let report = f.engine.migrate(&f.session).unwrap();
    assert!(report.runs_migrated > 1);

    let stats = f.engine.ssd().stats();
    assert!(stats.write_ops > 10, "{stats:?}");
    assert_eq!(stats.random_writes, 0, "{stats:?}");
}

/// A corrupted block fails the CRC check and surfaces as a checksum
/// error — never as silently wrong update records.
#[test]
fn corrupted_block_read_fails_with_checksum_error() {
    let clock = SimClock::new();
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let session = SessionHandle::fresh(clock);
    let cfg = MasmConfig::small_for_tests();
    let updates: Vec<UpdateRecord> = (0..2000u64)
        .map(|i| UpdateRecord::new(i + 1, i * 2, UpdateOp::Replace(payload(i as u32))))
        .collect();
    let run = write_run(&session, &ssd, &cfg, 1, 0, 1, &updates).unwrap();
    assert!(run.meta.zones.len() > 2, "{} blocks", run.meta.zones.len());

    // Flip one byte inside the second data block.
    let zone = run.meta.zones[1];
    let (orig, _) = ssd.read_at(0, zone.offset + 7, 1).unwrap();
    ssd.write_at(0, zone.offset + 7, &[orig[0] ^ 0x40]).unwrap();

    // Point lookup through the corrupted block: checksum error.
    let probe = zone.min_key;
    let err = lookup_in_run(&session, &ssd, &run, None, probe).unwrap_err();
    assert!(
        matches!(err, MasmError::BlockRun(_)),
        "expected checksum failure, got {err}"
    );
    assert!(err.to_string().contains("checksum"), "{err}");

    // A streaming scan refuses to continue past the corruption (it
    // panics rather than yielding garbage).
    let run = Arc::new(run);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        RunScan::new(ssd.clone(), session.clone(), Arc::clone(&run), 0, u64::MAX).count()
    }));
    assert!(
        result.is_err(),
        "scan across corrupted block must not succeed"
    );
}

/// Acceptance: with `CodecChoice::Lz` the on-disk bytes of a run built
/// from the synthetic update workload shrink by at least 20% versus
/// identity — and both runs scan back identically.
#[test]
fn lz_codec_shrinks_synthetic_runs_at_least_20_percent() {
    let updates = synthetic_updates(20_000);
    let build = |codec: CodecChoice| {
        let clock = SimClock::new();
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let mut cfg = MasmConfig::small_for_tests();
        cfg.codec = codec;
        let run = write_run(&session, &ssd, &cfg, 1, 0, 1, &updates).unwrap();
        let got: Vec<UpdateRecord> =
            RunScan::new(ssd, session, Arc::new(run.clone()), 0, u64::MAX).collect();
        assert_eq!(got, updates, "{codec:?} run must scan back identically");
        run
    };
    let identity = build(CodecChoice::Identity);
    let lz = build(CodecChoice::Lz);

    assert_eq!(identity.count, lz.count);
    assert!(
        lz.bytes * 10 <= identity.bytes * 8,
        "lz run {} bytes !≤ 80% of identity {} bytes",
        lz.bytes,
        identity.bytes
    );
    let comp = lz.meta.compression();
    assert!(
        comp.ratio() <= 0.8,
        "data-block compression ratio {:.3} above 0.8",
        comp.ratio()
    );
    assert_eq!(comp.blocks_lz, comp.blocks, "every block lz-coded");
    // Same raw content, same zone count: the block budget applies to
    // raw bytes, so metadata cost is codec-independent.
    assert_eq!(identity.meta.zones.len(), lz.meta.zones.len());
    assert_eq!(identity.memory_bytes(), lz.memory_bytes());
}

/// Disjoint-run compaction under `CodecChoice::Adaptive` (mixed
/// per-block codec ids) still moves every block verbatim: zero bytes
/// decoded, zero random SSD writes — the acceptance pairing of the
/// codec subsystem with PR 2's zero-decode pipeline, at engine level.
#[test]
fn adaptive_codec_disjoint_compaction_stays_zero_decode_and_sequential() {
    let mut cfg = MasmConfig::small_for_tests();
    cfg.codec = CodecChoice::Adaptive;
    let f = fixture_with(100, cfg);
    for band in 0..4u64 {
        for i in 0..400u64 {
            f.engine
                .apply_update(
                    &f.session,
                    band * 100_000 + i * 2 + 1,
                    UpdateOp::Insert(payload((band * 1000 + i) as u32)),
                )
                .unwrap();
        }
        f.engine.flush_buffer(&f.session).unwrap();
    }
    assert!(f.engine.run_count() >= 4);
    let comp_before = f.engine.compression_stats();
    assert!(
        comp_before.stored_bytes < comp_before.raw_bytes,
        "adaptive saves on compressible inserts: {comp_before:?}"
    );
    let expect: Vec<u64> = f
        .engine
        .begin_scan(f.session.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();

    let before = f.engine.ssd().stats();
    let report = f.engine.compact_runs(&f.session).unwrap();
    let delta = f.engine.ssd().stats().delta(&before);
    assert_eq!(report.bytes_decoded, 0, "zero-decode: {report:?}");
    assert_eq!(report.blocks_merged, 0);
    assert!(report.blocks_moved > 0);
    assert_eq!(delta.random_writes, 0, "{delta:?}");
    assert_eq!(f.engine.run_count(), 1);
    let got: Vec<u64> = f
        .engine
        .begin_scan(f.session.clone(), 0, u64::MAX)
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert_eq!(expect, got, "results unchanged after mixed-codec move");
}

/// Reading the same key ranges twice: the second pass is served entirely
/// from the block cache — zero SSD reads — and the counters show it.
#[test]
fn warm_cache_scans_issue_zero_ssd_reads() {
    let f = fixture(300);
    for i in 0..3000u64 {
        f.engine
            .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
            .unwrap();
    }
    assert!(f.engine.run_count() > 0);

    let scan_all = || {
        f.engine
            .begin_scan(f.session.clone(), 0, u64::MAX)
            .unwrap()
            .count()
    };
    let cold_n = scan_all();
    let cold = f.engine.ssd().stats();
    assert!(cold.read_ops > 0, "cold scan read the SSD");

    let warm_n = scan_all();
    let warm = f.engine.ssd().stats();
    assert_eq!(cold_n, warm_n);
    assert_eq!(
        warm.read_ops, cold.read_ops,
        "warm scan issued SSD reads: {warm:?}"
    );

    let cache = f.engine.cache_stats();
    assert!(cache.hits > 0, "{cache:?}");
    assert!(cache.hit_rate() > 0.0);
}
