//! Storage-level acceptance tests of the block-run subsystem as used by
//! the engine: the paper's `random_writes == 0` invariant, loud
//! checksum failures on corruption, and zero-SSD-read warm-cache scans.

use std::sync::Arc;

use masm_core::config::MasmConfig;
use masm_core::run::{lookup_in_run, write_run, RunScan};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_core::{MasmEngine, MasmError};
use masm_pagestore::{HeapConfig, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn payload(v: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, v);
    p
}

struct Fixture {
    engine: Arc<MasmEngine>,
    session: SessionHandle,
}

fn fixture(n_records: u64) -> Fixture {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd, wal, schema(), MasmConfig::small_for_tests()).unwrap();
    let session = SessionHandle::fresh(clock);
    engine
        .load_table(
            &session,
            (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();
    Fixture { engine, session }
}

/// Design goal 2, strictly: writing block runs and migrating them back
/// into the main data issues **zero** random writes on the update-cache
/// SSD. (The engine primes the device head at its region base, so even
/// the first run write counts as a sequential continuation.)
#[test]
fn block_run_writes_and_migration_issue_zero_random_ssd_writes() {
    let f = fixture(500);
    f.engine.ssd().reset_stats();
    for i in 0..4000u64 {
        f.engine
            .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(i as u32)))
            .unwrap();
    }
    assert!(f.engine.run_count() > 1, "several runs materialized");
    let report = f.engine.migrate(&f.session).unwrap();
    assert!(report.runs_migrated > 1);

    let stats = f.engine.ssd().stats();
    assert!(stats.write_ops > 10, "{stats:?}");
    assert_eq!(stats.random_writes, 0, "{stats:?}");
}

/// A corrupted block fails the CRC check and surfaces as a checksum
/// error — never as silently wrong update records.
#[test]
fn corrupted_block_read_fails_with_checksum_error() {
    let clock = SimClock::new();
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let session = SessionHandle::fresh(clock);
    let cfg = MasmConfig::small_for_tests();
    let updates: Vec<UpdateRecord> = (0..2000u64)
        .map(|i| UpdateRecord::new(i + 1, i * 2, UpdateOp::Replace(payload(i as u32))))
        .collect();
    let run = write_run(&session, &ssd, &cfg, 1, 0, 1, &updates).unwrap();
    assert!(run.meta.zones.len() > 2, "{} blocks", run.meta.zones.len());

    // Flip one byte inside the second data block.
    let zone = run.meta.zones[1];
    let (orig, _) = ssd.read_at(0, zone.offset + 7, 1).unwrap();
    ssd.write_at(0, zone.offset + 7, &[orig[0] ^ 0x40]).unwrap();

    // Point lookup through the corrupted block: checksum error.
    let probe = zone.min_key;
    let err = lookup_in_run(&session, &ssd, &run, None, probe).unwrap_err();
    assert!(
        matches!(err, MasmError::BlockRun(_)),
        "expected checksum failure, got {err}"
    );
    assert!(err.to_string().contains("checksum"), "{err}");

    // A streaming scan refuses to continue past the corruption (it
    // panics rather than yielding garbage).
    let run = Arc::new(run);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        RunScan::new(ssd.clone(), session.clone(), Arc::clone(&run), 0, u64::MAX).count()
    }));
    assert!(
        result.is_err(),
        "scan across corrupted block must not succeed"
    );
}

/// Reading the same key ranges twice: the second pass is served entirely
/// from the block cache — zero SSD reads — and the counters show it.
#[test]
fn warm_cache_scans_issue_zero_ssd_reads() {
    let f = fixture(300);
    for i in 0..3000u64 {
        f.engine
            .apply_update(&f.session, i * 2 + 1, UpdateOp::Insert(payload(1)))
            .unwrap();
    }
    assert!(f.engine.run_count() > 0);

    let scan_all = || {
        f.engine
            .begin_scan(f.session.clone(), 0, u64::MAX)
            .unwrap()
            .count()
    };
    let cold_n = scan_all();
    let cold = f.engine.ssd().stats();
    assert!(cold.read_ops > 0, "cold scan read the SSD");

    let warm_n = scan_all();
    let warm = f.engine.ssd().stats();
    assert_eq!(cold_n, warm_n);
    assert_eq!(
        warm.read_ops, cold.read_ops,
        "warm scan issued SSD reads: {warm:?}"
    );

    let cache = f.engine.cache_stats();
    assert!(cache.hits > 0, "{cache:?}");
    assert!(cache.hit_rate() > 0.0);
}
