//! Crash-under-load torture tests: snapshot the devices of a live,
//! concurrently-ingesting engine at arbitrary moments ("pull the
//! plug"), recover from the snapshots, and verify the recovery
//! contract:
//!
//! * every *acknowledged* update survives — an `apply_update`/`put`
//!   that returned before the crash is in the recovered state (the
//!   WAL's stable-tail group commit guarantees its record is inside
//!   the contiguous valid log prefix),
//! * recovery never panics and never loses acked data for *any* crash
//!   point, including cuts through the middle of a WAL record (torn
//!   tails are truncated, not fatal),
//! * the recovered engine keeps design goal 2: `random_writes == 0`
//!   on the recovered devices, through migration redo and fresh
//!   post-recovery ingest (write heads are re-primed at the recovered
//!   append points),
//! * recovery is idempotent: recovering, crashing immediately, and
//!   recovering again yields the same state.
//!
//! Snapshot ordering is the load-bearing subtlety: each shard's WAL is
//! snapshotted *before* its SSD, and the heap disk last. The engine
//! always makes payload bytes durable before appending the WAL record
//! that names them (run bytes before `RunCreated`, heap pages before
//! `MapSplice`), so a WAL-first snapshot can name only payloads the
//! later device snapshots contain — exactly the guarantee a real
//! single-cache-flush crash gives.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use proptest::prelude::*;

use masm_core::config::MasmConfig;
use masm_core::update::UpdateOp;
use masm_core::{MasmEngine, ShardedEngine, ShardingConfig, SplitPolicy};
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn payload(v: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, v);
    p
}

const BASE: u64 = 100_000;

/// One ingest lane's acknowledgement log: `(key, value)` pushed only
/// after the corresponding put returned (i.e. after its WAL record
/// became durable).
type AckLog = Arc<Mutex<Vec<(Key, u32)>>>;

/// One crash point: consistent device snapshots plus, per lane, how
/// many acks were durable before the snapshot began.
struct CrashPoint {
    acked: Vec<usize>,
    disk: SimDevice,
    ssds: Vec<SimDevice>,
    wals: Vec<SimDevice>,
}

/// Snapshot a set of shard devices mid-flight: per shard WAL first,
/// then SSD; heap disk last (see module docs for why this order).
fn crash_snapshot(disk: &SimDevice, ssds: &[SimDevice], wals: &[SimDevice]) -> CrashPoint {
    let clock = SimClock::new();
    let mut snap_ssds = Vec::with_capacity(ssds.len());
    let mut snap_wals = Vec::with_capacity(wals.len());
    for (ssd, wal) in ssds.iter().zip(wals) {
        snap_wals.push(wal.snapshot(clock.clone()).unwrap());
        snap_ssds.push(ssd.snapshot(clock.clone()).unwrap());
    }
    CrashPoint {
        acked: Vec::new(),
        disk: disk.snapshot(clock).unwrap(),
        ssds: snap_ssds,
        wals: snap_wals,
    }
}

/// Per-key largest acked value among each lane's first `acked[lane]`
/// acknowledgements.
fn acked_floor(acks: &[AckLog], cut: &[usize]) -> HashMap<Key, u32> {
    let mut floor: HashMap<Key, u32> = HashMap::new();
    for (lane, list) in acks.iter().enumerate() {
        let list = list.lock().unwrap();
        for &(key, j) in &list[..cut[lane]] {
            let e = floor.entry(key).or_insert(j);
            *e = (*e).max(j);
        }
    }
    floor
}

/// Three ingest lanes hammer a 3-shard engine with live background
/// workers; the main thread pulls the plug at three load levels. Every
/// crash point must recover with zero lost acked updates, zero random
/// SSD writes, and a still-healthy engine afterwards.
#[test]
fn sharded_crash_under_load_loses_no_acked_update() {
    const LANES: usize = 3;
    const PER_LANE: u32 = 1200;
    const KEYS_PER_LANE: u64 = 40;

    let mut cfg = MasmConfig::small_for_tests();
    cfg.background_workers = 2;
    cfg.sharding = ShardingConfig {
        shards: 3,
        split_policy: SplitPolicy::Explicit(vec![101_000, 102_000]),
        max_concurrent_migrations: 1,
    };

    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let ssds: Vec<SimDevice> = (0..LANES)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let wals: Vec<SimDevice> = (0..LANES)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let engine =
        ShardedEngine::new(heap, ssds.clone(), wals.clone(), schema(), cfg.clone()).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    engine
        .load_table(
            &session,
            (0..100u64).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();

    let acks: Vec<AckLog> = (0..LANES)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let mut lanes = Vec::new();
    for (lane, acked) in acks.iter().enumerate() {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let acked = Arc::clone(acked);
        lanes.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for j in 0..PER_LANE {
                // Lane k writes into shard k's key range.
                let key = BASE + lane as u64 * 1000 + j as u64 % KEYS_PER_LANE;
                engine
                    .put(&session, key, UpdateOp::Replace(payload(j)))
                    .unwrap();
                // The put returned: its WAL record is durable. Recording
                // the ack *after* the return means any crash snapshot
                // taken after this push must contain the update.
                acked.lock().unwrap().push((key, j));
            }
        }));
    }

    // Pull the plug at three points while the lanes are running.
    let mut crashes: Vec<CrashPoint> = Vec::new();
    for threshold in [500usize, 1800, 3300] {
        loop {
            let total: usize = acks.iter().map(|a| a.lock().unwrap().len()).sum();
            if total >= threshold {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        let cut: Vec<usize> = acks.iter().map(|a| a.lock().unwrap().len()).collect();
        let mut point = crash_snapshot(&disk, &ssds, &wals);
        point.acked = cut;
        crashes.push(point);
    }
    for l in lanes {
        l.join().unwrap();
    }
    engine.shutdown();

    for (c, point) in crashes.into_iter().enumerate() {
        let heap = Arc::new(TableHeap::new(point.disk.clone(), HeapConfig::default()));
        let (recovered, report) = ShardedEngine::recover(
            heap,
            point.ssds.clone(),
            point.wals.clone(),
            schema(),
            cfg.clone(),
        )
        .unwrap_or_else(|e| panic!("crash point {c} failed to recover: {e}"));

        // Every update acked before the snapshot is in the recovered
        // state (possibly superseded by a newer durable-but-unacked
        // value for the same key — never by an older one).
        let floor = acked_floor(&acks, &point.acked);
        let s = schema();
        let got: HashMap<Key, u32> = recovered
            .scan(BASE, u64::MAX)
            .unwrap()
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        for (key, min_j) in &floor {
            let j = got
                .get(key)
                .unwrap_or_else(|| panic!("crash {c}: acked key {key} lost (acked value {min_j})"));
            assert!(
                j >= min_j,
                "crash {c}: key {key} went backwards: acked {min_j}, recovered {j}"
            );
        }
        // Whatever is there must be a value some lane actually wrote.
        for (key, j) in &got {
            let offset = (key - BASE) % 1000;
            assert_eq!(
                u64::from(*j) % KEYS_PER_LANE,
                offset % KEYS_PER_LANE,
                "crash {c}: key {key} holds a value never written to it"
            );
            assert!(*j < PER_LANE);
        }

        assert_eq!(report.per_shard.len(), LANES);

        // The recovered engine is live: more ingest, a migration-level
        // flush, a consistent scan — all with sequential-only SSD I/O
        // on the snapshot devices (heads re-primed by recovery).
        let session = SessionHandle::fresh(point.disk.clock().clone());
        for lane in 0..LANES as u64 {
            for j in 0..50u32 {
                let key = BASE + lane * 1000 + u64::from(j) % KEYS_PER_LANE;
                recovered
                    .put(&session, key, UpdateOp::Replace(payload(PER_LANE + j)))
                    .unwrap();
            }
        }
        recovered.flush_all(&session).unwrap();
        let after: Vec<Key> = recovered
            .scan(BASE, u64::MAX)
            .unwrap()
            .map(|r| r.key)
            .collect();
        assert!(
            after.windows(2).all(|w| w[0] < w[1]),
            "crash {c}: scan order"
        );
        let stats = recovered.stats();
        for (i, shard) in stats.per_shard.iter().enumerate() {
            assert_eq!(
                shard.ssd.random_writes, 0,
                "crash {c}: random writes in recovered shard {i}"
            );
        }
        recovered.shutdown();
    }
}

/// The unsharded variant: two lanes on one engine with background
/// workers, plug pulled twice, recovered via [`MasmEngine::recover`].
#[test]
fn unsharded_crash_under_load_loses_no_acked_update() {
    const LANES: usize = 2;
    const PER_LANE: u32 = 1000;
    const KEYS_PER_LANE: u64 = 30;

    let mut cfg = MasmConfig::small_for_tests();
    cfg.background_workers = 2;

    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd.clone(), wal.clone(), schema(), cfg.clone()).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    engine
        .load_table(
            &session,
            (0..100u64).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();

    let acks: Vec<AckLog> = (0..LANES)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let mut lanes = Vec::new();
    for (lane, acked) in acks.iter().enumerate() {
        let engine = Arc::clone(&engine);
        let clock = clock.clone();
        let acked = Arc::clone(acked);
        lanes.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for j in 0..PER_LANE {
                let key = BASE + lane as u64 * 1000 + u64::from(j) % KEYS_PER_LANE;
                engine
                    .apply_update(&session, key, UpdateOp::Replace(payload(j)))
                    .unwrap();
                acked.lock().unwrap().push((key, j));
            }
        }));
    }

    let mut crashes: Vec<CrashPoint> = Vec::new();
    for threshold in [400usize, 1500] {
        loop {
            let total: usize = acks.iter().map(|a| a.lock().unwrap().len()).sum();
            if total >= threshold {
                break;
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
        let cut: Vec<usize> = acks.iter().map(|a| a.lock().unwrap().len()).collect();
        let mut point = crash_snapshot(
            &disk,
            std::slice::from_ref(&ssd),
            std::slice::from_ref(&wal),
        );
        point.acked = cut;
        crashes.push(point);
    }
    for l in lanes {
        l.join().unwrap();
    }
    engine.shutdown();

    for (c, point) in crashes.into_iter().enumerate() {
        let heap = Arc::new(TableHeap::new(point.disk.clone(), HeapConfig::default()));
        let (recovered, report) = MasmEngine::recover(
            heap,
            point.ssds[0].clone(),
            point.wals[0].clone(),
            schema(),
            cfg.clone(),
        )
        .unwrap_or_else(|e| panic!("crash point {c} failed to recover: {e}"));

        let floor = acked_floor(&acks, &point.acked);
        let s = schema();
        let session = SessionHandle::fresh(point.disk.clock().clone());
        let got: HashMap<Key, u32> = recovered
            .begin_scan(session.clone(), BASE, u64::MAX)
            .unwrap()
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        for (key, min_j) in &floor {
            let j = got
                .get(key)
                .unwrap_or_else(|| panic!("crash {c}: acked key {key} lost"));
            assert!(j >= min_j, "crash {c}: key {key}: acked {min_j}, got {j}");
        }
        assert!(
            report.wal_records_replayed > 0,
            "crash {c}: nothing replayed?"
        );

        // Post-recovery ingest stays sequential on the snapshot devices.
        for j in 0..80u32 {
            let key = BASE + u64::from(j) % KEYS_PER_LANE;
            recovered
                .apply_update(&session, key, UpdateOp::Replace(payload(PER_LANE + j)))
                .unwrap();
        }
        recovered.flush_buffer(&session).unwrap();
        let stats = recovered.stats();
        assert_eq!(
            stats.ssd.random_writes, 0,
            "crash {c}: random writes after recovery"
        );
        recovered.shutdown();
    }
}

/// Golden pre-crash state for the WAL-prefix sweep: a serial workload
/// with a buffer flush and a migration in the middle, frozen devices,
/// and the serial oracle after every update prefix.
struct Golden {
    disk: SimDevice,
    ssd: SimDevice,
    wal: SimDevice,
    /// `models[m]` = per-key state after the first `m` updates.
    models: Vec<HashMap<Key, u32>>,
    cfg: MasmConfig,
}

const SWEEP_UPDATES: u32 = 48;
const SWEEP_KEYS: u64 = 10;

fn golden() -> &'static Golden {
    static GOLDEN: OnceLock<Golden> = OnceLock::new();
    GOLDEN.get_or_init(|| {
        let cfg = MasmConfig::small_for_tests();
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd.clone(), wal.clone(), schema(), cfg.clone()).unwrap();
        let session = SessionHandle::fresh(clock);
        engine
            .load_table(
                &session,
                (0..50u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();

        let mut models = vec![HashMap::new()];
        for j in 0..SWEEP_UPDATES {
            let key = BASE + u64::from(j) % SWEEP_KEYS;
            engine
                .apply_update(&session, key, UpdateOp::Replace(payload(j)))
                .unwrap();
            let mut m = models.last().unwrap().clone();
            m.insert(key, j);
            models.push(m);
            // Force run creation and an in-place migration mid-stream so
            // prefix cuts land inside every record type, not just
            // updates.
            if j == 19 {
                engine.flush_buffer(&session).unwrap();
            }
            if j == 33 {
                engine.migrate(&session).unwrap();
            }
        }
        Golden {
            disk,
            ssd,
            wal,
            models,
            cfg,
        }
    })
}

proptest! {
    /// Crash at *any* WAL byte offset — including mid-record torn
    /// tails — and recovery must (a) never panic or error, (b) produce
    /// exactly the state after some prefix of the serial update
    /// stream, and (c) be idempotent under an immediate second crash
    /// and recovery.
    #[test]
    fn recovery_at_every_wal_prefix_is_a_serial_prefix(frac in 0u64..=10_000) {
        let g = golden();
        let cut = g.wal.len() * frac / 10_000;
        let clock = SimClock::new();
        let disk = g.disk.snapshot(clock.clone()).unwrap();
        let ssd = g.ssd.snapshot(clock.clone()).unwrap();
        let wal = g.wal.snapshot_prefix(clock.clone(), cut).unwrap();

        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        let (engine, report) =
            MasmEngine::recover(heap, ssd.clone(), wal.clone(), schema(), g.cfg.clone())
                .expect("every WAL prefix must recover");
        prop_assert!(report.wal_torn_bytes <= cut);

        let s = schema();
        let session = SessionHandle::fresh(clock.clone());
        let got: HashMap<Key, u32> = engine
            .begin_scan(session.clone(), BASE, u64::MAX)
            .unwrap()
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        prop_assert!(
            g.models.contains(&got),
            "cut {} recovered a state that is no serial prefix: {:?}",
            cut,
            got
        );

        // Crash again immediately (no new updates): recovering the
        // same devices a second time reproduces the same state.
        drop(engine);
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let (engine2, _) = MasmEngine::recover(heap, ssd, wal, schema(), g.cfg.clone())
            .expect("double recovery must succeed");
        let again: HashMap<Key, u32> = engine2
            .begin_scan(session, BASE, u64::MAX)
            .unwrap()
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        prop_assert_eq!(got, again, "double recovery diverged at cut {}", cut);
    }
}

/// A 2-shard deployment's manifests pin shard identity and config: a
/// swapped device set, a missing manifest, and a layout-shaping config
/// change must all be rejected before any run bytes are trusted.
#[test]
fn manifest_validation_rejects_mismatched_deployments() {
    let mut cfg = MasmConfig::small_for_tests();
    cfg.sharding = ShardingConfig {
        shards: 2,
        split_policy: SplitPolicy::Explicit(vec![1000]),
        max_concurrent_migrations: 1,
    };
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let ssds: Vec<SimDevice> = (0..2)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let wals: Vec<SimDevice> = (0..2)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let engine =
        ShardedEngine::new(heap, ssds.clone(), wals.clone(), schema(), cfg.clone()).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    engine.put(&session, 1, UpdateOp::Delete).unwrap();
    engine.put(&session, 2000, UpdateOp::Delete).unwrap();
    engine.shutdown();
    drop(engine);

    let recover = |ssds: Vec<SimDevice>, wals: Vec<SimDevice>, cfg: MasmConfig| {
        let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
        ShardedEngine::recover(heap, ssds, wals, schema(), cfg)
    };

    // Swapped shard devices: each manifest names its true shard id.
    let err = recover(
        vec![ssds[1].clone(), ssds[0].clone()],
        vec![wals[1].clone(), wals[0].clone()],
        cfg.clone(),
    )
    .expect_err("swapped devices must be rejected");
    assert!(err.to_string().contains("manifest"), "{err}");

    // A layout-shaping config change invalidates the fingerprint.
    let mut changed = cfg.clone();
    changed.bloom_bits_per_key += 1;
    let err = recover(ssds.clone(), wals.clone(), changed)
        .expect_err("changed layout config must be rejected");
    assert!(err.to_string().contains("fingerprint"), "{err}");

    // The untouched set still recovers.
    let (recovered, report) = recover(ssds.clone(), wals.clone(), cfg).unwrap();
    assert_eq!(report.per_shard.len(), 2);
    assert_eq!(report.updates_recovered(), 2);
    recovered.shutdown();
}

/// A WAL without a manifest (a standalone engine's log) cannot be
/// recovered as a sharded deployment.
#[test]
fn sharded_recovery_requires_a_manifest() {
    let cfg = MasmConfig::small_for_tests();
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk.clone(), HeapConfig::default()));
    let engine = MasmEngine::new(heap, ssd.clone(), wal.clone(), schema(), cfg.clone()).unwrap();
    let session = SessionHandle::fresh(clock);
    engine.apply_update(&session, 7, UpdateOp::Delete).unwrap();
    drop(engine);

    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let err = ShardedEngine::recover(heap, vec![ssd], vec![wal], schema(), cfg)
        .expect_err("manifest-less WAL must be rejected");
    assert!(err.to_string().contains("manifest"), "{err}");
}
