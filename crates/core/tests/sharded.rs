//! Sharded-engine integration tests: router totality under arbitrary
//! splits, sharded-vs-single-engine oracle equality at arbitrary
//! snapshot cuts, and a concurrent multi-lane stress against a live
//! shared worker pool.
//!
//! The oracle test is the correctness contract of the sharding layer:
//! routing the same update stream through a [`ShardedEngine`] must be
//! observationally identical to a single [`MasmEngine`] — same commit
//! timestamps, same records at every snapshot cut, in the same global
//! key order — while every shard individually preserves design goal 2
//! (`random_writes == 0`).

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;

use masm_core::config::MasmConfig;
use masm_core::update::UpdateOp;
use masm_core::{MasmEngine, ShardRouter, ShardedEngine, ShardingConfig, SplitPolicy};
use masm_pagestore::{HeapConfig, Key, Record, Schema, TableHeap};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::synthetic_100b()
}

fn payload(v: u32) -> Vec<u8> {
    let s = schema();
    let mut p = s.empty_payload();
    s.set_u32(&mut p, 0, v);
    p
}

struct ShardedFixture {
    engine: Arc<ShardedEngine>,
    session: SessionHandle,
    clock: SimClock,
}

fn sharded_fixture(cfg: MasmConfig, n_records: u64) -> ShardedFixture {
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let n = cfg.sharding.shards;
    let ssds: Vec<SimDevice> = (0..n)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let wals: Vec<SimDevice> = (0..n)
        .map(|_| SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone()))
        .collect();
    let engine = ShardedEngine::new(heap, ssds, wals, schema(), cfg).unwrap();
    let session = SessionHandle::fresh(clock.clone());
    if n_records > 0 {
        engine
            .load_table(
                &session,
                (0..n_records).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
    }
    ShardedFixture {
        engine,
        session,
        clock,
    }
}

proptest! {
    /// Routing is total and consistent with the advertised ranges for
    /// arbitrary strictly-ascending split points: every key (including
    /// each boundary and its predecessor) lands in the shard whose
    /// inclusive range contains it, and the ranges tile `u64` exactly.
    #[test]
    fn router_is_total_and_range_consistent(
        raw in proptest::collection::vec(1u64..u64::MAX, 0..8),
        probes in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut splits = raw;
        splits.sort_unstable();
        splits.dedup();
        let router = ShardRouter::from_splits(splits.clone()).unwrap();
        prop_assert_eq!(router.shards(), splits.len() + 1);
        // Ranges tile the keyspace: consecutive, gapless, full-cover.
        let mut expected_lo = 0u64;
        for i in 0..router.shards() {
            let (lo, hi) = router.shard_range(i);
            prop_assert_eq!(lo, expected_lo);
            prop_assert!(lo <= hi);
            prop_assert_eq!(router.route(lo), i);
            prop_assert_eq!(router.route(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        prop_assert_eq!(expected_lo, 0, "last range must end at u64::MAX");
        // Boundary keys open their shard; predecessors close the prior.
        for (i, &s) in router.split_points().iter().enumerate() {
            prop_assert_eq!(router.route(s), i + 1);
            prop_assert_eq!(router.route(s - 1), i);
        }
        for p in probes {
            let shard = router.route(p);
            let (lo, hi) = router.shard_range(shard);
            prop_assert!(lo <= p && p <= hi);
        }
    }

    /// A sampled router is always valid (strictly ascending non-zero
    /// splits, exact shard count) no matter how degenerate the sample.
    #[test]
    fn sampled_router_is_always_valid(
        sample in proptest::collection::vec(any::<u64>(), 0..200),
        shards in 1usize..9,
    ) {
        let router = ShardRouter::from_sample(shards, &sample);
        prop_assert_eq!(router.shards(), shards);
        let s = router.split_points();
        prop_assert!(s.first() != Some(&0));
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        for &k in &sample {
            let (lo, hi) = router.shard_range(router.route(k));
            prop_assert!(lo <= k && k <= hi);
        }
    }
}

/// The same single-threaded update stream applied to a 3-shard engine
/// and to a plain single engine must produce identical commit
/// timestamps and identical scan results at every snapshot cut —
/// record-for-record, in global key order — with zero random SSD writes
/// in every shard.
#[test]
fn sharded_matches_single_engine_oracle() {
    const UPDATES: u32 = 4000;
    const KEYS: u64 = 400;

    let mut cfg = MasmConfig::small_for_tests();
    cfg.sharding = ShardingConfig {
        shards: 3,
        split_policy: SplitPolicy::Explicit(vec![120, 300]),
        max_concurrent_migrations: 1,
    };
    let f = sharded_fixture(cfg, 150);

    let single_cfg = MasmConfig::small_for_tests();
    let clock = SimClock::new();
    let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
    let single = MasmEngine::new(heap, ssd, wal, schema(), single_cfg).unwrap();
    let session = SessionHandle::fresh(clock);
    single
        .load_table(
            &session,
            (0..150).map(|i| Record::new(i * 2, payload(i as u32))),
            1.0,
        )
        .unwrap();

    // Deterministic pseudo-random keys without a rand dependency.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    // Mid-stream consistent cuts: the scans are *opened* (and thereby
    // pinned, in every shard at once) at the cut timestamp, then held
    // unread while ingest continues — the pin is what entitles a scan
    // to its snapshot; duplicate-merging compaction is free to collapse
    // history no query holds open.
    let mut cuts = Vec::new();
    let mut last_ts = 0;
    for j in 0..UPDATES {
        let key: Key = next() % KEYS;
        let op = UpdateOp::Replace(payload(j));
        let ts_sharded = f.engine.put(&f.session, key, op.clone()).unwrap();
        let ts_single = single.apply_update(&session, key, op).unwrap();
        assert_eq!(
            ts_sharded, ts_single,
            "commit timestamps diverged at update {j}"
        );
        last_ts = ts_sharded;
        if j % 1000 == 999 && j + 1 < UPDATES {
            let sharded_scan = f.engine.scan_at(0, u64::MAX, Some(ts_sharded)).unwrap();
            let single_scan = single
                .begin_scan_at(session.clone(), 0, u64::MAX, Some(ts_sharded), Vec::new())
                .unwrap();
            cuts.push((ts_sharded, sharded_scan, single_scan));
        }
    }

    let s = schema();
    for (cut, sharded_scan, single_scan) in cuts {
        let got: Vec<(Key, u32)> = sharded_scan
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        let want: Vec<(Key, u32)> = single_scan
            .map(|r| (r.key, s.get_u32(&r.payload, 0)))
            .collect();
        assert_eq!(got, want, "snapshot at ts {cut} diverged");
        // Global key order falls out of shard-order concatenation.
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "scan out of order");
    }

    // At the final timestamp nothing is newer than the cut, so a fresh
    // scan needs no advance pin: full range and a boundary-crossing
    // sub-range must agree record-for-record.
    let got: Vec<(Key, u32)> = f
        .engine
        .scan_at(0, u64::MAX, Some(last_ts))
        .unwrap()
        .map(|r| (r.key, s.get_u32(&r.payload, 0)))
        .collect();
    let want: Vec<(Key, u32)> = single
        .begin_scan_at(session.clone(), 0, u64::MAX, Some(last_ts), Vec::new())
        .unwrap()
        .map(|r| (r.key, s.get_u32(&r.payload, 0)))
        .collect();
    assert_eq!(got, want, "final snapshot diverged");
    let got: Vec<Key> = f
        .engine
        .scan_at(100, 320, Some(last_ts))
        .unwrap()
        .map(|r| r.key)
        .collect();
    let want: Vec<Key> = single
        .begin_scan_at(session.clone(), 100, 320, Some(last_ts), Vec::new())
        .unwrap()
        .map(|r| r.key)
        .collect();
    assert_eq!(got, want, "boundary-crossing sub-range diverged");

    let stats = f.engine.stats();
    for (i, shard) in stats.per_shard.iter().enumerate() {
        assert_eq!(
            shard.ssd.random_writes, 0,
            "design goal 2 violated in shard {i}"
        );
    }
    assert_eq!(stats.total.ssd.random_writes, 0);
    assert_eq!(stats.total.ingested_updates, UPDATES as u64);
    assert!(stats.shard_imbalance >= 1.0, "max/mean must be >= 1");
    // Every shard saw traffic: the stream covers all three key ranges.
    assert!(stats.per_shard.iter().all(|s| s.ingested_updates > 0));
}

/// Four ingest lanes hammer a 4-shard engine with a live shared worker
/// pool while a scanner takes cross-shard snapshot scans; per-key
/// values must never go backwards within a scan sequence, the final
/// state must equal the serial model, every shard must finish with
/// `random_writes == 0`, and shutdown must drain the shared queue.
#[test]
fn stress_concurrent_sharded_ingest_scan() {
    const LANES: u64 = 4;
    const PER_LANE: u32 = 2000;
    const KEYS_PER_LANE: u32 = 50;
    const SCANS: usize = 15;
    const BASE: u64 = 100_000;

    let mut cfg = MasmConfig::small_for_tests();
    cfg.background_workers = 2;
    cfg.sharding = ShardingConfig {
        shards: 4,
        split_policy: SplitPolicy::Explicit(vec![101_000, 102_000, 103_000]),
        max_concurrent_migrations: 1,
    };
    let f = sharded_fixture(cfg, 100);
    let s = schema();

    let mut ingesters = Vec::new();
    for lane in 0..LANES {
        let engine = Arc::clone(&f.engine);
        let clock = f.clock.clone();
        ingesters.push(thread::spawn(move || {
            let session = SessionHandle::fresh(clock);
            for j in 0..PER_LANE {
                // Lane k writes into shard k's range: 4 lanes drive 4
                // shards concurrently through the one shared pool.
                let key = BASE + lane * 1000 + (j % KEYS_PER_LANE) as u64;
                engine
                    .put(&session, key, UpdateOp::Replace(payload(j)))
                    .unwrap();
            }
        }));
    }

    let scanner = {
        let engine = Arc::clone(&f.engine);
        thread::spawn(move || {
            let s = schema();
            let mut last: HashMap<u64, u32> = HashMap::new();
            for _ in 0..SCANS {
                for r in engine.scan(BASE, u64::MAX).unwrap() {
                    let v = s.get_u32(&r.payload, 0);
                    let prev = last.insert(r.key, v).unwrap_or(0);
                    assert!(
                        v >= prev,
                        "key {} went backwards: {} -> {} (non-snapshot read)",
                        r.key,
                        prev,
                        v
                    );
                }
            }
        })
    };

    for t in ingesters {
        t.join().unwrap();
    }
    scanner.join().unwrap();
    f.engine.shutdown();

    let mut model: HashMap<u64, u32> = HashMap::new();
    for lane in 0..LANES {
        for j in 0..PER_LANE {
            model.insert(BASE + lane * 1000 + (j % KEYS_PER_LANE) as u64, j);
        }
    }
    let got: HashMap<u64, u32> = f
        .engine
        .scan(BASE, u64::MAX)
        .unwrap()
        .map(|r| (r.key, s.get_u32(&r.payload, 0)))
        .collect();
    assert_eq!(got, model, "final state diverged from the serial oracle");

    let stats = f.engine.stats();
    for (i, shard) in stats.per_shard.iter().enumerate() {
        assert_eq!(
            shard.ssd.random_writes, 0,
            "design goal 2 violated in shard {i}"
        );
        // The per-shard NDJSON row carries its shard id and invariant.
        let row = stats.shard_row(i);
        assert!(row.contains(&format!("\"shard_id\":{i}")), "{row}");
        assert!(row.contains("\"random_writes\":0"), "{row}");
    }
    assert!(
        stats.total.workers.jobs_completed > 0,
        "no background job ran"
    );
    assert!(stats.total.workers.flushes > 0, "no background flush ran");
    assert_eq!(
        stats.total.workers.queue_depth, 0,
        "shared queue not drained at join"
    );
    // Lanes are symmetric: imbalance stays near 1.
    assert!(
        stats.shard_imbalance < 1.5,
        "unexpected imbalance {}",
        stats.shard_imbalance
    );
}
