//! Property-based tests for MaSM core data structures.

use std::sync::Arc;

use proptest::prelude::*;

use masm_core::config::{IndexGranularity, MasmConfig};
use masm_core::merge::{fold_duplicates, KWayUpdates, UpdateStream};
use masm_core::run::{write_run, RunScan};
use masm_core::update::{FieldPatch, UpdateOp, UpdateRecord};
use masm_pagestore::{Field, FieldType, Record, Schema};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("a", FieldType::U32),
        Field::new("b", FieldType::Bytes(4)),
    ])
}

fn op_strategy() -> impl Strategy<Value = UpdateOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 8..=8).prop_map(UpdateOp::Insert),
        Just(UpdateOp::Delete),
        (any::<u32>()).prop_map(|v| UpdateOp::Modify(vec![FieldPatch {
            field: 0,
            value: v.to_le_bytes().to_vec(),
        }])),
        proptest::collection::vec(any::<u8>(), 8..=8).prop_map(UpdateOp::Replace),
    ]
}

proptest! {
    /// encode/decode is the identity for arbitrary update records.
    #[test]
    fn update_codec_roundtrip(ts in 1u64..1000, key in any::<u64>(), op in op_strategy()) {
        let u = UpdateRecord::new(ts, key, op);
        let mut buf = Vec::new();
        u.encode_into(&mut buf);
        let (back, used) = UpdateRecord::decode(&buf).unwrap();
        prop_assert_eq!(&back, &u);
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(used, u.encoded_len());
    }

    /// Merging a chain of updates is equivalent to applying them one by
    /// one, from any base state (the §3.2/§3.5 folding invariant).
    #[test]
    fn merge_chain_equals_sequential_apply(
        ops in proptest::collection::vec(op_strategy(), 1..8),
        base_present in any::<bool>(),
    ) {
        let s = schema();
        let key = 42u64;
        let chain: Vec<UpdateRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| UpdateRecord::new(i as u64 + 1, key, op))
            .collect();
        let base = base_present.then(|| Record::new(key, vec![0u8; 8]));

        // Sequential application.
        let mut seq = base.clone();
        for u in &chain {
            seq = u.apply_to(seq, &s);
        }
        // Folded application.
        let mut folded = chain[0].clone();
        for u in &chain[1..] {
            folded = folded.merge_with_later(u, &s);
        }
        prop_assert_eq!(seq, folded.apply_to(base, &s));
    }

    /// fold_duplicates with an always-true guard preserves apply
    /// semantics for every key.
    #[test]
    fn fold_duplicates_preserves_semantics(
        raw in proptest::collection::vec((0u64..10, op_strategy()), 1..40)
    ) {
        let s = schema();
        let mut updates: Vec<UpdateRecord> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (key, op))| UpdateRecord::new(i as u64 + 1, key, op))
            .collect();
        updates.sort_by_key(|x| (x.key, x.ts));
        let folded = fold_duplicates(updates.clone(), &s, |_, _| true);
        // At most one update per key remains.
        for w in folded.windows(2) {
            prop_assert!(w[0].key < w[1].key);
        }
        for key in 0u64..10 {
            let base = Some(Record::new(key, vec![9u8; 8]));
            let mut seq = base.clone();
            for u in updates.iter().filter(|u| u.key == key) {
                seq = u.apply_to(seq, &s);
            }
            let via = match folded.iter().find(|u| u.key == key) {
                Some(u) => u.apply_to(base, &s),
                None => base,
            };
            prop_assert_eq!(seq, via, "key {}", key);
        }
    }

    /// A materialized run scanned over any range returns exactly the
    /// updates in that range, in order.
    #[test]
    fn run_scan_any_range(
        keys in proptest::collection::btree_set(0u64..2000, 1..200),
        a in 0u64..2000,
        b in 0u64..2000,
    ) {
        let (begin, end) = (a.min(b), a.max(b));
        let clock = SimClock::new();
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let session = SessionHandle::fresh(clock);
        let mut cfg = MasmConfig::small_for_tests();
        cfg.index_granularity = IndexGranularity::Bytes(96);
        let updates: Vec<UpdateRecord> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| UpdateRecord::new(i as u64 + 1, k, UpdateOp::Delete))
            .collect();
        let run = write_run(&session, &ssd, &cfg, 0, 0, 1, &updates).unwrap();
        let got: Vec<u64> = RunScan::new(ssd, session, Arc::new(run), begin, end)
            .map(|u| u.key)
            .collect();
        let want: Vec<u64> = keys.range(begin..=end).copied().collect();
        prop_assert_eq!(got, want);
    }

    /// K-way merge of arbitrary sorted streams yields a globally sorted
    /// permutation of the inputs.
    #[test]
    fn kway_merge_is_sorted_permutation(
        streams_raw in proptest::collection::vec(
            proptest::collection::vec((0u64..100, 1u64..50), 0..30),
            1..6
        )
    ) {
        let mut all: Vec<(u64, u64)> = Vec::new();
        let streams: Vec<UpdateStream> = streams_raw
            .into_iter()
            .map(|mut pairs| {
                pairs.sort();
                all.extend(pairs.iter().copied());
                let us: Vec<UpdateRecord> = pairs
                    .into_iter()
                    .map(|(k, ts)| UpdateRecord::new(ts, k, UpdateOp::Delete))
                    .collect();
                Box::new(us.into_iter()) as UpdateStream
            })
            .collect();
        let merged: Vec<(u64, u64)> = KWayUpdates::new(streams)
            .map(|u| (u.key, u.ts))
            .collect();
        all.sort();
        prop_assert_eq!(merged, all);
    }
}
