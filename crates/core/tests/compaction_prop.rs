//! Property tests for the zero-decode compaction pipeline: for random
//! overlapping and disjoint run sets, the planned (move/merge) output
//! must be record-for-record identical to the full-decode k-way merge,
//! and every moved block's CRC must survive verbatim.
//!
//! Input runs are written under **mixed codecs** (each run cycles
//! through identity / delta / lz / adaptive), so every property here
//! also exercises the codec stage: moved blocks must carry their codec
//! id, raw length, and CRC through compaction untouched.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;

use masm_core::config::{CodecChoice, IndexGranularity, MasmConfig};
use masm_core::merge::{compact_block_runs, fold_duplicates};
use masm_core::run::{write_built, write_run, RunScan, SortedRun};
use masm_core::update::{UpdateOp, UpdateRecord};
use masm_pagestore::{Field, FieldType, Schema};
use masm_storage::{DeviceProfile, SessionHandle, SimClock, SimDevice};

fn schema() -> Schema {
    Schema::new(vec![Field::new("v", FieldType::U32)])
}

fn test_cfg() -> MasmConfig {
    let mut cfg = MasmConfig::small_for_tests();
    // Small blocks so even modest runs span many zone-map entries.
    cfg.index_granularity = IndexGranularity::Bytes(128);
    cfg
}

struct Built {
    ssd: SimDevice,
    session: SessionHandle,
    runs: Vec<Arc<SortedRun>>,
    /// Every input update, globally sorted by `(key, ts)`.
    all: Vec<UpdateRecord>,
    next_base: u64,
}

/// Materialize one run per key set, cycling the codec per run so run
/// sets mix per-block codecs. `disjoint` shifts each run into its own
/// key band so no two runs overlap; otherwise all runs share the same
/// key space (same key in several runs, unique timestamps).
fn build_runs(run_keys: &[std::collections::BTreeSet<u64>], disjoint: bool) -> Built {
    let clock = SimClock::new();
    let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
    ssd.prime_head_position(0);
    let session = SessionHandle::fresh(clock);
    let mut ts = 1u64;
    let mut all: Vec<UpdateRecord> = Vec::new();
    let mut runs = Vec::new();
    let mut next_base = 0u64;
    for (i, keys) in run_keys.iter().enumerate() {
        let mut cfg = test_cfg();
        cfg.codec = CodecChoice::ALL[i % CodecChoice::ALL.len()];
        let offset = if disjoint { i as u64 * 100_000 } else { 0 };
        let updates: Vec<UpdateRecord> = keys
            .iter()
            .map(|&k| {
                let u = UpdateRecord::new(
                    ts,
                    k + offset,
                    UpdateOp::Replace((ts as u32).to_le_bytes().to_vec()),
                );
                ts += 1;
                u
            })
            .collect();
        let run = write_run(&session, &ssd, &cfg, i as u64, next_base, 1, &updates).unwrap();
        next_base += run.bytes;
        all.extend(updates);
        runs.push(Arc::new(run));
    }
    all.sort_by_key(|u| (u.key, u.ts));
    Built {
        ssd,
        session,
        runs,
        all,
        next_base,
    }
}

/// Run the planned compaction, write the output, and scan it back.
fn compact_and_scan(
    b: &Built,
    fold: bool,
) -> (SortedRun, Vec<UpdateRecord>, masm_storage::MergeReport) {
    let guard = |_: u64, _: u64| true;
    let (mut meta, bytes, report) = compact_block_runs(
        &b.session,
        &b.ssd,
        &test_cfg(),
        &schema(),
        &b.runs,
        fold.then_some(&guard as &dyn Fn(u64, u64) -> bool),
    )
    .unwrap();
    meta.base = b.next_base;
    let out = SortedRun::from_meta(1000, 2, meta);
    // As in the engine's merge path: the output opens a fresh write
    // stream, so drop the read↔write single-head artifact before the
    // sequential run write.
    b.ssd.prime_head_position(out.base);
    write_built(&b.session, &b.ssd, &out, &bytes).unwrap();
    let got: Vec<UpdateRecord> = RunScan::new(
        b.ssd.clone(),
        b.session.clone(),
        Arc::new(out.clone()),
        0,
        u64::MAX,
    )
    .collect();
    (out, got, report)
}

fn input_crcs(b: &Built) -> HashSet<u32> {
    b.runs
        .iter()
        .flat_map(|r| r.meta.zones.iter().map(|z| z.crc))
        .collect()
}

/// A disjoint compaction's output keeps a usable bloom filter: the
/// union of the inputs' filters (folded to a common power-of-two
/// geometry) accepts every key, so absent-key point lookups keep
/// skipping the run without I/O.
#[test]
fn disjoint_compaction_retains_usable_bloom() {
    let sets: Vec<std::collections::BTreeSet<u64>> = vec![
        (0..500).map(|i| i * 3).collect(),
        (0..300).map(|i| i * 2).collect(),
    ];
    let b = build_runs(&sets, true);
    let (out, _, report) = compact_and_scan(&b, false);
    assert_eq!(report.blocks_merged, 0, "fully disjoint: {report:?}");
    let bloom = out.meta.bloom.as_ref().expect("union bloom survives");
    for u in &b.all {
        assert!(bloom.contains(u.key), "no false negatives for {}", u.key);
    }
    assert!(bloom.fill_ratio() < 0.95, "{}", bloom.fill_ratio());
}

proptest! {
    /// Unfolded planned compaction is the identity merge: exactly the
    /// concatenation of all inputs in `(key, ts)` order, regardless of
    /// how the planner split move from merge segments.
    #[test]
    fn planned_compaction_equals_full_decode_merge(
        run_keys in proptest::collection::vec(
            proptest::collection::btree_set(0u64..1500, 1..120),
            2..5
        ),
        disjoint in any::<bool>(),
    ) {
        let b = build_runs(&run_keys, disjoint);
        let (out, got, report) = compact_and_scan(&b, false);

        prop_assert_eq!(&got, &b.all, "record-for-record identical");

        // Accounting covers every input block exactly once.
        let total_blocks: u64 = b.runs.iter().map(|r| r.meta.zones.len() as u64).sum();
        prop_assert_eq!(report.blocks_moved + report.blocks_merged, total_blocks);
        prop_assert_eq!(report.entries_out, b.all.len() as u64);
        prop_assert_eq!(report.fan_in, b.runs.len());

        // Moved blocks keep their CRCs verbatim.
        let crcs = input_crcs(&b);
        let preserved = out
            .meta
            .zones
            .iter()
            .filter(|z| crcs.contains(&z.crc))
            .count() as u64;
        prop_assert!(
            preserved >= report.blocks_moved,
            "{} preserved < {} moved",
            preserved,
            report.blocks_moved
        );

        if disjoint {
            prop_assert_eq!(report.bytes_decoded, 0, "disjoint inputs decode nothing");
            prop_assert_eq!(report.blocks_merged, 0);
            prop_assert_eq!(preserved, out.meta.zones.len() as u64, "all CRCs verbatim");
            prop_assert_eq!(b.ssd.stats().random_writes, 0, "{:?}", b.ssd.stats());
        }
    }

    /// Zero-decode compaction of **mixed-codec** disjoint inputs moves
    /// every block verbatim: per-block codec ids, raw lengths, stored
    /// lengths, and CRCs survive as an exact multiset, no byte is
    /// decoded, and the output write stream stays sequential.
    #[test]
    fn mixed_codec_disjoint_compaction_preserves_codec_ids_and_crcs(
        run_keys in proptest::collection::vec(
            proptest::collection::btree_set(0u64..1500, 1..120),
            3..5
        ),
    ) {
        let b = build_runs(&run_keys, true);
        // The codec cycle must actually mix ids across the input runs.
        let input_ids: HashSet<u8> = b
            .runs
            .iter()
            .flat_map(|r| r.meta.zones.iter().map(|z| z.codec_id))
            .collect();
        prop_assert!(input_ids.len() >= 2, "inputs carry mixed codecs: {input_ids:?}");

        let (out, got, report) = compact_and_scan(&b, false);
        prop_assert_eq!(&got, &b.all, "record-for-record identical");
        prop_assert_eq!(report.bytes_decoded, 0, "disjoint ⇒ zero decode");
        prop_assert_eq!(report.blocks_merged, 0);
        prop_assert_eq!(b.ssd.stats().random_writes, 0, "{:?}", b.ssd.stats());

        let mut want: Vec<(u8, u32, u32, u32)> = b
            .runs
            .iter()
            .flat_map(|r| r.meta.zones.iter())
            .map(|z| (z.codec_id, z.crc, z.len, z.raw_len))
            .collect();
        let mut have: Vec<(u8, u32, u32, u32)> = out
            .meta
            .zones
            .iter()
            .map(|z| (z.codec_id, z.crc, z.len, z.raw_len))
            .collect();
        want.sort_unstable();
        have.sort_unstable();
        prop_assert_eq!(have, want, "codec ids and CRCs preserved verbatim");
    }

    /// Folded planned compaction agrees with folding the full-decode
    /// merge (each run's keys are unique within the run, so every
    /// duplicate pair spans runs and lands in a merge segment).
    #[test]
    fn folded_compaction_equals_folded_full_merge(
        run_keys in proptest::collection::vec(
            proptest::collection::btree_set(0u64..400, 1..80),
            2..5
        ),
    ) {
        let b = build_runs(&run_keys, false);
        let (_, got, _) = compact_and_scan(&b, true);
        let want = fold_duplicates(b.all.clone(), &schema(), |_, _| true);
        prop_assert_eq!(got, want);
    }
}
