//! The in-memory staging buffer for incoming updates (§3.2/§3.3).
//!
//! Incoming well-formed updates are appended here; when the buffer
//! reaches its capacity (S pages — possibly extended by stolen query
//! pages in MaSM-M, Figure 8 lines 2–3) the engine materializes it as a
//! sorted run on the SSD.
//!
//! **Simplification vs. the paper:** the paper's `Mem_scan` shares the
//! live buffer with queries and repairs its cursors when the buffer is
//! sorted or flushed underneath it. We instead hand each scan a sorted
//! *snapshot* of the matching entries at scan setup. Visibility is
//! identical (a query sees exactly the updates with earlier timestamps);
//! the only cost is a small transient copy, which we accept in exchange
//! for clearly correct concurrency. The memory-footprint *accounting*
//! still follows the paper's S/query-page budget.

use masm_pagestore::Key;

use crate::ts::Timestamp;
use crate::update::UpdateRecord;

/// Append-ordered buffer of recent updates with byte accounting.
#[derive(Debug)]
pub struct UpdateBuffer {
    entries: Vec<UpdateRecord>,
    bytes: usize,
    capacity: usize,
    base_capacity: usize,
}

impl UpdateBuffer {
    /// Create a buffer with `capacity` bytes (S pages worth).
    pub fn new(capacity: usize) -> Self {
        UpdateBuffer {
            entries: Vec::new(),
            bytes: 0,
            capacity,
            base_capacity: capacity,
        }
    }

    /// Append an update. The caller checks [`UpdateBuffer::is_full`]
    /// first and flushes or steals pages as its policy dictates; the
    /// buffer itself never refuses (the paper appends then handles
    /// overflow on the next arrival).
    pub fn push(&mut self, u: UpdateRecord) {
        self.bytes += u.encoded_len();
        self.entries.push(u);
    }

    /// Bytes currently buffered.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered update records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no updates are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at (or beyond) capacity.
    pub fn is_full(&self) -> bool {
        self.bytes >= self.capacity
    }

    /// Current capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Capacity without stolen pages.
    pub fn base_capacity(&self) -> usize {
        self.base_capacity
    }

    /// Extend capacity by one stolen query page (MaSM-M, Fig. 8).
    pub fn steal_page(&mut self, page_bytes: usize) {
        self.capacity += page_bytes;
    }

    /// Reset capacity to the base S pages (after a flush).
    pub fn return_stolen_pages(&mut self) {
        self.capacity = self.base_capacity;
    }

    /// Smallest timestamp buffered, if any.
    pub fn min_ts(&self) -> Option<Timestamp> {
        self.entries.iter().map(|u| u.ts).min()
    }

    /// Largest timestamp buffered, if any.
    pub fn max_ts(&self) -> Option<Timestamp> {
        self.entries.iter().map(|u| u.ts).max()
    }

    /// Sorted snapshot of updates overlapping `[begin, end]` with
    /// `ts ≤ as_of` — the `Mem_scan` input for one query.
    pub fn snapshot_range(&self, begin: Key, end: Key, as_of: Timestamp) -> Vec<UpdateRecord> {
        let mut out: Vec<UpdateRecord> = self
            .entries
            .iter()
            .filter(|u| u.key >= begin && u.key <= end && u.ts <= as_of)
            .cloned()
            .collect();
        out.sort_by_key(|a| (a.key, a.ts));
        out
    }

    /// Drain everything, sorted by `(key, ts)`, for materializing a
    /// sorted run. Also returns stolen capacity.
    pub fn drain_sorted(&mut self) -> Vec<UpdateRecord> {
        let mut out = std::mem::take(&mut self.entries);
        self.bytes = 0;
        self.return_stolen_pages();
        out.sort_by_key(|a| (a.key, a.ts));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateOp;

    fn upd(ts: Timestamp, key: Key) -> UpdateRecord {
        UpdateRecord::new(ts, key, UpdateOp::Delete)
    }

    #[test]
    fn push_accounts_bytes() {
        let mut b = UpdateBuffer::new(100);
        let u = upd(1, 5);
        let sz = u.encoded_len();
        b.push(u);
        assert_eq!(b.bytes(), sz);
        assert_eq!(b.len(), 1);
        assert!(!b.is_full());
    }

    #[test]
    fn fills_at_capacity() {
        let mut b = UpdateBuffer::new(40);
        b.push(upd(1, 1)); // 17 bytes
        assert!(!b.is_full());
        b.push(upd(2, 2));
        assert!(!b.is_full());
        b.push(upd(3, 3));
        assert!(b.is_full());
    }

    #[test]
    fn steal_and_return_pages() {
        let mut b = UpdateBuffer::new(20);
        b.push(upd(1, 1));
        assert!(!b.is_full());
        b.push(upd(2, 2));
        assert!(b.is_full());
        b.steal_page(20);
        assert!(!b.is_full());
        assert_eq!(b.capacity(), 40);
        let drained = b.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert_eq!(b.capacity(), 20);
        assert!(b.is_empty());
    }

    #[test]
    fn snapshot_filters_by_range_and_ts() {
        let mut b = UpdateBuffer::new(1000);
        b.push(upd(1, 10));
        b.push(upd(2, 20));
        b.push(upd(3, 30));
        b.push(upd(4, 20)); // same key, later ts
        let snap = b.snapshot_range(15, 25, 3);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].ts, 2);
        let snap_all = b.snapshot_range(0, 100, 10);
        assert_eq!(snap_all.len(), 4);
        // Sorted by (key, ts).
        let keys: Vec<(Key, Timestamp)> = snap_all.iter().map(|u| (u.key, u.ts)).collect();
        assert_eq!(keys, vec![(10, 1), (20, 2), (20, 4), (30, 3)]);
    }

    #[test]
    fn drain_sorts_by_key_then_ts() {
        let mut b = UpdateBuffer::new(1000);
        b.push(upd(1, 30));
        b.push(upd(2, 10));
        b.push(upd(3, 10));
        let drained = b.drain_sorted();
        let keys: Vec<(Key, Timestamp)> = drained.iter().map(|u| (u.key, u.ts)).collect();
        assert_eq!(keys, vec![(10, 2), (10, 3), (30, 1)]);
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn ts_bounds() {
        let mut b = UpdateBuffer::new(1000);
        assert_eq!(b.min_ts(), None);
        b.push(upd(5, 1));
        b.push(upd(2, 2));
        assert_eq!(b.min_ts(), Some(2));
        assert_eq!(b.max_ts(), Some(5));
    }
}
