//! Run-set management: the MaSM-2M / MaSM-M / MaSM-αM policies (§3.2–3.4).
//!
//! All three algorithms share the same machinery and differ only in the
//! memory split encoded by [`crate::config::MasmConfig`]:
//!
//! * **MaSM-2M** (α = 2): the update buffer has `M` pages, so at most `M`
//!   1-pass runs exist and the `M` query pages can always hold one read
//!   page per run — no 2-pass merges are ever needed, and every update is
//!   written to the SSD exactly once.
//! * **MaSM-M** (α = 1): the buffer gets `S = M/2` pages and queries the
//!   other half, so when more than `M − S` runs accumulate, the `N`
//!   earliest 1-pass runs are merged into one 2-pass run
//!   (`N_opt = 0.375M + 1`, Theorem 3.2), costing ≈0.75 extra writes per
//!   update (total ≈1.75).
//! * **MaSM-αM** interpolates (`S_opt = 0.5αM`, Theorem 3.3), writing
//!   each update ≈`2 − 0.25α²` times.

use std::sync::Arc;

use crate::config::MasmConfig;
use crate::run::{SortedRun, SsdSpace};

/// The set of live materialized sorted runs, ordered by minimum
/// timestamp (creation order; 2-pass runs inherit their inputs' era).
#[derive(Debug, Default)]
pub struct RunSet {
    runs: Vec<Arc<SortedRun>>,
    space: SsdSpace,
    next_id: u64,
}

impl RunSet {
    /// Empty run set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live runs, earliest first.
    pub fn runs(&self) -> &[Arc<SortedRun>] {
        &self.runs
    }

    /// Number of live runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are live.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Count of 1-pass runs (`K1`).
    pub fn one_pass(&self) -> usize {
        self.runs.iter().filter(|r| r.passes == 1).count()
    }

    /// Count of 2-pass runs (`K2`).
    pub fn two_pass(&self) -> usize {
        self.runs.iter().filter(|r| r.passes >= 2).count()
    }

    /// Bytes of cached updates currently on the SSD.
    pub fn live_bytes(&self) -> u64 {
        self.space.live_bytes()
    }

    /// Draw the next run id.
    pub fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Resume the id sequence after recovery.
    pub fn resume_ids_after(&mut self, last: u64) {
        self.next_id = self.next_id.max(last + 1);
    }

    /// Reinstate allocator state during recovery.
    pub fn set_space(&mut self, space: SsdSpace) {
        self.space = space;
    }

    /// Allocate sequential SSD space for a run of `bytes`.
    pub fn alloc_space(&mut self, bytes: u64) -> u64 {
        self.space.alloc(bytes)
    }

    /// Release `bytes` of allocated-but-unregistered space (a run build
    /// or write failed after its extent was allocated). The extent
    /// itself stays burned until the allocator rewinds at quiesce — the
    /// bump allocator never reuses space while readers may be pinned.
    pub fn free_space(&mut self, bytes: u64) {
        self.space.free(bytes);
    }

    /// Register a freshly materialized run.
    pub fn add(&mut self, run: Arc<SortedRun>) {
        self.runs.push(run);
        self.runs.sort_by_key(|r| (r.min_ts, r.id));
    }

    /// Remove runs by id, releasing their SSD space.
    pub fn remove_ids(&mut self, ids: &[u64]) {
        let mut freed = 0u64;
        self.runs.retain(|r| {
            if ids.contains(&r.id) {
                freed += r.bytes;
                false
            } else {
                true
            }
        });
        self.space.free(freed);
    }

    /// The `N` earliest adjacent 1-pass runs to merge when the run count
    /// exceeds the query-page budget (Figure 8, Table Range Scan Setup
    /// lines 5–8). Returns `None` when no merge is needed or possible.
    pub fn plan_merge(&self, cfg: &MasmConfig) -> Option<Vec<Arc<SortedRun>>> {
        let budget = cfg.query_pages() as usize;
        if self.runs.len() <= budget {
            return None;
        }
        let n = cfg.n_merge() as usize;
        let one_pass: Vec<Arc<SortedRun>> = self
            .runs
            .iter()
            .filter(|r| r.passes == 1)
            .take(n)
            .cloned()
            .collect();
        (one_pass.len() >= 2).then_some(one_pass)
    }

    /// Whether cached updates have reached the migration threshold.
    pub fn needs_migration(&self, cfg: &MasmConfig) -> bool {
        self.live_bytes() >= cfg.migration_trigger_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use masm_blockrun::BlockRunMeta;

    fn dummy_run(id: u64, passes: u8, min_ts: u64, bytes: u64) -> Arc<SortedRun> {
        Arc::new(SortedRun {
            id,
            base: 0,
            bytes,
            count: 1,
            min_key: 0,
            max_key: 10,
            min_ts,
            max_ts: min_ts,
            passes,
            meta: Arc::new(BlockRunMeta::synthetic(0, 10, min_ts, min_ts, 1)),
        })
    }

    fn small_cfg() -> MasmConfig {
        // M = 32, S = 16, query pages = 16, N = clamp(0.375*32+1)=13.
        MasmConfig::small_for_tests()
    }

    #[test]
    fn add_keeps_min_ts_order() {
        let mut rs = RunSet::new();
        rs.add(dummy_run(2, 1, 20, 100));
        rs.add(dummy_run(1, 1, 10, 100));
        rs.add(dummy_run(3, 2, 5, 100));
        let ids: Vec<u64> = rs.runs().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    fn space_accounting() {
        let mut rs = RunSet::new();
        let off = rs.alloc_space(100);
        assert_eq!(off, 0);
        rs.add(dummy_run(0, 1, 1, 100));
        assert_eq!(rs.live_bytes(), 100);
        rs.remove_ids(&[0]);
        assert_eq!(rs.live_bytes(), 0);
        assert!(rs.is_empty());
    }

    #[test]
    fn plan_merge_triggers_over_budget() {
        let cfg = small_cfg();
        let budget = cfg.query_pages() as usize;
        let mut rs = RunSet::new();
        for i in 0..budget as u64 {
            rs.add(dummy_run(i, 1, i + 1, 10));
        }
        assert!(rs.plan_merge(&cfg).is_none(), "at budget: no merge");
        rs.add(dummy_run(99, 1, 99, 10));
        let plan = rs.plan_merge(&cfg).expect("over budget");
        assert_eq!(plan.len() as u64, cfg.n_merge());
        // The plan takes the earliest runs.
        assert_eq!(plan[0].min_ts, 1);
    }

    #[test]
    fn plan_merge_skips_two_pass_runs() {
        let cfg = small_cfg();
        let budget = cfg.query_pages() as usize;
        let mut rs = RunSet::new();
        rs.add(dummy_run(1000, 2, 0, 10)); // a 2-pass run, earliest
        for i in 0..budget as u64 {
            rs.add(dummy_run(i, 1, i + 1, 10));
        }
        let plan = rs.plan_merge(&cfg).expect("over budget");
        assert!(plan.iter().all(|r| r.passes == 1));
    }

    #[test]
    fn needs_migration_threshold() {
        let cfg = small_cfg(); // capacity 4 MiB, threshold 90%
        let mut rs = RunSet::new();
        let big = (cfg.ssd_capacity as f64 * 0.91) as u64;
        rs.alloc_space(big);
        rs.add(dummy_run(0, 1, 1, big));
        assert!(rs.needs_migration(&cfg));
        rs.remove_ids(&[0]);
        assert!(!rs.needs_migration(&cfg));
    }

    #[test]
    fn id_sequence() {
        let mut rs = RunSet::new();
        assert_eq!(rs.next_id(), 0);
        assert_eq!(rs.next_id(), 1);
        rs.resume_ids_after(10);
        assert_eq!(rs.next_id(), 11);
    }
}
