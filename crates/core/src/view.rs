//! Lazily maintained materialized views (§5 "Materialized Views").
//!
//! The paper: "A recent study proposed lazy maintenance of materialized
//! views in order to remove view maintenance from the critical path of
//! incoming update handling … It is straightforward to extend
//! differential update schemes to support lazy view maintenance, by
//! treating the view maintenance operations as normal queries."
//!
//! That is exactly what [`LazyView`] does: updates never touch the view
//! (they stay on MaSM's fast append path), and a read re-derives the
//! view *through a normal merged range scan* — which already sees all
//! cached updates — but only when some update has actually committed
//! since the last refresh.

use std::sync::Arc;

use parking_lot::Mutex;

use masm_pagestore::{Key, Record};
use masm_storage::SessionHandle;

use crate::engine::MasmEngine;
use crate::error::MasmResult;

/// A lazily refreshed materialized view: `fold` over a merged range scan.
pub struct LazyView<T: Clone> {
    engine: Arc<MasmEngine>,
    begin: Key,
    end: Key,
    #[allow(clippy::type_complexity)]
    fold: Box<dyn Fn(&mut T, Record) + Send + Sync>,
    init: T,
    /// `(ingest counter at refresh, cached value)`.
    cached: Mutex<Option<(u64, T)>>,
    refreshes: Mutex<u64>,
}

impl<T: Clone> LazyView<T> {
    /// Define a view as a fold over the merged records of `[begin, end]`.
    pub fn new(
        engine: &Arc<MasmEngine>,
        begin: Key,
        end: Key,
        init: T,
        fold: impl Fn(&mut T, Record) + Send + Sync + 'static,
    ) -> Self {
        LazyView {
            engine: Arc::clone(engine),
            begin,
            end,
            fold: Box::new(fold),
            init,
            cached: Mutex::new(None),
            refreshes: Mutex::new(0),
        }
    }

    /// Read the view, refreshing it first if any update committed since
    /// the last refresh. The refresh is a normal MaSM merged scan — it
    /// sees the in-memory buffer and the SSD runs, so it is always
    /// up-to-the-last-update fresh without ever blocking the update path.
    pub fn get(&self, session: &SessionHandle) -> MasmResult<T> {
        let (ingested, _) = self.engine.ingest_stats();
        {
            let cached = self.cached.lock();
            if let Some((at, value)) = cached.as_ref() {
                if *at == ingested {
                    return Ok(value.clone());
                }
            }
        }
        // Stale (or never computed): run the view query.
        let mut acc = self.init.clone();
        for record in self
            .engine
            .begin_scan(session.clone(), self.begin, self.end)?
        {
            (self.fold)(&mut acc, record);
        }
        *self.cached.lock() = Some((ingested, acc.clone()));
        *self.refreshes.lock() += 1;
        Ok(acc)
    }

    /// How many times the view actually recomputed (for tests and for
    /// demonstrating that maintenance is off the update path).
    pub fn refresh_count(&self) -> u64 {
        *self.refreshes.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasmConfig;
    use crate::update::UpdateOp;
    use masm_pagestore::{HeapConfig, Schema, TableHeap};
    use masm_storage::{DeviceProfile, SimClock, SimDevice};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup() -> (Arc<MasmEngine>, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd, wal, schema(), MasmConfig::small_for_tests()).unwrap();
        let session = SessionHandle::fresh(clock);
        engine
            .load_table(
                &session,
                (0..100u64).map(|i| Record::new(i * 2, payload(1))),
                1.0,
            )
            .unwrap();
        (engine, session)
    }

    fn sum_view(engine: &Arc<MasmEngine>) -> LazyView<u64> {
        let s = schema();
        LazyView::new(engine, 0, u64::MAX, 0u64, move |acc, r| {
            *acc += s.get_u32(&r.payload, 0) as u64;
        })
    }

    #[test]
    fn view_reflects_updates_lazily() {
        let (engine, session) = setup();
        let view = sum_view(&engine);
        assert_eq!(view.get(&session).unwrap(), 100);
        assert_eq!(view.refresh_count(), 1);

        // Updates do not touch the view.
        engine
            .apply_update(&session, 1, UpdateOp::Insert(payload(50)))
            .unwrap();
        engine.apply_update(&session, 0, UpdateOp::Delete).unwrap();
        assert_eq!(view.refresh_count(), 1, "no eager maintenance");

        // The next read refreshes once and is exact.
        assert_eq!(view.get(&session).unwrap(), 100 + 50 - 1);
        assert_eq!(view.refresh_count(), 2);
    }

    #[test]
    fn repeated_reads_without_updates_hit_the_cache() {
        let (engine, session) = setup();
        let view = sum_view(&engine);
        for _ in 0..5 {
            view.get(&session).unwrap();
        }
        assert_eq!(view.refresh_count(), 1);
    }

    #[test]
    fn view_survives_migration() {
        let (engine, session) = setup();
        let view = sum_view(&engine);
        engine
            .apply_update(&session, 3, UpdateOp::Insert(payload(7)))
            .unwrap();
        let before = view.get(&session).unwrap();
        engine.migrate(&session).unwrap();
        // Migration applied the updates but changed no logical content.
        assert_eq!(view.get(&session).unwrap(), before);
    }

    #[test]
    fn range_restricted_view() {
        let (engine, session) = setup();
        let s = schema();
        // Count of records with key in [0, 20].
        let view = LazyView::new(&engine, 0, 20, 0u64, move |acc, r| {
            let _ = s.get_u32(&r.payload, 0);
            *acc += 1;
        });
        assert_eq!(view.get(&session).unwrap(), 11);
        engine
            .apply_update(&session, 5, UpdateOp::Insert(payload(1)))
            .unwrap();
        assert_eq!(view.get(&session).unwrap(), 12);
    }
}
