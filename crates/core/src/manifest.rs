//! The shard manifest: the durable description of a sharded deployment.
//!
//! A [`crate::ShardedEngine`] is N per-range engines over N WAL devices;
//! after a crash, recovery must know *how many* logs to replay, *which*
//! key range each one covers, and that the configuration it is being
//! recovered under produces the same on-flash layout that was written.
//! The [`ShardManifest`] carries exactly that — shard count, split keys,
//! the shard's SSD region base, and a fingerprint of the layout-shaping
//! configuration — and is appended (CRC-protected, once per shard, each
//! copy naming its own shard id) to every shard's redo log at
//! [`crate::ShardedEngine::new`]. Logging a copy into *every* WAL means
//! recovery needs no side-channel file: any one log identifies the
//! deployment, and cross-checking all N copies catches mixed-up or
//! truncated device sets before any run bytes are trusted.

use masm_blockrun::crc32;
use masm_pagestore::Key;

use crate::error::{MasmError, MasmResult};

/// Magic prefix of an encoded manifest (`"MSMF"`).
const MANIFEST_MAGIC: u32 = 0x4D53_4D46;
/// Encoding version.
const MANIFEST_VERSION: u16 = 1;

/// Durable identity of one shard within a sharded deployment.
///
/// Written to each shard's WAL at construction and validated by
/// [`crate::ShardedEngine::recover`]: every copy must agree on the
/// shard count, split keys, and config fingerprint, and each copy must
/// carry the shard id of the WAL it lives in (so swapping two shards'
/// devices is detected instead of silently mis-routing their runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Total number of shards in the deployment.
    pub shards: u32,
    /// Which shard's WAL this copy lives in (`0..shards`).
    pub shard_id: u32,
    /// Router split points: lower bounds of shards `1..` (empty for a
    /// single shard). Stored explicitly because sampled split policies
    /// are not reproducible at recovery time.
    pub split_keys: Vec<Key>,
    /// Byte offset of this shard's run region on its SSD device.
    pub ssd_region_base: u64,
    /// [`crate::config::MasmConfig::fingerprint`] of the top-level
    /// configuration the deployment was built with.
    pub config_fingerprint: u64,
}

impl ShardManifest {
    /// Encode as `[magic][version][shards][shard_id][region][fp]
    /// [n_splits][splits…][crc32 of all prior bytes]`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(38 + 8 * self.split_keys.len());
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.shard_id.to_le_bytes());
        out.extend_from_slice(&self.ssd_region_base.to_le_bytes());
        out.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.split_keys.len() as u32).to_le_bytes());
        for k in &self.split_keys {
            out.extend_from_slice(&k.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode and CRC-check an encoded manifest.
    pub fn decode(buf: &[u8]) -> MasmResult<ShardManifest> {
        let corrupt = |_| MasmError::Corrupt("manifest truncated");
        let take4 = |pos: usize| -> MasmResult<u32> {
            Ok(u32::from_le_bytes(
                buf.get(pos..pos + 4)
                    .ok_or(MasmError::Corrupt("manifest truncated"))?
                    .try_into()
                    .map_err(corrupt)?,
            ))
        };
        let take8 = |pos: usize| -> MasmResult<u64> {
            Ok(u64::from_le_bytes(
                buf.get(pos..pos + 8)
                    .ok_or(MasmError::Corrupt("manifest truncated"))?
                    .try_into()
                    .map_err(corrupt)?,
            ))
        };
        if buf.len() < 38 {
            return Err(MasmError::Corrupt("manifest truncated"));
        }
        let body_len = buf.len() - 4;
        let stored_crc = take4(body_len)?;
        if crc32(&buf[..body_len]) != stored_crc {
            return Err(MasmError::Corrupt("manifest CRC mismatch"));
        }
        if take4(0)? != MANIFEST_MAGIC {
            return Err(MasmError::Corrupt("manifest magic mismatch"));
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().map_err(corrupt)?);
        if version != MANIFEST_VERSION {
            return Err(MasmError::Corrupt("manifest version unsupported"));
        }
        let shards = take4(6)?;
        let shard_id = take4(10)?;
        let ssd_region_base = take8(14)?;
        let config_fingerprint = take8(22)?;
        let n_splits = take4(30)? as usize;
        if body_len != 34 + 8 * n_splits {
            return Err(MasmError::Corrupt("manifest length mismatch"));
        }
        let mut split_keys = Vec::with_capacity(n_splits);
        for i in 0..n_splits {
            split_keys.push(take8(34 + 8 * i)?);
        }
        Ok(ShardManifest {
            shards,
            shard_id,
            split_keys,
            ssd_region_base,
            config_fingerprint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            shards: 4,
            shard_id: 2,
            split_keys: vec![100, 5000, 70_000],
            ssd_region_base: 4096,
            config_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        let empty = ShardManifest {
            shards: 1,
            shard_id: 0,
            split_keys: vec![],
            ssd_region_base: 0,
            config_fingerprint: 7,
        };
        assert_eq!(ShardManifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode();
        bytes[20] ^= 0x40;
        assert!(ShardManifest::decode(&bytes).is_err());
        let short = &sample().encode()[..10];
        assert!(ShardManifest::decode(short).is_err());
        // Truncating from the tail breaks the CRC framing too.
        let enc = sample().encode();
        assert!(ShardManifest::decode(&enc[..enc.len() - 1]).is_err());
    }
}
