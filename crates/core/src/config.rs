//! MaSM configuration (Table 1 parameters and §3.5 knobs).
//!
//! The paper's parameters, with `P` = SSD page size:
//!
//! | symbol    | meaning                                              |
//! |-----------|------------------------------------------------------|
//! | `‖SSD‖`   | SSD capacity in pages, `‖SSD‖ = M²`                  |
//! | `M`       | memory (in pages) of the plain MaSM-M algorithm      |
//! | `α`       | memory scale: MaSM-αM uses `αM` pages of memory      |
//! | `S`       | pages buffering incoming updates (`S_opt = 0.5αM`)   |
//! | `N`       | 1-pass runs merged into one 2-pass run (Thm 3.3)     |
//!
//! The experimental defaults match §4.1: 64 KB SSD I/O pages, 4 GB flash
//! space (so `M = 256` pages = 16 MB of memory for MaSM-M), fine-grain
//! run index (one entry per 4 KB of cached updates).

use masm_pagestore::Key;

use crate::error::{MasmError, MasmResult};

pub use masm_blockrun::CachePolicy;
pub use masm_codec::CodecChoice;

/// How a sharded engine picks its key-range split points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Divide the full `u64` key space into equal-width ranges. Right
    /// for uniformly distributed keys; skewed keys should use
    /// [`SplitPolicy::Sampled`].
    Uniform,
    /// Learn split points from a key sample: each shard receives the
    /// same number of *sampled* keys (quantile splits), so a zipfian
    /// tenant distribution still spreads ingest load evenly.
    Sampled(Vec<Key>),
    /// Use exactly these split points (must be strictly ascending,
    /// non-zero, and one fewer than the shard count).
    Explicit(Vec<Key>),
}

/// Key-range sharding of one logical table over several MaSM engines
/// (one per contiguous key range). `shards = 1` (the default) is the
/// unsharded engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingConfig {
    /// Number of contiguous key-range shards (1–64).
    pub shards: usize,
    /// How split points between shards are chosen.
    pub split_policy: SplitPolicy,
    /// At most this many shards migrate concurrently. Migration is the
    /// heaviest maintenance job; staggering it keeps the scan tail
    /// latency of an N-shard engine close to a single shard's instead
    /// of N migrations deep.
    pub max_concurrent_migrations: usize,
}

impl Default for ShardingConfig {
    fn default() -> Self {
        ShardingConfig {
            shards: 1,
            split_policy: SplitPolicy::Uniform,
            max_concurrent_migrations: 1,
        }
    }
}

/// Granularity of the run's read-only index (§3.5 "Granularity of Run
/// Index").
///
/// With the block-run format (`masm-blockrun`) this is the **data-block
/// size**: one zone-map entry indexes one block, so the granularity is
/// both the pruning resolution and the read I/O unit of a run. Fine
/// granularity (4 KB blocks) keeps a 4 KB range scan at ≈4 KB read per
/// run — the paper's headline ≤1.07× result; coarse granularity (64 KB
/// blocks, the §4.1 SSD page) minimizes metadata and per-I/O overhead
/// for large scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexGranularity {
    /// 64 KB blocks — minimal metadata, best for very large ranges.
    Coarse,
    /// 4 KB blocks — precise enough that a 4 KB range scan reads ≈4 KB
    /// per run (the paper's headline setting).
    Fine,
    /// Custom block size in bytes.
    Bytes(u64),
}

impl IndexGranularity {
    /// Bytes of cached updates covered by one index entry.
    pub fn bytes(&self) -> u64 {
        match self {
            IndexGranularity::Coarse => 64 * 1024,
            IndexGranularity::Fine => 4 * 1024,
            IndexGranularity::Bytes(b) => *b,
        }
    }
}

/// Configuration of a [`crate::engine::MasmEngine`].
#[derive(Debug, Clone)]
pub struct MasmConfig {
    /// SSD I/O page size `P` (64 KB in §4.1).
    pub ssd_page_size: usize,
    /// SSD update-cache capacity in bytes (`‖SSD‖ · P`).
    pub ssd_capacity: u64,
    /// Memory scale α ∈ (0, 2]: the algorithm uses `αM` pages of memory.
    /// α = 1 is MaSM-M, α = 2 is MaSM-2M.
    pub alpha: f64,
    /// Run index granularity.
    pub index_granularity: IndexGranularity,
    /// Fraction of SSD capacity at which the engine reports that
    /// migration is needed (90% in §1.2).
    pub migration_threshold: f64,
    /// Merge duplicate updates to the same key while materializing a
    /// sorted run, when no concurrent query timestamp falls between them
    /// (§3.5 "Handling Skews").
    pub merge_duplicates: bool,
    /// Byte offset of this engine's region on the shared SSD device.
    /// Several engines (one per table, §4.3) can divide one SSD.
    pub ssd_region_base: u64,
    /// Upper bound on a run's data-block size in bytes (the block-run
    /// read I/O unit; 64 KB by default, the paper's §4.1 SSD page). The
    /// effective block size is the finer of this and
    /// [`MasmConfig::index_granularity`].
    pub block_bytes: usize,
    /// Bloom-filter budget per materialized run, in bits per key
    /// (10 ⇒ ≈0.8% false positives); 0 disables run bloom filters.
    pub bloom_bits_per_key: u32,
    /// Per-block compression codec for materialized runs. Fixed choices
    /// always use that codec; [`CodecChoice::Adaptive`] trial-encodes
    /// each block and keeps the smallest output. Compression multiplies
    /// the effective SSD update cache and cuts merge-read bandwidth at
    /// the price of encode/decode CPU — the fig13-style trade the
    /// `fig13_cpu_cost` benchmark measures per codec.
    pub codec: CodecChoice,
    /// Capacity of the shared block cache holding decoded run blocks,
    /// in bytes (tier 1).
    pub block_cache_bytes: usize,
    /// Tier-1 replacement policy of the block cache.
    /// [`CachePolicy::Slru`] (the default) segments each shard into
    /// probation + protected so a one-shot table sweep larger than the
    /// cache cannot displace the hot point-lookup set;
    /// [`CachePolicy::Lru`] keeps the old single-list behavior as a
    /// benchmark baseline.
    pub cache_policy: CachePolicy,
    /// Fraction of tier-1 capacity reserved for the protected segment
    /// under [`CachePolicy::Slru`] (0.8 by default; ignored under
    /// [`CachePolicy::Lru`]).
    pub cache_protected_frac: f64,
    /// Capacity of the cache's compressed victim tier in **stored**
    /// (post-codec) bytes; 0 disables it. Tier-1 victims demote their
    /// compressed bytes here, so a re-reference costs one codec decode
    /// instead of a device read — the tier's effective block count is
    /// multiplied by the codec's compression ratio.
    pub cache_tier2_bytes: usize,
    /// Upper bound on the per-scan async prefetch depth of merge and
    /// migration reads. The merge planner drives the effective depth
    /// from its fan-in (k input runs ⇒ k reads in flight, §3.7 overlap
    /// at scale), clamped to this cap so a very wide merge cannot flood
    /// the device queue.
    pub merge_prefetch_cap: usize,
    /// Background worker threads. `0` (the default) keeps the engine's
    /// original inline execution: flushes and merges run on the caller's
    /// thread, deterministically. With `n > 0` the engine spawns `n`
    /// worker threads that drain a backlog queue of flush / compaction /
    /// migration jobs, so `apply_update` never pays a materialization
    /// inline and scans never pay a merge at setup — callers only
    /// throttle through the [`MasmConfig::worker_backlog_bytes`]
    /// backpressure gate.
    pub background_workers: usize,
    /// Backpressure bound on the flush backlog: when the bytes of
    /// sealed (drained-but-not-yet-materialized) update batches exceed
    /// this, `apply_update` blocks until a worker catches up. `0` means
    /// auto: 4× the update-buffer capacity. Ignored when
    /// [`MasmConfig::background_workers`] is 0.
    pub worker_backlog_bytes: u64,
    /// Number of independent move-segment reads a merge keeps in flight
    /// on the SSD (§3.7 overlap): a merge plan's `Move` segments are
    /// independent I/O, so their chunk reads are pipelined up to this
    /// depth. 1 restores strictly serial execution.
    pub device_queue_depth: usize,
    /// Key-range sharding over several per-range MaSM engines. The
    /// single-engine budgets above are *totals*: a sharded engine
    /// divides flash capacity, cache tiers, and the flush backlog
    /// evenly across shards (see [`MasmConfig::shard_config`]).
    pub sharding: ShardingConfig,
}

impl Default for MasmConfig {
    fn default() -> Self {
        MasmConfig {
            ssd_page_size: 64 * 1024,
            ssd_capacity: 4 * masm_storage::GIB,
            alpha: 1.0,
            index_granularity: IndexGranularity::Fine,
            migration_threshold: 0.9,
            merge_duplicates: true,
            ssd_region_base: 0,
            block_bytes: 64 * 1024,
            bloom_bits_per_key: 10,
            codec: CodecChoice::Delta,
            block_cache_bytes: 8 * 1024 * 1024,
            cache_policy: CachePolicy::Slru,
            cache_protected_frac: 0.8,
            cache_tier2_bytes: 4 * 1024 * 1024,
            merge_prefetch_cap: 16,
            background_workers: 0,
            worker_backlog_bytes: 0,
            device_queue_depth: 4,
            sharding: ShardingConfig::default(),
        }
    }
}

impl MasmConfig {
    /// A small configuration for unit tests: 4 KB SSD pages, tiny cache.
    pub fn small_for_tests() -> Self {
        MasmConfig {
            ssd_page_size: 4096,
            ssd_capacity: 1024 * 4096, // 1024 pages => M = 32
            alpha: 1.0,
            index_granularity: IndexGranularity::Bytes(1024),
            migration_threshold: 0.9,
            merge_duplicates: true,
            ssd_region_base: 0,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
            codec: CodecChoice::Delta,
            block_cache_bytes: 2 * 1024 * 1024,
            cache_policy: CachePolicy::Slru,
            cache_protected_frac: 0.8,
            cache_tier2_bytes: 1024 * 1024,
            merge_prefetch_cap: 8,
            background_workers: 0,
            worker_backlog_bytes: 0,
            device_queue_depth: 4,
            sharding: ShardingConfig::default(),
        }
    }

    /// Effective backpressure bound for the background-flush backlog
    /// (see [`MasmConfig::worker_backlog_bytes`]; 0 = 4× the update
    /// buffer).
    pub fn effective_backlog_bytes(&self) -> u64 {
        if self.worker_backlog_bytes > 0 {
            self.worker_backlog_bytes
        } else {
            4 * self.update_buffer_bytes()
        }
    }

    /// Effective prefetch depth for a merge of `fan_in` input runs.
    pub fn merge_prefetch_depth(&self, fan_in: usize) -> usize {
        fan_in.clamp(1, self.merge_prefetch_cap.max(1))
    }

    /// Stable fingerprint of the fields that shape the *durable* layout:
    /// SSD page/region geometry, run block format knobs, and the shard
    /// topology. Stored in the [`crate::ShardManifest`] and re-checked
    /// at [`crate::ShardedEngine::recover`], so recovering with a
    /// config whose on-flash layout disagrees with what was written is
    /// rejected up front instead of misreading runs. Runtime-only knobs
    /// (cache sizes, worker counts, α) deliberately do not participate:
    /// they may change freely across restarts.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a, 64-bit: dependency-free and stable across builds.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.ssd_page_size as u64);
        mix(self.ssd_capacity);
        mix(self.ssd_region_base);
        mix(self.block_bytes as u64);
        mix(self.index_granularity.bytes());
        mix(self.bloom_bits_per_key as u64);
        mix(self.sharding.shards as u64);
        h
    }

    /// MaSM-2M variant of this configuration.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// SSD capacity in pages: `‖SSD‖`.
    pub fn ssd_pages(&self) -> u64 {
        self.ssd_capacity / self.ssd_page_size as u64
    }

    /// `M = sqrt(‖SSD‖)` — the memory (in pages) of plain MaSM-M
    /// (two-pass external sort needs `sqrt` of the data size).
    pub fn m_pages(&self) -> u64 {
        (self.ssd_pages() as f64).sqrt().ceil() as u64
    }

    /// Total memory pages `αM` available to this configuration.
    pub fn total_memory_pages(&self) -> u64 {
        ((self.alpha * self.m_pages() as f64).round() as u64).max(2)
    }

    /// Total memory in bytes.
    pub fn total_memory_bytes(&self) -> u64 {
        self.total_memory_pages() * self.ssd_page_size as u64
    }

    /// `S_opt = 0.5αM`: pages dedicated to buffering incoming updates
    /// (Theorem 3.3).
    pub fn s_pages(&self) -> u64 {
        (self.total_memory_pages() / 2).max(1)
    }

    /// Update-buffer capacity in bytes (`S · P`).
    pub fn update_buffer_bytes(&self) -> u64 {
        self.s_pages() * self.ssd_page_size as u64
    }

    /// Query pages: `αM − S`, the bound on concurrently open sorted runs.
    pub fn query_pages(&self) -> u64 {
        (self.total_memory_pages() - self.s_pages()).max(1)
    }

    /// `N_opt` of Theorem 3.3: how many earliest 1-pass runs merge into a
    /// 2-pass run, clamped to at least 2 so a merge always shrinks the
    /// run count.
    pub fn n_merge(&self) -> u64 {
        let m = self.m_pages() as f64;
        let a = self.alpha;
        let denom = (4.0 / (a * a)).floor().max(1.0);
        let n = (1.0 / denom) * (2.0 / a - 0.5 * a) * m + 1.0;
        (n.round() as u64).clamp(2, self.query_pages().max(2))
    }

    /// Migration trigger level in bytes.
    pub fn migration_trigger_bytes(&self) -> u64 {
        (self.ssd_capacity as f64 * self.migration_threshold) as u64
    }

    /// Effective data-block size of materialized runs: the finer of the
    /// run-index granularity and the [`MasmConfig::block_bytes`] cap,
    /// never below the format's 64-byte minimum.
    pub fn effective_block_bytes(&self) -> usize {
        (self.index_granularity.bytes() as usize)
            .min(self.block_bytes)
            .max(64)
    }

    /// Parameters handed to `masm-blockrun` when materializing a run.
    pub fn blockrun_config(&self) -> masm_blockrun::BlockRunConfig {
        masm_blockrun::BlockRunConfig {
            block_bytes: self.effective_block_bytes(),
            bloom_bits_per_key: self.bloom_bits_per_key,
            codec: self.codec,
        }
    }

    /// Parameters of the engine's shared block cache: tier-1 capacity
    /// and policy, protected-segment sizing, and the compressed victim
    /// tier's budget.
    pub fn cache_config(&self) -> masm_blockrun::BlockCacheConfig {
        masm_blockrun::BlockCacheConfig {
            policy: self.cache_policy,
            protected_frac: self.cache_protected_frac,
            tier2_bytes: self.cache_tier2_bytes,
            ..masm_blockrun::BlockCacheConfig::new(self.block_cache_bytes)
        }
    }

    /// The configuration of shard `shard_id` under this config's
    /// [`ShardingConfig`]. Shared budgets divide evenly: flash capacity
    /// (rounded down to whole SSD pages), both block-cache tiers, and
    /// the flush-backlog bound each get a `1/shards` slice, so N shards
    /// together never exceed what the unsharded config would use. The
    /// per-shard memory (`αM` with `M = √‖SSD‖/N`) shrinks with the
    /// per-shard flash slice exactly as the paper's formulas dictate.
    /// The result is a valid `shards = 1` configuration or an error.
    pub fn shard_config(&self, shard_id: usize) -> MasmResult<MasmConfig> {
        let n = self.sharding.shards;
        if shard_id >= n {
            return Err(MasmError::Config(format!(
                "shard_id {shard_id} out of range for {n} shards"
            )));
        }
        let mut cfg = self.clone();
        cfg.sharding = ShardingConfig {
            shards: 1,
            split_policy: SplitPolicy::Uniform,
            max_concurrent_migrations: self.sharding.max_concurrent_migrations,
        };
        let page = self.ssd_page_size as u64;
        let per = self.ssd_capacity / n as u64;
        cfg.ssd_capacity = per - per % page;
        cfg.block_cache_bytes = self.block_cache_bytes / n;
        cfg.cache_tier2_bytes = self.cache_tier2_bytes / n;
        cfg.worker_backlog_bytes = self.worker_backlog_bytes / n as u64;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validate invariants; call before constructing an engine.
    pub fn validate(&self) -> MasmResult<()> {
        if self.ssd_page_size < 1024 {
            return Err(MasmError::Config("ssd_page_size must be ≥ 1 KiB".into()));
        }
        if self.ssd_capacity < (self.ssd_page_size as u64) * 4 {
            return Err(MasmError::Config("ssd_capacity too small".into()));
        }
        let m = self.m_pages() as f64;
        let min_alpha = 2.0 / m.cbrt();
        if !(self.alpha > 0.0 && self.alpha <= 2.0) {
            return Err(MasmError::Config(format!(
                "alpha must be in (0, 2], got {}",
                self.alpha
            )));
        }
        if self.alpha < min_alpha {
            return Err(MasmError::Config(format!(
                "alpha {} below lower bound 2/M^(1/3) = {min_alpha:.4} (3-pass sorts \
                 would be required; see §3.4)",
                self.alpha
            )));
        }
        if !(0.0..=1.0).contains(&self.migration_threshold) {
            return Err(MasmError::Config(
                "migration_threshold must be in [0,1]".into(),
            ));
        }
        if self.block_bytes < 64 {
            return Err(MasmError::Config("block_bytes must be ≥ 64".into()));
        }
        if self.merge_prefetch_cap == 0 {
            return Err(MasmError::Config("merge_prefetch_cap must be ≥ 1".into()));
        }
        if self.device_queue_depth == 0 {
            return Err(MasmError::Config("device_queue_depth must be ≥ 1".into()));
        }
        if self.background_workers > 64 {
            return Err(MasmError::Config("background_workers must be ≤ 64".into()));
        }
        if !(0.0..=1.0).contains(&self.cache_protected_frac) {
            return Err(MasmError::Config(
                "cache_protected_frac must be in [0,1]".into(),
            ));
        }
        let sh = &self.sharding;
        if sh.shards == 0 || sh.shards > 64 {
            return Err(MasmError::Config("shards must be in 1..=64".into()));
        }
        if sh.max_concurrent_migrations == 0 {
            return Err(MasmError::Config(
                "max_concurrent_migrations must be ≥ 1".into(),
            ));
        }
        if self.ssd_capacity / (sh.shards as u64) < (self.ssd_page_size as u64) * 4 {
            return Err(MasmError::Config(
                "ssd_capacity too small to divide across shards".into(),
            ));
        }
        if let SplitPolicy::Explicit(splits) = &sh.split_policy {
            if splits.len() != sh.shards - 1 {
                return Err(MasmError::Config(format!(
                    "{} shards need exactly {} explicit split points, got {}",
                    sh.shards,
                    sh.shards - 1,
                    splits.len()
                )));
            }
            if splits.first().is_some_and(|&s| s == 0) || splits.windows(2).any(|w| w[0] >= w[1]) {
                return Err(MasmError::Config(
                    "explicit split points must be strictly ascending and non-zero".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_layout_not_runtime_knobs() {
        let base = MasmConfig::small_for_tests();
        assert_eq!(base.fingerprint(), base.fingerprint());
        let mut runtime = base.clone();
        runtime.background_workers = 4;
        runtime.block_cache_bytes *= 2;
        runtime.alpha = 2.0;
        assert_eq!(base.fingerprint(), runtime.fingerprint());
        let mut layout = base.clone();
        layout.ssd_page_size *= 2;
        assert_ne!(base.fingerprint(), layout.fingerprint());
        let mut topo = base.clone();
        topo.sharding.shards = 2;
        assert_ne!(base.fingerprint(), topo.fingerprint());
    }

    #[test]
    fn paper_defaults_give_16mb_memory() {
        // §4.1: 4 GB flash, 64 KB pages => M = 256 pages = 16 MB.
        let c = MasmConfig::default();
        assert_eq!(c.ssd_pages(), 65536);
        assert_eq!(c.m_pages(), 256);
        assert_eq!(c.total_memory_pages(), 256);
        assert_eq!(c.total_memory_bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn masm_m_split_matches_theorem_3_2() {
        // S_opt = 0.5 M = 128; N_opt = 0.375 M + 1 = 97.
        let c = MasmConfig::default();
        assert_eq!(c.s_pages(), 128);
        assert_eq!(c.n_merge(), 97);
        assert_eq!(c.query_pages(), 128);
    }

    #[test]
    fn masm_2m_never_needs_merges() {
        let c = MasmConfig::default().with_alpha(2.0);
        assert_eq!(c.total_memory_pages(), 512);
        assert_eq!(c.s_pages(), 256); // buffer of M pages
        assert_eq!(c.query_pages(), 256); // can hold all M runs
                                          // N degenerates (no merging is ever triggered since runs ≤ M).
        assert!(c.n_merge() >= 2);
    }

    #[test]
    fn validation_rejects_bad_alpha() {
        assert!(MasmConfig::default().with_alpha(0.0).validate().is_err());
        assert!(MasmConfig::default().with_alpha(2.5).validate().is_err());
        // Below 2/M^(1/3) = 2/6.35 ≈ 0.315 for M=256.
        assert!(MasmConfig::default().with_alpha(0.2).validate().is_err());
        assert!(MasmConfig::default().with_alpha(0.4).validate().is_ok());
        assert!(MasmConfig::default().validate().is_ok());
    }

    #[test]
    fn index_granularities() {
        assert_eq!(IndexGranularity::Coarse.bytes(), 65536);
        assert_eq!(IndexGranularity::Fine.bytes(), 4096);
        assert_eq!(IndexGranularity::Bytes(512).bytes(), 512);
    }

    #[test]
    fn effective_block_size_is_finer_of_granularity_and_cap() {
        let mut c = MasmConfig::default();
        assert_eq!(c.effective_block_bytes(), 4096, "fine granularity wins");
        c.index_granularity = IndexGranularity::Coarse;
        assert_eq!(c.effective_block_bytes(), 65536, "cap applies");
        c.index_granularity = IndexGranularity::Bytes(16);
        assert_eq!(c.effective_block_bytes(), 64, "floor applies");
        assert_eq!(c.blockrun_config().bloom_bits_per_key, 10);
        assert_eq!(c.blockrun_config().codec, CodecChoice::Delta);
        c.codec = CodecChoice::Adaptive;
        assert_eq!(c.blockrun_config().codec, CodecChoice::Adaptive);
    }

    #[test]
    fn merge_prefetch_depth_follows_fan_in_up_to_cap() {
        let c = MasmConfig::small_for_tests(); // cap = 8
        assert_eq!(c.merge_prefetch_depth(0), 1);
        assert_eq!(c.merge_prefetch_depth(3), 3);
        assert_eq!(c.merge_prefetch_depth(100), 8);
        let bad = MasmConfig {
            merge_prefetch_cap: 0,
            ..MasmConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn cache_config_carries_policy_and_tiers() {
        let mut c = MasmConfig::default();
        let cc = c.cache_config();
        assert_eq!(cc.policy, CachePolicy::Slru);
        assert!((cc.protected_frac - 0.8).abs() < 1e-9);
        assert_eq!(cc.capacity_bytes, c.block_cache_bytes);
        assert_eq!(cc.tier2_bytes, c.cache_tier2_bytes);
        c.cache_policy = CachePolicy::Lru;
        c.cache_tier2_bytes = 0;
        assert_eq!(c.cache_config().policy, CachePolicy::Lru);
        assert_eq!(c.cache_config().tier2_bytes, 0);
        c.cache_protected_frac = 1.5;
        assert!(c.validate().is_err(), "protected fraction out of range");
    }

    #[test]
    fn validation_rejects_tiny_blocks() {
        let c = MasmConfig {
            block_bytes: 16,
            ..MasmConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_test_config_is_valid() {
        let c = MasmConfig::small_for_tests();
        c.validate().unwrap();
        assert_eq!(c.m_pages(), 32);
        assert_eq!(c.s_pages(), 16);
    }

    #[test]
    fn shard_config_divides_budgets() {
        let mut c = MasmConfig::default();
        c.sharding.shards = 4;
        c.validate().unwrap();
        let s = c.shard_config(2).unwrap();
        assert_eq!(s.sharding.shards, 1, "per-shard config is unsharded");
        assert_eq!(s.ssd_capacity, masm_storage::GIB);
        assert_eq!(s.ssd_capacity % s.ssd_page_size as u64, 0);
        assert_eq!(s.block_cache_bytes, c.block_cache_bytes / 4);
        assert_eq!(s.cache_tier2_bytes, c.cache_tier2_bytes / 4);
        // Per-shard memory shrinks with the flash slice: M = √(‖SSD‖/4).
        assert_eq!(s.m_pages(), 128);
        assert!(c.shard_config(4).is_err(), "shard_id out of range");
        // Four shard slices never exceed the unsharded budget.
        let total: u64 = (0..4)
            .map(|i| c.shard_config(i).unwrap().ssd_capacity)
            .sum();
        assert!(total <= c.ssd_capacity);
    }

    #[test]
    fn validation_rejects_bad_sharding() {
        let mut c = MasmConfig::default();
        c.sharding.shards = 0;
        assert!(c.validate().is_err());
        c.sharding.shards = 65;
        assert!(c.validate().is_err());
        c.sharding.shards = 2;
        c.sharding.max_concurrent_migrations = 0;
        assert!(c.validate().is_err());
        c.sharding.max_concurrent_migrations = 1;
        c.sharding.split_policy = SplitPolicy::Explicit(vec![]);
        assert!(c.validate().is_err(), "wrong split count");
        c.sharding.split_policy = SplitPolicy::Explicit(vec![0]);
        assert!(c.validate().is_err(), "zero split");
        c.sharding.split_policy = SplitPolicy::Explicit(vec![1 << 32]);
        assert!(c.validate().is_ok());
        c.sharding.shards = 3;
        c.sharding.split_policy = SplitPolicy::Explicit(vec![100, 100]);
        assert!(c.validate().is_err(), "splits must strictly ascend");
        // Dividing a tiny flash budget across shards must fail loudly.
        let mut tiny = MasmConfig::small_for_tests();
        tiny.ssd_capacity = 4 * 4096;
        tiny.sharding.shards = 2;
        assert!(tiny.validate().is_err());
    }
}
