//! Secondary indexes over MaSM-managed tables (§5 "Secondary Index").
//!
//! An index scan over an attribute `Y` runs in two steps: search the
//! secondary index for the record keys in `[Y_begin, Y_end]`, then fetch
//! those records. With MaSM the fetched records must still merge the
//! cached updates, and — the special case the paper calls out — an
//! incoming update may *modify Y itself*, so a "secondary update index"
//! over the cached updates is consulted too: it contributes keys whose
//! pending updates put them into (or take them out of) the queried `Y`
//! range.
//!
//! This implementation keeps both sides in memory (the paper's base
//! secondary index is a regular disk B-tree; its inner nodes are
//! memory-resident in any warm system, and our focus is the MaSM-side
//! mechanics): a `BTreeSet<(Y, key)>` over the base table, maintained
//! lazily from migrations, plus a `BTreeSet<(Y, key)>` over the cached
//! updates. Lookups over-approximate the candidate key set and then
//! verify each candidate through a point merged-read — functionally
//! correct per §5 even when Y values move in or out of the range.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;

use masm_pagestore::{Key, Record};
use masm_storage::SessionHandle;

use crate::engine::MasmEngine;
use crate::error::MasmResult;
use crate::update::UpdateOp;

/// A secondary index on one fixed-width field of the schema.
pub struct SecondaryIndex {
    engine: Arc<MasmEngine>,
    field: usize,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    /// `(Y value, key)` over the base table (as of the last refresh).
    base: BTreeSet<(Vec<u8>, Key)>,
    /// `(Y value, key)` over cached updates that carry a Y value
    /// (inserts/replaces, and modifies touching Y).
    updates: BTreeSet<(Vec<u8>, Key)>,
    /// Keys with *any* pending update (a delete may remove a record
    /// from the range; a modify may change Y away) — candidates for
    /// re-verification.
    touched: BTreeSet<Key>,
}

impl SecondaryIndex {
    /// Build the index on `field` by scanning the current table state.
    pub fn build(
        engine: &Arc<MasmEngine>,
        session: &SessionHandle,
        field: usize,
    ) -> MasmResult<SecondaryIndex> {
        let idx = SecondaryIndex {
            engine: Arc::clone(engine),
            field,
            inner: Mutex::new(Inner::default()),
        };
        idx.rebuild(session)?;
        Ok(idx)
    }

    /// Rebuild the base side from a full merged scan (e.g. after a
    /// migration; the paper maintains the disk B-tree incrementally —
    /// we rebuild for simplicity, the lookup semantics are identical).
    pub fn rebuild(&self, session: &SessionHandle) -> MasmResult<()> {
        let schema = self.engine.schema().clone();
        let mut inner = self.inner.lock();
        inner.base.clear();
        inner.updates.clear();
        inner.touched.clear();
        for record in self.engine.begin_scan(session.clone(), 0, u64::MAX)? {
            let y = schema.get(&record.payload, self.field).to_vec();
            inner.base.insert((y, record.key));
        }
        Ok(())
    }

    /// Route an update through the index (call alongside
    /// [`MasmEngine::apply_update`]; see [`SecondaryIndex::apply_update`]
    /// for the combined helper).
    pub fn note_update(&self, key: Key, op: &UpdateOp) {
        let schema = self.engine.schema();
        let mut inner = self.inner.lock();
        inner.touched.insert(key);
        match op {
            UpdateOp::Insert(p) | UpdateOp::Replace(p) => {
                let y = schema.get(p, self.field).to_vec();
                inner.updates.insert((y, key));
            }
            UpdateOp::Modify(patches) => {
                for patch in patches {
                    if patch.field as usize == self.field {
                        inner.updates.insert((patch.value.clone(), key));
                    }
                }
            }
            UpdateOp::Delete => {}
        }
    }

    /// Apply an update to the engine and the index atomically enough
    /// for single-statement semantics.
    pub fn apply_update(&self, session: &SessionHandle, key: Key, op: UpdateOp) -> MasmResult<u64> {
        self.note_update(key, &op);
        self.engine.apply_update(session, key, op)
    }

    /// Index scan: every current record whose `Y ∈ [y_begin, y_end]`,
    /// in key order. Candidates come from both index sides; each is
    /// verified with a point merged-read (one small range scan), exactly
    /// the two-step plan of §5 with update-awareness.
    pub fn index_scan(
        &self,
        session: &SessionHandle,
        y_begin: &[u8],
        y_end: &[u8],
    ) -> MasmResult<Vec<Record>> {
        // Candidates: base hits (which pending deletes/modifies may have
        // invalidated — verification below catches that) plus
        // update-side hits (keys whose pending updates may have *entered*
        // the range).
        let candidates: BTreeSet<Key> = {
            let inner = self.inner.lock();
            let range = (y_begin.to_vec(), Key::MIN)..=(y_end.to_vec(), Key::MAX);
            let mut c: BTreeSet<Key> = inner.base.range(range.clone()).map(|(_, k)| *k).collect();
            c.extend(inner.updates.range(range).map(|(_, k)| *k));
            c
        };

        let schema = self.engine.schema().clone();
        let mut out = Vec::new();
        for key in candidates {
            // Point merged-read: sees base data + all cached updates.
            if let Some(record) = self.engine.begin_scan(session.clone(), key, key)?.next() {
                let y = schema.get(&record.payload, self.field);
                if y >= y_begin && y <= y_end {
                    out.push(record);
                }
            }
        }
        Ok(out)
    }

    /// Memory used by the update-side index, in entries.
    pub fn update_index_len(&self) -> usize {
        self.inner.lock().updates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MasmConfig;
    use crate::update::FieldPatch;
    use masm_pagestore::{HeapConfig, Schema, TableHeap};
    use masm_storage::{DeviceProfile, SimClock, SimDevice};

    fn schema() -> Schema {
        Schema::synthetic_100b()
    }

    fn payload(v: u32) -> Vec<u8> {
        let s = schema();
        let mut p = s.empty_payload();
        s.set_u32(&mut p, 0, v);
        p
    }

    fn setup() -> (Arc<MasmEngine>, SessionHandle) {
        let clock = SimClock::new();
        let disk = SimDevice::in_memory(DeviceProfile::hdd_barracuda(), clock.clone());
        let ssd = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let wal = SimDevice::in_memory(DeviceProfile::ssd_x25e(), clock.clone());
        let heap = Arc::new(TableHeap::new(disk, HeapConfig::default()));
        let engine =
            MasmEngine::new(heap, ssd, wal, schema(), MasmConfig::small_for_tests()).unwrap();
        let session = SessionHandle::fresh(clock);
        // measure = key/2 (record i has measure i).
        engine
            .load_table(
                &session,
                (0..200u64).map(|i| Record::new(i * 2, payload(i as u32))),
                1.0,
            )
            .unwrap();
        (engine, session)
    }

    fn y(v: u32) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    fn keys_of(records: &[Record]) -> Vec<Key> {
        records.iter().map(|r| r.key).collect()
    }

    #[test]
    fn base_index_scan_finds_value_range() {
        let (engine, s) = setup();
        let idx = SecondaryIndex::build(&engine, &s, 0).unwrap();
        let got = idx.index_scan(&s, &y(10), &y(12)).unwrap();
        // measures 10, 11, 12 → keys 20, 22, 24 (byte-wise LE compare of
        // u32 equals numeric compare only within same-magnitude values;
        // these small consecutive values are safe).
        assert_eq!(keys_of(&got), vec![20, 22, 24]);
    }

    #[test]
    fn inserted_records_found_through_update_index() {
        let (engine, s) = setup();
        let idx = SecondaryIndex::build(&engine, &s, 0).unwrap();
        idx.apply_update(&s, 401, UpdateOp::Insert(payload(11)))
            .unwrap();
        let got = idx.index_scan(&s, &y(11), &y(11)).unwrap();
        assert_eq!(keys_of(&got), vec![22, 401]);
        assert!(idx.update_index_len() > 0);
    }

    #[test]
    fn modify_moves_record_between_y_ranges() {
        let (engine, s) = setup();
        let idx = SecondaryIndex::build(&engine, &s, 0).unwrap();
        // Move key 20's measure from 10 to 99.
        idx.apply_update(
            &s,
            20,
            UpdateOp::Modify(vec![FieldPatch {
                field: 0,
                value: 99u32.to_le_bytes().to_vec(),
            }]),
        )
        .unwrap();
        let old_range = idx.index_scan(&s, &y(10), &y(10)).unwrap();
        assert!(keys_of(&old_range).is_empty(), "left the old range");
        let new_range = idx.index_scan(&s, &y(99), &y(99)).unwrap();
        assert_eq!(keys_of(&new_range), vec![20, 198]);
    }

    #[test]
    fn deleted_records_disappear_from_index_scans() {
        let (engine, s) = setup();
        let idx = SecondaryIndex::build(&engine, &s, 0).unwrap();
        idx.apply_update(&s, 30, UpdateOp::Delete).unwrap();
        let got = idx.index_scan(&s, &y(15), &y(15)).unwrap();
        assert!(keys_of(&got).is_empty());
    }

    #[test]
    fn rebuild_after_migration_stays_consistent() {
        let (engine, s) = setup();
        let idx = SecondaryIndex::build(&engine, &s, 0).unwrap();
        idx.apply_update(&s, 401, UpdateOp::Insert(payload(50)))
            .unwrap();
        idx.apply_update(&s, 100, UpdateOp::Delete).unwrap();
        let before = keys_of(&idx.index_scan(&s, &y(49), &y(51)).unwrap());
        engine.migrate(&s).unwrap();
        idx.rebuild(&s).unwrap();
        let after = keys_of(&idx.index_scan(&s, &y(49), &y(51)).unwrap());
        assert_eq!(before, after);
        assert_eq!(idx.update_index_len(), 0, "update side drained by rebuild");
    }
}
