//! Closed-form models from the paper: Theorems 3.2/3.3, the LSM
//! write-amplification analysis of §2.3, and the migration-overhead
//! trade-off behind Figure 1 and §3.7.

/// Average SSD writes per update record for MaSM-M (Theorem 3.2):
/// `1.75 + 2/M`.
pub fn masm_m_writes_per_update(m_pages: u64) -> f64 {
    1.75 + 2.0 / m_pages as f64
}

/// Average SSD writes per update record for MaSM-αM (Theorem 3.3):
/// roughly `2 − 0.25 α²`.
pub fn masm_alpha_writes_per_update(alpha: f64) -> f64 {
    2.0 - 0.25 * alpha * alpha
}

/// Optimal `(S, N)` for MaSM-αM (Theorem 3.3): `S_opt = 0.5αM`,
/// `N_opt = (1/⌊4/α²⌋)(2/α − 0.5α)M + 1`.
pub fn masm_alpha_params(alpha: f64, m_pages: u64) -> (u64, u64) {
    let m = m_pages as f64;
    let s = (0.5 * alpha * m).round() as u64;
    let denom = (4.0 / (alpha * alpha)).floor().max(1.0);
    let n = ((1.0 / denom) * (2.0 / alpha - 0.5 * alpha) * m + 1.0).round() as u64;
    (s, n.max(1))
}

/// LSM writes per update entry (§2.3): with `h` SSD-resident levels in a
/// geometric progression of ratio `r = (flash/mem)^(1/h)`, levels
/// `1..h-1` cost about `r + 1` writes each and level `h` costs
/// `(r + 1)/2`.
pub fn lsm_writes_per_update(flash_pages: u64, mem_pages: u64, h: u32) -> f64 {
    assert!(h >= 1);
    let ratio = flash_pages as f64 / mem_pages as f64;
    let r = ratio.powf(1.0 / h as f64);
    (h as f64 - 1.0) * (r + 1.0) + (r + 1.0) / 2.0
}

/// The `h` minimizing [`lsm_writes_per_update`], searched over 1..=16.
pub fn lsm_optimal_levels(flash_pages: u64, mem_pages: u64) -> (u32, f64) {
    (1..=16u32)
        .map(|h| (h, lsm_writes_per_update(flash_pages, mem_pages, h)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty range")
}

/// Migration model behind Figure 1 and §3.7.
///
/// A migration scans the whole DW and writes it back:
/// `cost ≈ 2 · disk_bytes / disk_bw` seconds, amortized over the bytes of
/// updates the cache absorbs between migrations. The *overhead rate*
/// (seconds of migration per byte of ingested updates) is therefore
/// `2 · disk_bytes / (disk_bw · cache_bytes)`.
#[derive(Debug, Clone, Copy)]
pub struct MigrationModel {
    /// Main-data size in bytes.
    pub disk_bytes: f64,
    /// Disk sequential bandwidth in bytes/s.
    pub disk_bw: f64,
    /// SSD page size P in bytes.
    pub ssd_page: f64,
}

impl MigrationModel {
    /// The paper's setup: 100 GB table, 77 MB/s disk, 64 KB SSD pages.
    pub fn paper_defaults() -> Self {
        MigrationModel {
            disk_bytes: 100.0e9,
            disk_bw: 77.0e6,
            ssd_page: 65536.0,
        }
    }

    /// Seconds of one full migration (scan + write back).
    pub fn migration_seconds(&self) -> f64 {
        2.0 * self.disk_bytes / self.disk_bw
    }

    /// Overhead rate for the **prior approach** (in-memory update cache
    /// of `mem_bytes`): migration cost amortized over `mem_bytes` of
    /// updates. Halving migration overhead needs doubling memory.
    pub fn in_memory_overhead(&self, mem_bytes: f64) -> f64 {
        self.migration_seconds() / mem_bytes
    }

    /// Overhead rate for **MaSM-αM** with `mem_bytes = αM·P` of memory:
    /// the SSD cache holds `M²·P = mem²/(α²P)` bytes, so the overhead
    /// falls with the *square* of memory (§3.7: doubling memory cuts
    /// migration frequency 4×).
    pub fn masm_overhead(&self, mem_bytes: f64, alpha: f64) -> f64 {
        let cache_bytes = (mem_bytes * mem_bytes) / (alpha * alpha * self.ssd_page);
        self.migration_seconds() / cache_bytes
    }

    /// SSD cache size (bytes) reachable with `mem_bytes` of memory.
    pub fn masm_cache_bytes(&self, mem_bytes: f64, alpha: f64) -> f64 {
        (mem_bytes * mem_bytes) / (alpha * alpha * self.ssd_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_3_2_value() {
        // M = 256 (the paper's 4 GB flash / 64 KB pages).
        let w = masm_m_writes_per_update(256);
        assert!((w - 1.7578).abs() < 1e-3, "got {w}");
    }

    #[test]
    fn theorem_3_3_endpoints() {
        assert!((masm_alpha_writes_per_update(1.0) - 1.75).abs() < 1e-9);
        assert!((masm_alpha_writes_per_update(2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_params_match_theorems() {
        let (s, n) = masm_alpha_params(1.0, 256);
        assert_eq!(s, 128); // 0.5 M
        assert_eq!(n, 97); // 0.375 M + 1
        let (s2, _) = masm_alpha_params(2.0, 256);
        assert_eq!(s2, 256); // M pages of buffer for MaSM-2M
    }

    #[test]
    fn lsm_write_amp_matches_paper_examples() {
        // 4 GB flash / 16 MB memory in 64 KB pages: 65536 / 256.
        let w1 = lsm_writes_per_update(65536, 256, 1);
        assert!((w1 - 128.5).abs() < 1.0, "h=1 got {w1}");
        let w4 = lsm_writes_per_update(65536, 256, 4);
        assert!((17.0 - w4).abs() < 1.0, "h=4 got {w4}");
        let (h_opt, w_opt) = lsm_optimal_levels(65536, 256);
        assert_eq!(h_opt, 4, "paper: optimal LSM has h = 4");
        assert!(w_opt < 18.0);
    }

    #[test]
    fn masm_overhead_quadratic_in_memory() {
        let m = MigrationModel::paper_defaults();
        let o1 = m.masm_overhead(16.0e6, 1.0);
        let o2 = m.masm_overhead(32.0e6, 1.0);
        let ratio = o1 / o2;
        assert!(
            (ratio - 4.0).abs() < 0.01,
            "doubling memory → 4× lower: {ratio}"
        );
        // Prior approach: only 2×.
        let p1 = m.in_memory_overhead(16.0e6);
        let p2 = m.in_memory_overhead(32.0e6);
        assert!((p1 / p2 - 2.0).abs() < 0.01);
    }

    #[test]
    fn paper_footprint_example() {
        // §3.7: with P = 64 KB, a 32 MB MaSM-M buffer matches the
        // migration overhead of a 16 GB in-memory cache.
        let m = MigrationModel::paper_defaults();
        let masm = m.masm_cache_bytes(32.0 * 1024.0 * 1024.0, 1.0); // 32 MiB
        let target = 16.0 * 1024.0 * 1024.0 * 1024.0; // 16 GiB
        let ratio = masm / target;
        assert!((0.9..1.1).contains(&ratio), "got ratio {ratio}");
    }
}
