//! Key-range sharding: a [`ShardRouter`] partitions the keyspace into
//! contiguous ranges and a [`ShardedEngine`] runs one [`MasmEngine`]
//! per range over its own SSD region, WAL device, and memory budget.
//!
//! Why shard a MaSM engine? The single-engine design serializes three
//! things on one flash device and one state lock: run writes (flushes
//! and merges), migration traffic, and the buffer seal path. Splitting
//! the keyspace gives each shard its own device queue and its own lock,
//! so N ingest lanes hitting N shards absorb updates in parallel while
//! *each shard individually* preserves the paper's design goals — in
//! particular design goal 2: every shard's SSD sees only sequential
//! writes (`random_writes == 0` per shard, asserted by tests and the
//! `fig_sharded_ingest` bench).
//!
//! Consistency across shards comes from two shared pieces:
//!
//! * **One timestamp oracle.** Every shard draws commit timestamps from
//!   the same [`TimestampOracle`] (cloned handles share the counter), so
//!   there is a single global commit order even though shards ingest
//!   concurrently.
//! * **One query timestamp per cross-shard scan.** A
//!   [`ShardedEngine::scan`] draws one timestamp and opens a pinned
//!   snapshot scan *in every overlapping shard* at that timestamp before
//!   returning — one consistent cut of the whole table. Because shard
//!   ranges are contiguous and disjoint, the k-way merge of per-shard
//!   iterators degenerates to concatenation in shard order.
//!
//! Maintenance is shared, not duplicated: all shards feed one
//! `WorkerPool` with shard-tagged jobs. The pool staggers migrations
//! (at most [`crate::config::ShardingConfig::max_concurrent_migrations`]
//! shards migrate at once) so the scan-latency spike of an in-place
//! migration is never multiplied by the shard count.

use std::collections::VecDeque;
use std::sync::Arc;

use masm_pagestore::{Key, Record, Schema, TableHeap};
use masm_storage::{SessionHandle, SimDevice};
use masm_telemetry::json::JsonObj;
use masm_telemetry::{current_tid, EngineStats, Registry, Tracer, TrackId, Unit};

use crate::config::{MasmConfig, ShardingConfig, SplitPolicy};
use crate::engine::{
    apply_heap_events, MasmEngine, MergeScan, MigrationReport, ParsedWal, RecoveryReport,
};
use crate::error::{MasmError, MasmResult};
use crate::manifest::ShardManifest;
use crate::ts::{Timestamp, TimestampOracle};
use crate::update::UpdateOp;
use crate::worker::{WorkerHandle, WorkerPool};

/// Partitions `u64` keyspace into `splits.len() + 1` contiguous ranges.
///
/// `splits` are the *lower bounds of every shard but the first*, kept
/// strictly ascending and non-zero: shard `i` owns `[splits[i-1],
/// splits[i])` (first shard starts at 0, last ends at `u64::MAX`
/// inclusive). Routing is total — every `u64` maps to exactly one
/// shard, including the boundary keys themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    splits: Vec<Key>,
}

impl ShardRouter {
    /// Evenly spaced split points over the full `u64` keyspace.
    #[must_use]
    pub fn uniform(shards: usize) -> Self {
        let n = shards.max(1) as u64;
        let stride = u64::MAX / n;
        ShardRouter {
            splits: (1..n).map(|i| i * stride).collect(),
        }
    }

    /// Learn split points from a key sample: quantile boundaries over
    /// the sorted, deduplicated sample, nudged upward where duplicates
    /// collapse quantiles so the splits stay strictly ascending. An
    /// empty sample falls back to [`ShardRouter::uniform`].
    #[must_use]
    pub fn from_sample(shards: usize, sample: &[Key]) -> Self {
        if sample.is_empty() || shards <= 1 {
            return Self::uniform(shards);
        }
        let mut keys = sample.to_vec();
        keys.sort_unstable();
        keys.dedup();
        let mut splits = Vec::with_capacity(shards - 1);
        let mut last: Key = 0;
        for i in 1..shards {
            let candidate = keys[i * keys.len() / shards];
            let split = candidate.max(last.saturating_add(1));
            splits.push(split);
            last = split;
        }
        ShardRouter { splits }
    }

    /// Explicit split points; must be strictly ascending and non-zero.
    pub fn from_splits(splits: Vec<Key>) -> MasmResult<Self> {
        if splits.first() == Some(&0) {
            return Err(MasmError::Config(
                "split point 0 leaves the first shard empty".into(),
            ));
        }
        if splits.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MasmError::Config(
                "split points must be strictly ascending".into(),
            ));
        }
        Ok(ShardRouter { splits })
    }

    /// Build the router a [`ShardingConfig`] describes.
    pub fn from_config(cfg: &ShardingConfig) -> MasmResult<Self> {
        let router = match &cfg.split_policy {
            SplitPolicy::Uniform => Self::uniform(cfg.shards),
            SplitPolicy::Sampled(sample) => Self::from_sample(cfg.shards, sample),
            SplitPolicy::Explicit(splits) => Self::from_splits(splits.clone())?,
        };
        if router.shards() != cfg.shards {
            return Err(MasmError::Config(format!(
                "router has {} shards, config wants {}",
                router.shards(),
                cfg.shards
            )));
        }
        Ok(router)
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.splits.len() + 1
    }

    /// The shard owning `key` (total over all of `u64`).
    #[must_use]
    pub fn route(&self, key: Key) -> usize {
        self.splits.partition_point(|&s| s <= key)
    }

    /// Shard `i`'s inclusive key range `[lo, hi]`.
    #[must_use]
    pub fn shard_range(&self, shard: usize) -> (Key, Key) {
        let lo = if shard == 0 {
            0
        } else {
            self.splits[shard - 1]
        };
        let hi = self.splits.get(shard).map_or(u64::MAX, |&next| next - 1);
        (lo, hi)
    }

    /// The split points (lower bounds of shards `1..`).
    #[must_use]
    pub fn split_points(&self) -> &[Key] {
        &self.splits
    }
}

/// Aggregated statistics of a sharded engine: one summed snapshot, the
/// per-shard rows behind it, and the load-balance gauge.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    /// Fold-merge of every shard's [`EngineStats`] (counters summed,
    /// pool-global worker gauges maxed — see [`EngineStats::merge`]).
    pub total: EngineStats,
    /// Each shard's own snapshot, indexed by shard id.
    pub per_shard: Vec<EngineStats>,
    /// Max over mean of per-shard ingested bytes (1.0 = perfectly
    /// balanced; 0.0 before any ingest).
    pub shard_imbalance: f64,
}

impl ShardedStats {
    /// One NDJSON row for shard `i`: `{"shard_id":i,"stats":{…}}`. The
    /// nested stats object keeps `random_writes` at its top level, so
    /// the zero-random-writes invariant stays greppable per shard.
    #[must_use]
    pub fn shard_row(&self, shard: usize) -> String {
        let mut o = JsonObj::new();
        o.u64("shard_id", shard as u64)
            .raw("stats", &self.per_shard[shard].to_json());
        o.finish()
    }
}

/// Aggregated outcome of [`ShardedEngine::recover`].
#[derive(Debug, Clone, Default)]
pub struct ShardedRecoveryReport {
    /// Per-shard recovery reports, indexed by shard id.
    pub per_shard: Vec<RecoveryReport>,
    /// Interrupted migrations re-driven to completion.
    pub migrations_redriven: usize,
}

impl ShardedRecoveryReport {
    /// Updates restored into in-memory buffers, across all shards.
    #[must_use]
    pub fn updates_recovered(&self) -> u64 {
        self.per_shard.iter().map(|r| r.updates_recovered).sum()
    }

    /// Materialized runs re-registered, across all shards.
    #[must_use]
    pub fn runs_recovered(&self) -> usize {
        self.per_shard.iter().map(|r| r.runs_recovered).sum()
    }

    /// WAL records replayed, across all shards.
    #[must_use]
    pub fn wal_records_replayed(&self) -> u64 {
        self.per_shard.iter().map(|r| r.wal_records_replayed).sum()
    }

    /// WAL bytes truncated as torn tails, across all shards.
    #[must_use]
    pub fn wal_torn_bytes(&self) -> u64 {
        self.per_shard.iter().map(|r| r.wal_torn_bytes).sum()
    }

    /// Shards whose redo log ended in a (truncated) torn tail.
    #[must_use]
    pub fn torn_tails(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|r| r.wal_torn_bytes > 0)
            .count()
    }
}

/// N key-range shards behind one router, one timestamp domain, and one
/// background worker pool.
pub struct ShardedEngine {
    router: ShardRouter,
    shards: Vec<Arc<MasmEngine>>,
    oracle: TimestampOracle,
    workers: Option<WorkerHandle>,
    /// Sharding-level metrics (the per-shard registries live in the
    /// shard engines).
    registry: Registry,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("splits", &self.router.split_points())
            .finish()
    }
}

impl ShardedEngine {
    /// Build `cfg.sharding.shards` shard engines over a shared heap.
    /// `ssds` and `wals` supply one device per shard (each shard's run
    /// region and redo log are its own device queue — that independence
    /// is where the ingest scaling comes from). Budgets in `cfg` are
    /// totals and are divided per [`MasmConfig::shard_config`].
    pub fn new(
        heap: Arc<TableHeap>,
        ssds: Vec<SimDevice>,
        wals: Vec<SimDevice>,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<Arc<Self>> {
        cfg.validate()?;
        let n = cfg.sharding.shards;
        if ssds.len() != n || wals.len() != n {
            return Err(MasmError::Config(format!(
                "{n} shards need {n} SSD and {n} WAL devices (got {} / {})",
                ssds.len(),
                wals.len()
            )));
        }
        let router = ShardRouter::from_config(&cfg.sharding)?;
        let oracle = TimestampOracle::new();
        let mut shards = Vec::with_capacity(n);
        for (shard_id, (ssd, wal)) in ssds.into_iter().zip(wals).enumerate() {
            shards.push(MasmEngine::build(
                Arc::clone(&heap),
                ssd,
                wal,
                schema.clone(),
                cfg.shard_config(shard_id)?,
                oracle.clone(),
                shard_id,
                false,
            )?);
        }
        // Durably describe the deployment before any data moves: one
        // manifest copy in every shard's WAL (each naming its own shard
        // id), so recovery can validate shard count, split keys, device
        // order, and configuration compatibility from the logs alone.
        let fingerprint = cfg.fingerprint();
        for (shard_id, e) in shards.iter().enumerate() {
            let session = SessionHandle::fresh(e.ssd().clock().clone());
            e.log_manifest(
                &session,
                &ShardManifest {
                    shards: n as u32,
                    shard_id: shard_id as u32,
                    split_keys: router.split_points().to_vec(),
                    ssd_region_base: e.config().ssd_region_base,
                    config_fingerprint: fingerprint,
                },
            )?;
        }
        let workers = Self::wire_workers(&cfg, &shards);
        Ok(Arc::new(ShardedEngine {
            router,
            shards,
            oracle,
            workers,
            registry: Registry::new(),
        }))
    }

    /// Build the shared worker pool over `shards` and install it into
    /// every shard engine (no-op returning `None` in inline mode).
    fn wire_workers(cfg: &MasmConfig, shards: &[Arc<MasmEngine>]) -> Option<WorkerHandle> {
        (cfg.background_workers > 0).then(|| {
            let backlog: u64 = shards
                .iter()
                .map(|e| e.config().effective_backlog_bytes())
                .sum();
            let registries: Vec<&Registry> = shards.iter().map(|e| e.registry()).collect();
            let pool = WorkerPool::new(
                cfg.background_workers,
                backlog,
                cfg.sharding.max_concurrent_migrations,
                &registries,
            );
            let handle = WorkerHandle::spawn(shards, pool);
            for e in shards {
                e.install_workers(handle.clone());
            }
            handle
        })
    }

    /// Rebuild a sharded deployment after a crash.
    ///
    /// Every shard's redo log is replayed (torn tails truncated per
    /// [`crate::wal::Wal::replay`]) and cross-validated against the
    /// [`ShardManifest`] copies written at [`ShardedEngine::new`]:
    /// shard count, split keys, per-device shard ids, SSD region bases,
    /// and the configuration fingerprint must all agree, so a swapped,
    /// missing, or stale device set is rejected before any run bytes
    /// are trusted. Heap loads and migration splices from *all* logs
    /// are merged into one globally ordered replay, the shared
    /// timestamp oracle resumes past the maximum durable timestamp of
    /// any shard, and interrupted migrations are re-driven to
    /// completion at most
    /// [`ShardingConfig::max_concurrent_migrations`] shards at a time —
    /// the same stagger the worker pool applies in normal operation.
    pub fn recover(
        heap: Arc<TableHeap>,
        ssds: Vec<SimDevice>,
        wals: Vec<SimDevice>,
        schema: Schema,
        cfg: MasmConfig,
    ) -> MasmResult<(Arc<Self>, ShardedRecoveryReport)> {
        Self::recover_traced(heap, ssds, wals, schema, cfg, None)
    }

    /// [`ShardedEngine::recover`] with an optional flight recorder
    /// installed into every recovered shard engine (recovery spans and
    /// instants land on each shard's own trace track).
    pub fn recover_traced(
        heap: Arc<TableHeap>,
        ssds: Vec<SimDevice>,
        wals: Vec<SimDevice>,
        schema: Schema,
        cfg: MasmConfig,
        tracer: Option<&Arc<Tracer>>,
    ) -> MasmResult<(Arc<Self>, ShardedRecoveryReport)> {
        cfg.validate()?;
        let n = cfg.sharding.shards;
        if ssds.len() != n || wals.len() != n {
            return Err(MasmError::Config(format!(
                "{n} shards need {n} SSD and {n} WAL devices (got {} / {})",
                ssds.len(),
                wals.len()
            )));
        }

        let mut parsed: Vec<ParsedWal> = Vec::with_capacity(n);
        for wal in &wals {
            let session = SessionHandle::fresh(wal.clock().clone());
            parsed.push(MasmEngine::parse_wal(&session, wal)?);
        }

        // Cross-check all N manifest copies before trusting anything.
        let fingerprint = cfg.fingerprint();
        let mut split_keys: Option<Vec<Key>> = None;
        for (i, p) in parsed.iter().enumerate() {
            let m = p
                .manifest
                .as_ref()
                .ok_or(MasmError::Corrupt("shard WAL has no manifest"))?;
            if m.shards as usize != n {
                return Err(MasmError::Config(format!(
                    "manifest says {} shards, config says {n}",
                    m.shards
                )));
            }
            if m.shard_id as usize != i {
                return Err(MasmError::Corrupt(
                    "shard device order does not match manifest shard ids",
                ));
            }
            if m.config_fingerprint != fingerprint {
                return Err(MasmError::Config(
                    "config fingerprint does not match the manifest: a layout-shaping \
                     setting changed since this deployment was created"
                        .into(),
                ));
            }
            if m.ssd_region_base != cfg.shard_config(i)?.ssd_region_base {
                return Err(MasmError::Corrupt("manifest SSD region base mismatch"));
            }
            match &split_keys {
                None => split_keys = Some(m.split_keys.clone()),
                Some(s) if *s != m.split_keys => {
                    return Err(MasmError::Corrupt("shard manifests disagree on split keys"))
                }
                Some(_) => {}
            }
        }
        // The manifest's explicit splits, not the config's policy: a
        // sampled policy is not reproducible at recovery time.
        let router = ShardRouter::from_splits(split_keys.expect("validated: n >= 1 shards"))?;
        if router.shards() != n {
            return Err(MasmError::Corrupt(
                "manifest split keys do not match the shard count",
            ));
        }

        // One globally ordered heap replay across every shard's log:
        // loads and migration splices interleave by their shared
        // sequence numbers, duplicates (broadcast loads) collapse.
        let events = parsed
            .iter_mut()
            .flat_map(|p| std::mem::take(&mut p.heap_events))
            .collect();
        apply_heap_events(&heap, events);

        let oracle = TimestampOracle::new();
        let mut shards = Vec::with_capacity(n);
        let mut per_shard: Vec<RecoveryReport> = Vec::with_capacity(n);
        let mut redo: Vec<usize> = Vec::new();
        for (shard_id, ((ssd, wal), p)) in ssds.into_iter().zip(wals).zip(parsed).enumerate() {
            if p.unfinished_migration {
                redo.push(shard_id);
            }
            let (engine, report) = MasmEngine::recover_from_parsed(
                Arc::clone(&heap),
                ssd,
                wal,
                schema.clone(),
                cfg.shard_config(shard_id)?,
                oracle.clone(),
                shard_id,
                false,
                p,
                tracer.cloned(),
            )?;
            shards.push(engine);
            per_shard.push(report);
        }
        let workers = Self::wire_workers(&cfg, &shards);

        // Re-drive interrupted migrations, staggered exactly like the
        // pool's migration gate: at most `max_concurrent_migrations`
        // shards rewrite heap chunks at any moment.
        for chunk in redo.chunks(cfg.sharding.max_concurrent_migrations) {
            std::thread::scope(|scope| -> MasmResult<()> {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|&shard| {
                        let engine = &shards[shard];
                        scope.spawn(move || -> MasmResult<()> {
                            let session = SessionHandle::fresh(engine.ssd().clock().clone());
                            engine.migrate(&session)?;
                            engine.note_migration_redriven();
                            Ok(())
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("migration redo thread panicked")?;
                }
                Ok(())
            })?;
        }
        for &shard in &redo {
            per_shard[shard].redid_migration = true;
        }

        let engine = Arc::new(ShardedEngine {
            router,
            shards,
            oracle,
            workers,
            registry: Registry::new(),
        });
        if let Some(t) = tracer {
            t.bind_registry(&engine.registry);
        }
        let report = ShardedRecoveryReport {
            per_shard,
            migrations_redriven: redo.len(),
        };
        Ok((engine, report))
    }

    /// The router.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard engines, indexed by shard id.
    #[must_use]
    pub fn shards(&self) -> &[Arc<MasmEngine>] {
        &self.shards
    }

    /// The shared timestamp oracle.
    #[must_use]
    pub fn oracle(&self) -> &TimestampOracle {
        &self.oracle
    }

    /// Apply one update, routed by key; returns its commit timestamp.
    pub fn put(&self, session: &SessionHandle, key: Key, op: UpdateOp) -> MasmResult<Timestamp> {
        self.shards[self.router.route(key)].apply_update(session, key, op)
    }

    /// Point lookup, routed by key.
    pub fn get(&self, session: &SessionHandle, key: Key) -> MasmResult<Option<Record>> {
        self.shards[self.router.route(key)].get(session, key)
    }

    /// Bulk-load the shared table heap (records sorted by key). The
    /// load is logged to *every* shard's WAL under one shared
    /// heap-event sequence number: recovery can rebuild the heap from
    /// whichever logs survive, and the multi-log replay deduplicates
    /// the broadcast by its sequence number so the heap is restored
    /// exactly once.
    pub fn load_table(
        &self,
        session: &SessionHandle,
        records: impl IntoIterator<Item = Record>,
        fill: f64,
    ) -> MasmResult<()> {
        self.shards[0].heap().bulk_load(session, records, fill)?;
        let seq = self.oracle.next();
        for e in &self.shards {
            e.log_heap_loaded(session, seq)?;
        }
        Ok(())
    }

    /// Cross-shard range scan of `[begin, end]` at a fresh query
    /// timestamp: one consistent cut over every shard.
    pub fn scan(&self, begin: Key, end: Key) -> MasmResult<ShardedScan> {
        self.scan_at(begin, end, None)
    }

    /// Cross-shard range scan at an explicit snapshot timestamp.
    ///
    /// Every overlapping shard's snapshot is *pinned before this method
    /// returns* (each per-shard [`MergeScan`] registers itself as an
    /// active query at `ts`), so concurrent merges and migrations in
    /// any shard cannot reclaim state the scan still needs — the cut
    /// stays consistent even though later shards are iterated seconds
    /// of virtual time after the first.
    ///
    /// Pinning is two-phase: every overlapping shard is *reserved*
    /// before the timestamp is drawn, and each reservation is released
    /// only once that shard's pin is registered. Between the draw and a
    /// shard's pin the timestamp is invisible to that shard's
    /// active-query guards; without the reservation a concurrent seal
    /// or compaction could fold duplicate versions across it (the scan
    /// would then see an *older* value than a previous scan did), and a
    /// migration could stamp heap pages with a timestamp above it.
    pub fn scan_at(
        &self,
        begin: Key,
        end: Key,
        as_of: Option<Timestamp>,
    ) -> MasmResult<ShardedScan> {
        let overlapping: Vec<usize> = (0..self.shards.len())
            .filter(|&shard| {
                let (lo, hi) = self.router.shard_range(shard);
                hi >= begin && lo <= end
            })
            .collect();
        let tracer = self
            .shards
            .first()
            .and_then(|e| e.tracer_arc())
            .filter(|t| t.enabled());
        for &shard in &overlapping {
            self.shards[shard].reserve_scan();
            if let Some(t) = &tracer {
                t.instant(
                    "scan.reserve",
                    TrackId {
                        pid: shard as u32,
                        tid: current_tid(),
                    },
                    self.shards[shard].ssd().clock().now(),
                    "shard",
                    shard as u64,
                );
            }
        }
        let ts = as_of.unwrap_or_else(|| self.oracle.next());
        let mut parts = VecDeque::new();
        let mut err = None;
        for &shard in &overlapping {
            let engine = &self.shards[shard];
            if err.is_none() {
                let (lo, hi) = self.router.shard_range(shard);
                let session = SessionHandle::fresh(engine.ssd().clock().clone());
                // The per-shard session is consumed by the scan, so the
                // pin is timed on the shard's global device clock.
                let t0 = tracer.as_ref().map(|_| engine.ssd().clock().now());
                match engine.begin_scan_at(
                    session,
                    lo.max(begin),
                    hi.min(end),
                    Some(ts),
                    Vec::new(),
                ) {
                    Ok(scan) => parts.push_back(scan),
                    Err(e) => err = Some(e),
                }
                if let (Some(t), Some(t0)) = (&tracer, t0) {
                    let t1 = engine.ssd().clock().now();
                    t.span_event(
                        "scan.pin",
                        TrackId {
                            pid: shard as u32,
                            tid: current_tid(),
                        },
                        t0,
                        t1.saturating_sub(t0).max(1),
                        "ts",
                        ts,
                    );
                }
            }
            // Pinned (or abandoned): the per-timestamp guards take over.
            engine.release_scan_reservation();
        }
        if let Some(e) = err {
            return Err(e);
        }
        Ok(ShardedScan {
            ts,
            current: None,
            rest: parts,
        })
    }

    /// Whether any shard's cached updates warrant migration.
    #[must_use]
    pub fn needs_migration(&self) -> bool {
        self.shards.iter().any(|e| e.needs_migration())
    }

    /// Flush every shard's in-memory buffer to its SSD region.
    pub fn flush_all(&self, session: &SessionHandle) -> MasmResult<()> {
        for e in &self.shards {
            e.flush_buffer(session)?;
        }
        Ok(())
    }

    /// Migrate every shard that needs it, sequentially (the inline
    /// counterpart of the pool's staggering: never more than one
    /// migration's worth of heap traffic at a time).
    pub fn migrate_all(&self, session: &SessionHandle) -> MasmResult<Vec<MigrationReport>> {
        let mut reports = Vec::new();
        for e in &self.shards {
            if e.needs_migration() {
                reports.push(e.migrate(session)?);
            }
        }
        Ok(reports)
    }

    /// Aggregate statistics: per-shard snapshots, their fold-merge, and
    /// the ingest-balance gauge (also published to this engine's
    /// registry as `shard/imbalance_permille`).
    #[must_use]
    pub fn stats(&self) -> ShardedStats {
        let per_shard: Vec<EngineStats> = self.shards.iter().map(|e| e.stats()).collect();
        let total = per_shard[1..]
            .iter()
            .fold(per_shard[0], |acc, s| acc.merge(s));
        let max = per_shard
            .iter()
            .map(|s| s.ingested_bytes)
            .max()
            .unwrap_or(0) as f64;
        let mean = total.ingested_bytes as f64 / per_shard.len() as f64;
        let shard_imbalance = if mean > 0.0 { max / mean } else { 0.0 };
        self.registry
            .gauge(
                "shard",
                "imbalance_permille",
                Unit::Ops,
                "max/mean per-shard ingested bytes, x1000",
            )
            .set((shard_imbalance * 1000.0) as u64);
        ShardedStats {
            total,
            per_shard,
            shard_imbalance,
        }
    }

    /// The sharding-level metric registry.
    #[must_use]
    pub fn metrics_registry(&self) -> &Registry {
        &self.registry
    }

    /// Install one shared flight recorder across every shard engine
    /// (each shard emits on its own process track, `pid == shard_id`)
    /// and bind the tracer's accounting counters (`trace.*`) into this
    /// engine's registry. Call once, before the workload starts.
    pub fn install_tracer(&self, tracer: &Arc<Tracer>) {
        tracer.bind_registry(&self.registry);
        for e in &self.shards {
            e.install_tracer(Arc::clone(tracer));
        }
    }

    /// Drain and join the shared worker pool (no-op in inline mode;
    /// idempotent).
    pub fn shutdown(&self) {
        if let Some(h) = &self.workers {
            h.join();
        }
    }
}

/// A cross-shard snapshot scan: the concatenation of per-shard
/// [`MergeScan`]s in shard (= key) order, all pinned at one query
/// timestamp. Dropping it (or exhausting it) releases every pin.
pub struct ShardedScan {
    ts: Timestamp,
    current: Option<MergeScan>,
    rest: VecDeque<MergeScan>,
}

impl std::fmt::Debug for ShardedScan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedScan")
            .field("ts", &self.ts)
            .field("pending_shards", &self.rest.len())
            .finish()
    }
}

impl ShardedScan {
    /// The single query timestamp every shard was pinned at.
    #[must_use]
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }
}

impl Iterator for ShardedScan {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        loop {
            if let Some(cur) = &mut self.current {
                if let Some(record) = cur.next() {
                    return Some(record);
                }
                // Exhausted: drop it now so its shard's pin releases
                // before we start the next shard.
                self.current = None;
            }
            self.current = Some(self.rest.pop_front()?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_router_is_total_and_ordered() {
        let r = ShardRouter::uniform(4);
        assert_eq!(r.shards(), 4);
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(u64::MAX), 3);
        // Boundary keys belong to the shard they open.
        for (i, &s) in r.split_points().iter().enumerate() {
            assert_eq!(r.route(s), i + 1);
            assert_eq!(r.route(s - 1), i);
        }
        // Ranges tile the keyspace exactly.
        for i in 0..4 {
            let (lo, hi) = r.shard_range(i);
            assert!(lo <= hi);
            assert_eq!(r.route(lo), i);
            assert_eq!(r.route(hi), i);
        }
        assert_eq!(r.shard_range(0).0, 0);
        assert_eq!(r.shard_range(3).1, u64::MAX);
    }

    #[test]
    fn single_shard_router_routes_everything_to_zero() {
        let r = ShardRouter::uniform(1);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(u64::MAX), 0);
        assert_eq!(r.shard_range(0), (0, u64::MAX));
    }

    #[test]
    fn sampled_router_balances_a_skewed_sample() {
        // 3/4 of the sample mass below 1000, the rest spread high.
        let mut sample: Vec<Key> = (0..750).map(|i| i % 1000).collect();
        sample.extend((0..250).map(|i| 1_000_000 + i * 1000));
        let r = ShardRouter::from_sample(4, &sample);
        assert_eq!(r.shards(), 4);
        // Splits land inside the dense region, not at uniform stride.
        assert!(r.split_points()[0] < 1000, "{:?}", r.split_points());
        let counts = sample.iter().fold(vec![0usize; 4], |mut c, &k| {
            c[r.route(k)] += 1;
            c
        });
        let max = *counts.iter().max().unwrap();
        assert!(max <= sample.len() / 2, "skewed routing: {counts:?}");
    }

    #[test]
    fn degenerate_sample_still_yields_strict_splits() {
        // All-equal sample: quantiles collapse; router must still
        // produce strictly ascending splits (empty shards are fine).
        let sample = vec![7u64; 100];
        let r = ShardRouter::from_sample(4, &sample);
        assert_eq!(r.shards(), 4);
        let s = r.split_points();
        assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
        assert_eq!(r.route(6), 0);
    }

    #[test]
    fn explicit_splits_are_validated() {
        assert!(ShardRouter::from_splits(vec![0]).is_err());
        assert!(ShardRouter::from_splits(vec![10, 10]).is_err());
        assert!(ShardRouter::from_splits(vec![20, 10]).is_err());
        let r = ShardRouter::from_splits(vec![10, 20]).unwrap();
        assert_eq!(r.shards(), 3);
        assert_eq!(r.route(9), 0);
        assert_eq!(r.route(10), 1);
        assert_eq!(r.route(20), 2);
    }
}
